//! `xtask audit`: workspace-wide static invariant checking.
//!
//! The framework's reliability contracts live in three registries and
//! one attribute convention, all of which used to exist only as
//! scattered string literals:
//!
//! * **fault sites** — every site a [`condor_faults::FaultHandle`] is
//!   consulted at must be registered in [`condor_faults::SITES`], and
//!   every registered site must actually be exercised; every
//!   `FaultRule::at(..)` prefix must be able to match a registered site
//!   (rules `X001`–`X003`);
//! * **metric names** — every name recorded into or asserted against a
//!   `MetricsRegistry`/`MetricsSnapshot` must come from
//!   [`condor::METRICS`], with the right instrument kind, and every
//!   registered metric must be used (`X010`–`X012`);
//! * **diagnostic codes** — condor-check's `C0xx` codes must be unique,
//!   documented in DESIGN.md with matching severities, and never
//!   removed or renumbered against the committed
//!   `crates/xtask/api/diag-codes.txt` snapshot (`X020`–`X025`);
//! * **deprecation expiry** — `#[deprecated(since = "…")]` shims are
//!   kept for one release: the audit fails once the workspace version
//!   moves past `since`, and rejects future-dated or unparseable
//!   `since` versions (`X030`–`X032`).
//!
//! Violations render as stable `X0xx` diagnostics (text and JSON),
//! mirroring condor-check's `C0xx` reporting idiom. The audit runs as a
//! unit test (so `cargo test -q` gates it), as `cargo run -p xtask
//! audit` locally and in CI, and is configured through [`AuditConfig`]
//! so its own test fixtures can seed violations.

use crate::lexer::{lex, Spanned, Tok};
use condor::MetricKind;
use condor_cjson::Value;
use condor_faults::sites::{template_matches, template_prefix_matches};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Stable audit diagnostic codes.
///
/// Grouped by rule family: `X00x` fault sites, `X01x` metric names,
/// `X02x` diagnostic-code hygiene, `X03x` deprecation expiry. Like the
/// `C0xx` codes these are never renumbered or repurposed; new rules get
/// new codes (catalogued in DESIGN.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AuditCode {
    /// A fault-site literal matches no entry in `condor_faults::SITES`.
    X001,
    /// A registered fault site is never exercised by any scanned code.
    X002,
    /// A `FaultRule::at` prefix can never match a registered site.
    X003,
    /// A metric-name literal matches no entry in `condor::METRICS`.
    X010,
    /// A registered metric name is never used by any scanned code.
    X011,
    /// A metric name is used with the wrong instrument kind.
    X012,
    /// Two diagnostic codes share a code string.
    X020,
    /// A diagnostic code is missing from DESIGN.md's catalogue.
    X021,
    /// DESIGN.md catalogues a code that no longer exists.
    X022,
    /// A code present in the committed snapshot was removed or renumbered.
    X023,
    /// The committed code snapshot is out of date (regenerate it).
    X024,
    /// DESIGN.md's documented severity disagrees with the code's.
    X025,
    /// `#[deprecated]` without a parseable `since` version.
    X030,
    /// A deprecation dated `since` a version that has not shipped.
    X031,
    /// An expired deprecation shim: the one-release grace period passed.
    X032,
}

impl AuditCode {
    /// Every defined code, in numeric order.
    pub const ALL: &'static [AuditCode] = &[
        AuditCode::X001,
        AuditCode::X002,
        AuditCode::X003,
        AuditCode::X010,
        AuditCode::X011,
        AuditCode::X012,
        AuditCode::X020,
        AuditCode::X021,
        AuditCode::X022,
        AuditCode::X023,
        AuditCode::X024,
        AuditCode::X025,
        AuditCode::X030,
        AuditCode::X031,
        AuditCode::X032,
    ];

    /// The stable code string (`"X001"`).
    pub fn as_str(self) -> &'static str {
        match self {
            AuditCode::X001 => "X001",
            AuditCode::X002 => "X002",
            AuditCode::X003 => "X003",
            AuditCode::X010 => "X010",
            AuditCode::X011 => "X011",
            AuditCode::X012 => "X012",
            AuditCode::X020 => "X020",
            AuditCode::X021 => "X021",
            AuditCode::X022 => "X022",
            AuditCode::X023 => "X023",
            AuditCode::X024 => "X024",
            AuditCode::X025 => "X025",
            AuditCode::X030 => "X030",
            AuditCode::X031 => "X031",
            AuditCode::X032 => "X032",
        }
    }

    /// One-line meaning, used by the documentation table.
    pub fn summary(self) -> &'static str {
        match self {
            AuditCode::X001 => "fault site not registered in condor_faults::SITES",
            AuditCode::X002 => "registered fault site never exercised",
            AuditCode::X003 => "fault-rule prefix matches no registered site",
            AuditCode::X010 => "metric name not registered in condor::METRICS",
            AuditCode::X011 => "registered metric never used",
            AuditCode::X012 => "metric used with the wrong instrument kind",
            AuditCode::X020 => "duplicate diagnostic code",
            AuditCode::X021 => "diagnostic code missing from DESIGN.md catalogue",
            AuditCode::X022 => "DESIGN.md documents an undefined diagnostic code",
            AuditCode::X023 => "diagnostic code removed or renumbered",
            AuditCode::X024 => "diagnostic-code snapshot out of date",
            AuditCode::X025 => "DESIGN.md severity disagrees with the code",
            AuditCode::X030 => "deprecation without a parseable `since` version",
            AuditCode::X031 => "future-dated deprecation",
            AuditCode::X032 => "expired deprecation shim",
        }
    }

    /// The severity this code reports at. `X025` is a warning (the doc
    /// row is wrong, not the code); everything else blocks.
    pub fn severity(self) -> &'static str {
        match self {
            AuditCode::X025 => "warning",
            _ => "error",
        }
    }
}

/// One audit finding, rendering in condor-check's diagnostic idiom.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Stable code.
    pub code: AuditCode,
    /// Human-readable description.
    pub message: String,
    /// Offending file, repo-relative, when the finding has one.
    pub file: Option<String>,
    /// 1-based line in `file` (0 when not applicable).
    pub line: u32,
    /// Suggested fix.
    pub hint: Option<String>,
}

impl Finding {
    fn new(code: AuditCode, message: impl Into<String>) -> Self {
        Finding {
            code,
            message: message.into(),
            file: None,
            line: 0,
            hint: None,
        }
    }

    fn at(mut self, file: impl Into<String>, line: u32) -> Self {
        self.file = Some(file.into());
        self.line = line;
        self
    }

    fn hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// Renders the finding as one (or two, with a hint) lines.
    pub fn render(&self) -> String {
        let site = match &self.file {
            Some(f) if self.line > 0 => format!(" [{f}:{}]", self.line),
            Some(f) => format!(" [{f}]"),
            None => String::new(),
        };
        let mut out = format!(
            "{} {}{site}: {}",
            self.code.severity(),
            self.code.as_str(),
            self.message
        );
        if let Some(h) = &self.hint {
            let _ = write!(out, "\n    hint: {h}");
        }
        out
    }

    /// JSON form of the finding.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("code".to_string(), Value::str(self.code.as_str())),
            ("severity".to_string(), Value::str(self.code.severity())),
            ("message".to_string(), Value::str(self.message.clone())),
        ];
        if let Some(f) = &self.file {
            pairs.push(("file".to_string(), Value::str(f.clone())));
            pairs.push(("line".to_string(), Value::int(self.line as i64)));
        }
        if let Some(h) = &self.hint {
            pairs.push(("hint".to_string(), Value::str(h.clone())));
        }
        Value::object(pairs)
    }
}

/// The result of one audit run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Every finding, grouped by rule family in rule order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.code.severity() == "error")
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.findings.len() - self.error_count()
    }

    /// Human-readable rendering: one finding per line plus a summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "  {}", f.render());
        }
        if self.is_clean() {
            out.push_str("xtask audit: clean (0 findings)");
        } else {
            let _ = write!(
                out,
                "xtask audit: {} findings ({} errors, {} warnings)",
                self.findings.len(),
                self.error_count(),
                self.warning_count()
            );
        }
        out
    }

    /// The report as a `condor-audit/1` JSON document.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("schema".to_string(), Value::str("condor-audit/1")),
            ("errors".to_string(), Value::int(self.error_count() as i64)),
            (
                "warnings".to_string(),
                Value::int(self.warning_count() as i64),
            ),
            (
                "findings".to_string(),
                Value::Array(self.findings.iter().map(Finding::to_json).collect()),
            ),
        ])
    }

    /// Serialised JSON report.
    pub fn to_json_string(&self) -> String {
        condor_cjson::to_string(&self.to_json())
    }
}

/// One catalogued diagnostic code (a `C0xx` from condor-check or an
/// `X0xx` from this module), as the audit compares it against DESIGN.md
/// and the committed snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodeSpec {
    /// The stable code string.
    pub code: String,
    /// Severity label (`"error"`, `"warning"`, `"note"`).
    pub severity: String,
    /// One-line meaning.
    pub summary: String,
}

/// Everything one audit run needs, injectable so the fixture tests can
/// seed violations without touching the real tree.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Directory scanned recursively for `.rs` files.
    pub root: PathBuf,
    /// Path prefixes (relative to `root`, `/`-separated) skipped
    /// entirely.
    pub skip: Vec<String>,
    /// Prefixes exempt from the fault-site rules (the faults crate
    /// itself: its unit tests exercise toy sites by design).
    pub site_exempt: Vec<String>,
    /// Prefixes exempt from the metric rules (the metrics module
    /// itself: its unit tests exercise toy names by design).
    pub metric_exempt: Vec<String>,
    /// The fault-site registry (templates; `{}` = digits).
    pub sites: Vec<String>,
    /// The metric-name registry with instrument kinds.
    pub metrics: Vec<(String, MetricKind)>,
    /// condor-check's diagnostic catalogue.
    pub diag_codes: Vec<CodeSpec>,
    /// This module's own catalogue (audited against DESIGN.md too).
    pub audit_codes: Vec<CodeSpec>,
    /// DESIGN.md contents.
    pub design: String,
    /// Committed `diag-codes.txt` snapshot contents.
    pub snapshot: String,
    /// The workspace version `#[deprecated(since)]` is judged against.
    pub version: (u64, u64, u64),
}

impl AuditConfig {
    /// The real-tree configuration: registries from the workspace
    /// crates, documents from the repo root.
    pub fn repo() -> AuditConfig {
        let root = crate::repo_root();
        let design = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
        let snapshot =
            fs::read_to_string(root.join("crates/xtask/api/diag-codes.txt")).unwrap_or_default();
        let manifest = fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
        let version = workspace_version(&manifest)
            .expect("workspace Cargo.toml declares [workspace.package] version");
        AuditConfig {
            root,
            skip: vec![
                "target".into(),
                ".git".into(),
                "shims".into(),
                // xtask's own sources and fixtures contain deliberately
                // broken literals (this module's tests).
                "crates/xtask".into(),
            ],
            site_exempt: vec!["crates/faults".into()],
            metric_exempt: vec!["crates/core/src/metrics.rs".into()],
            sites: condor_faults::SITES
                .iter()
                .map(|s| s.name.to_string())
                .collect(),
            metrics: condor::METRICS
                .iter()
                .map(|m| (m.name.to_string(), m.kind))
                .collect(),
            diag_codes: condor_check::Code::ALL
                .iter()
                .map(|c| CodeSpec {
                    code: c.as_str().to_string(),
                    severity: c.severity().label().to_string(),
                    summary: c.summary().to_string(),
                })
                .collect(),
            audit_codes: AuditCode::ALL
                .iter()
                .map(|c| CodeSpec {
                    code: c.as_str().to_string(),
                    severity: c.severity().to_string(),
                    summary: c.summary().to_string(),
                })
                .collect(),
            design,
            snapshot,
            version,
        }
    }
}

/// Extracts `version = "x.y.z"` from a workspace manifest's
/// `[workspace.package]` section.
pub fn workspace_version(manifest: &str) -> Option<(u64, u64, u64)> {
    let mut in_section = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_section = line == "[workspace.package]";
            continue;
        }
        if in_section {
            if let Some(rest) = line.strip_prefix("version") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    let v = rest.trim().trim_matches('"');
                    return parse_semver(v);
                }
            }
        }
    }
    None
}

/// Parses `"major.minor.patch"`; pre-release/build suffixes are
/// rejected (the workspace does not use them).
pub fn parse_semver(s: &str) -> Option<(u64, u64, u64)> {
    let mut parts = s.split('.');
    let major = parts.next()?.parse().ok()?;
    let minor = parts.next()?.parse().ok()?;
    let patch = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((major, minor, patch))
}

/// One string literal captured in an audited call context.
#[derive(Clone, Debug, PartialEq, Eq)]
struct LitUse {
    name: String,
    file: String,
    line: u32,
}

/// One `#[deprecated]` attribute found in the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Deprecation {
    file: String,
    line: u32,
    since: Option<String>,
}

/// Everything the token scan extracts from the tree.
#[derive(Clone, Debug, Default)]
struct Scan {
    site_uses: Vec<LitUse>,
    site_prefixes: Vec<LitUse>,
    metric_uses: Vec<(LitUse, MetricKind)>,
    deprecations: Vec<Deprecation>,
}

/// Runs the full audit under `cfg`.
pub fn run(cfg: &AuditConfig) -> Report {
    let scan = scan_tree(cfg);
    let mut findings = Vec::new();
    audit_sites(cfg, &scan, &mut findings);
    audit_metrics(cfg, &scan, &mut findings);
    audit_diag_codes(cfg, &mut findings);
    audit_deprecations(cfg, &scan, &mut findings);
    Report { findings }
}

fn scan_tree(cfg: &AuditConfig) -> Scan {
    let mut files = Vec::new();
    collect_rs(&cfg.root, &cfg.root, &cfg.skip, &mut files);
    files.sort();
    let mut scan = Scan::default();
    for rel in &files {
        let text = match fs::read_to_string(cfg.root.join(rel)) {
            Ok(t) => t,
            Err(_) => continue,
        };
        let toks = lex(&text);
        let sites_on = !has_prefix(rel, &cfg.site_exempt);
        let metrics_on = !has_prefix(rel, &cfg.metric_exempt);
        scan_file(rel, &toks, sites_on, metrics_on, &mut scan);
    }
    scan
}

fn has_prefix(rel: &str, prefixes: &[String]) -> bool {
    prefixes
        .iter()
        .any(|p| rel == p || rel.starts_with(&format!("{p}/")))
}

fn collect_rs(root: &Path, dir: &Path, skip: &[String], out: &mut Vec<String>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .unwrap_or_default();
        if has_prefix(&rel, skip) {
            continue;
        }
        if path.is_dir() {
            collect_rs(root, &path, skip, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
}

/// Call contexts whose first string-literal argument the audit claims.
fn context_of(toks: &[Spanned], i: usize) -> Option<Ctx> {
    let Tok::Ident(name) = &toks[i].tok else {
        return None;
    };
    if toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
        return None;
    }
    let prev = i.checked_sub(1).map(|p| &toks[p].tok);
    let dotted = prev == Some(&Tok::Punct('.'));
    match name.as_str() {
        "gate" | "timing" | "check" if dotted => Some(Ctx::SiteUse),
        "incr" | "counter" if dotted => Some(Ctx::Metric(MetricKind::Counter)),
        "set_gauge" | "gauge" if dotted => Some(Ctx::Metric(MetricKind::Gauge)),
        "observe" | "observe_duration" | "histogram" if dotted => {
            Some(Ctx::Metric(MetricKind::Histogram))
        }
        // `FaultRule::at(...)` — require the path so `Diagnostic::at`
        // style builder methods stay out of the fault-site domain.
        "at" => {
            let path = i >= 3
                && toks[i - 1].tok == Tok::Punct(':')
                && toks[i - 2].tok == Tok::Punct(':')
                && toks[i - 3].tok == Tok::Ident("FaultRule".to_string());
            path.then_some(Ctx::SitePrefix)
        }
        _ => None,
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ctx {
    SiteUse,
    SitePrefix,
    Metric(MetricKind),
}

/// First string literal inside the call's parenthesised argument list
/// (looking through `&` and `format!(...)`), or `None` for a fully
/// dynamic argument.
fn first_literal_in_call(toks: &[Spanned], open: usize) -> Option<(String, u32)> {
    let mut depth = 0usize;
    for t in &toks[open..] {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            Tok::Str(s) => return Some((s.clone(), t.line)),
            _ => {}
        }
    }
    None
}

fn scan_file(rel: &str, toks: &[Spanned], sites_on: bool, metrics_on: bool, scan: &mut Scan) {
    for i in 0..toks.len() {
        // `#[deprecated ...]` — attribute, not a call context.
        if toks[i].tok == Tok::Ident("deprecated".to_string())
            && i >= 2
            && toks[i - 1].tok == Tok::Punct('[')
            && toks[i - 2].tok == Tok::Punct('#')
        {
            scan.deprecations
                .push(parse_deprecated(rel, toks, i, toks[i].line));
            continue;
        }
        let Some(ctx) = context_of(toks, i) else {
            continue;
        };
        let Some((name, line)) = first_literal_in_call(toks, i + 1) else {
            continue;
        };
        let hit = LitUse {
            name,
            file: rel.to_string(),
            line,
        };
        match ctx {
            Ctx::SiteUse if sites_on => scan.site_uses.push(hit),
            Ctx::SitePrefix if sites_on => scan.site_prefixes.push(hit),
            Ctx::Metric(kind) if metrics_on => scan.metric_uses.push((hit, kind)),
            _ => {}
        }
    }
}

/// Parses the argument list of a `#[deprecated(...)]` attribute whose
/// `deprecated` ident sits at `i`, extracting `since`.
fn parse_deprecated(rel: &str, toks: &[Spanned], i: usize, line: u32) -> Deprecation {
    let mut since = None;
    if toks.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('(')) {
        let mut depth = 0usize;
        let mut j = i + 1;
        while let Some(t) = toks.get(j) {
            match &t.tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(k)
                    if k == "since"
                        && toks.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('=')) =>
                {
                    if let Some(Tok::Str(v)) = toks.get(j + 2).map(|t| &t.tok) {
                        since = Some(v.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    Deprecation {
        file: rel.to_string(),
        line,
        since,
    }
}

fn audit_sites(cfg: &AuditConfig, scan: &Scan, out: &mut Vec<Finding>) {
    for u in &scan.site_uses {
        if !cfg.sites.iter().any(|s| template_matches(&u.name, s)) {
            out.push(
                Finding::new(
                    AuditCode::X001,
                    format!(
                        "fault site \"{}\" matches no entry in condor_faults::SITES",
                        u.name
                    ),
                )
                .at(&u.file, u.line)
                .hint("register the site in crates/faults/src/sites.rs or fix the spelling"),
            );
        }
    }
    for p in &scan.site_prefixes {
        if !cfg
            .sites
            .iter()
            .any(|s| template_prefix_matches(&p.name, s))
        {
            out.push(
                Finding::new(
                    AuditCode::X003,
                    format!(
                        "fault-rule prefix \"{}\" can never match a registered site — the rule \
                         would silently never fire",
                        p.name
                    ),
                )
                .at(&p.file, p.line)
                .hint("use a prefix of a site registered in condor_faults::SITES"),
            );
        }
    }
    for s in &cfg.sites {
        let used = scan.site_uses.iter().any(|u| template_matches(&u.name, s))
            || scan
                .site_prefixes
                .iter()
                .any(|p| template_prefix_matches(&p.name, s));
        if !used {
            out.push(
                Finding::new(
                    AuditCode::X002,
                    format!("registered fault site \"{s}\" is never exercised"),
                )
                .at("crates/faults/src/sites.rs", 0)
                .hint("wire an injection site or drop the registry entry"),
            );
        }
    }
}

fn audit_metrics(cfg: &AuditConfig, scan: &Scan, out: &mut Vec<Finding>) {
    for (u, kind) in &scan.metric_uses {
        let matching: Vec<_> = cfg
            .metrics
            .iter()
            .filter(|(name, _)| template_matches(&u.name, name))
            .collect();
        if matching.is_empty() {
            out.push(
                Finding::new(
                    AuditCode::X010,
                    format!(
                        "metric name \"{}\" matches no entry in condor::METRICS — a typo here \
                         silently forks the metric",
                        u.name
                    ),
                )
                .at(&u.file, u.line)
                .hint("register the name in crates/core/src/metrics.rs or fix the spelling"),
            );
        } else if !matching.iter().any(|(_, k)| k == kind) {
            out.push(
                Finding::new(
                    AuditCode::X012,
                    format!(
                        "metric \"{}\" is registered as a {} but used here as a {}",
                        u.name,
                        matching.first().map(|(_, k)| k.label()).unwrap_or("metric"),
                        kind.label()
                    ),
                )
                .at(&u.file, u.line),
            );
        }
    }
    for (name, _) in &cfg.metrics {
        let used = scan
            .metric_uses
            .iter()
            .any(|(u, _)| template_matches(&u.name, name));
        if !used {
            out.push(
                Finding::new(
                    AuditCode::X011,
                    format!("registered metric \"{name}\" is never used"),
                )
                .at("crates/core/src/metrics.rs", 0)
                .hint("record the metric somewhere or drop the registry entry"),
            );
        }
    }
}

/// Rows of DESIGN.md's catalogue tables: `| C0xx | severity | … |`.
fn design_rows(design: &str) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for line in design.lines() {
        let mut cells = line.split('|').map(str::trim);
        // Leading '|' yields an empty first cell.
        let Some("") = cells.next() else { continue };
        let (Some(code), Some(severity)) = (cells.next(), cells.next()) else {
            continue;
        };
        let is_code = (code.starts_with('C') || code.starts_with('X'))
            && code.len() == 4
            && code[1..].chars().all(|c| c.is_ascii_digit());
        if is_code {
            rows.push((code.to_string(), severity.to_string()));
        }
    }
    rows
}

fn audit_diag_codes(cfg: &AuditConfig, out: &mut Vec<Finding>) {
    let all: Vec<&CodeSpec> = cfg.diag_codes.iter().chain(&cfg.audit_codes).collect();

    // X020: uniqueness across the combined C/X namespace.
    let mut seen: Vec<&str> = Vec::new();
    for spec in &all {
        if seen.contains(&spec.code.as_str()) {
            out.push(Finding::new(
                AuditCode::X020,
                format!("diagnostic code {} is defined more than once", spec.code),
            ));
        } else {
            seen.push(&spec.code);
        }
    }

    // X021/X022/X025 against DESIGN.md's tables.
    let rows = design_rows(&cfg.design);
    for spec in &all {
        match rows.iter().find(|(code, _)| *code == spec.code) {
            None => out.push(
                Finding::new(
                    AuditCode::X021,
                    format!(
                        "code {} ({}) is not in DESIGN.md's catalogue",
                        spec.code, spec.summary
                    ),
                )
                .at("DESIGN.md", 0)
                .hint("add a row to the diagnostic catalogue table"),
            ),
            Some((_, sev)) if *sev != spec.severity => out.push(
                Finding::new(
                    AuditCode::X025,
                    format!(
                        "DESIGN.md documents {} as \"{}\" but the code reports at \"{}\"",
                        spec.code, sev, spec.severity
                    ),
                )
                .at("DESIGN.md", 0),
            ),
            Some(_) => {}
        }
    }
    for (code, _) in &rows {
        if !all.iter().any(|spec| spec.code == *code) {
            out.push(
                Finding::new(
                    AuditCode::X022,
                    format!("DESIGN.md documents {code}, which no longer exists"),
                )
                .at("DESIGN.md", 0)
                .hint("codes are never renumbered; mark the row retired or restore the code"),
            );
        }
    }

    // X023/X024 against the committed snapshot (C codes only: the
    // snapshot is condor-check's compatibility surface).
    let snap: Vec<(String, String)> = cfg
        .snapshot
        .lines()
        .filter_map(|l| {
            let mut words = l.splitn(3, ' ');
            let code = words.next()?.to_string();
            let rest = words.collect::<Vec<_>>().join(" ");
            (!code.is_empty()).then_some((code, rest))
        })
        .collect();
    for (code, _) in &snap {
        if !cfg.diag_codes.iter().any(|spec| spec.code == *code) {
            out.push(
                Finding::new(
                    AuditCode::X023,
                    format!(
                        "code {code} is in the committed snapshot but gone from condor-check — \
                         codes must never be removed or renumbered"
                    ),
                )
                .at("crates/xtask/api/diag-codes.txt", 0),
            );
        }
    }
    for spec in &cfg.diag_codes {
        let expected = format!("{} {}", spec.severity, spec.summary);
        match snap.iter().find(|(code, _)| *code == spec.code) {
            Some((_, rest)) if *rest == expected => {}
            _ => out.push(
                Finding::new(
                    AuditCode::X024,
                    format!("snapshot entry for {} is missing or stale", spec.code),
                )
                .at("crates/xtask/api/diag-codes.txt", 0)
                .hint("regenerate with `cargo run -p xtask` and commit the result"),
            ),
        }
    }
}

fn audit_deprecations(cfg: &AuditConfig, scan: &Scan, out: &mut Vec<Finding>) {
    for d in &scan.deprecations {
        let Some(since) = d.since.as_ref().and_then(|s| parse_semver(s)) else {
            out.push(
                Finding::new(
                    AuditCode::X030,
                    match &d.since {
                        Some(raw) => format!("#[deprecated] has unparseable since = \"{raw}\""),
                        None => "#[deprecated] without a since version — expiry cannot be audited"
                            .to_string(),
                    },
                )
                .at(&d.file, d.line)
                .hint("use #[deprecated(since = \"x.y.z\", note = \"...\")]"),
            );
            continue;
        };
        if since > cfg.version {
            out.push(
                Finding::new(
                    AuditCode::X031,
                    format!(
                        "deprecated since {}.{}.{} but the workspace is at {}.{}.{} — that \
                         release has not shipped",
                        since.0, since.1, since.2, cfg.version.0, cfg.version.1, cfg.version.2
                    ),
                )
                .at(&d.file, d.line)
                .hint("date the deprecation at the current version"),
            );
        } else if since < cfg.version {
            out.push(
                Finding::new(
                    AuditCode::X032,
                    format!(
                        "shim deprecated since {}.{}.{} has outlived its one-release grace \
                         period (workspace is at {}.{}.{})",
                        since.0, since.1, since.2, cfg.version.0, cfg.version.1, cfg.version.2
                    ),
                )
                .at(&d.file, d.line)
                .hint("remove the shim, or re-date `since` with a justification comment"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn fixtures(case: &str) -> PathBuf {
        crate::repo_root().join("crates/xtask/fixtures").join(case)
    }

    /// A design document catloguing exactly `specs`.
    fn design_for(specs: &[&[CodeSpec]]) -> String {
        let mut out = String::from("| code | severity | meaning |\n|---|---|---|\n");
        for spec in specs.iter().copied().flatten() {
            let _ = writeln!(
                out,
                "| {} | {} | {} |",
                spec.code, spec.severity, spec.summary
            );
        }
        out
    }

    /// The snapshot matching `specs` exactly.
    fn snapshot_for(specs: &[CodeSpec]) -> String {
        specs
            .iter()
            .map(|s| format!("{} {} {}\n", s.code, s.severity, s.summary))
            .collect()
    }

    fn spec(code: &str, severity: &str, summary: &str) -> CodeSpec {
        CodeSpec {
            code: code.into(),
            severity: severity.into(),
            summary: summary.into(),
        }
    }

    /// A config over a fixture tree with a small registry; diag/doc
    /// inputs are self-consistent so only the scan rules fire.
    fn fixture_config(case: &str) -> AuditConfig {
        let diag_codes = vec![spec("C001", "error", "sample diagnostic")];
        let audit_codes = vec![spec("X001", "error", "sample audit rule")];
        let design = design_for(&[&diag_codes, &audit_codes]);
        let snapshot = snapshot_for(&diag_codes);
        AuditConfig {
            root: fixtures(case),
            skip: vec![],
            site_exempt: vec![],
            metric_exempt: vec![],
            sites: vec!["s3.put_object".into(), "dataflow.pe{}".into()],
            metrics: vec![
                ("requests_completed".into(), MetricKind::Counter),
                ("latency_us".into(), MetricKind::Histogram),
            ],
            diag_codes,
            audit_codes,
            design,
            snapshot,
            version: (0, 1, 0),
        }
    }

    fn codes(report: &Report) -> Vec<&'static str> {
        report.findings.iter().map(|f| f.code.as_str()).collect()
    }

    #[test]
    fn clean_fixture_reports_zero_findings() {
        let report = run(&fixture_config("clean"));
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.render().contains("clean (0 findings)"));
    }

    #[test]
    fn seeded_violations_each_fire_their_code() {
        let report = run(&fixture_config("violations"));
        let mut got = codes(&report);
        got.sort_unstable();
        assert_eq!(
            got,
            vec!["X001", "X003", "X010", "X012", "X030", "X031", "X032"],
            "{}",
            report.render()
        );
        // The typo'd site names the literal and its location.
        let typo = report
            .findings
            .iter()
            .find(|f| f.code == AuditCode::X001)
            .unwrap();
        assert!(typo.message.contains("s3.putobject"));
        assert!(typo.file.as_deref().unwrap().ends_with("bad.rs"));
        assert!(typo.line > 0);
    }

    #[test]
    fn dead_registry_entries_are_flagged() {
        let mut cfg = fixture_config("clean");
        cfg.sites.push("ghost.site{}".into());
        cfg.metrics
            .push(("ghost_metric".into(), MetricKind::Counter));
        let report = run(&cfg);
        let mut got = codes(&report);
        got.sort_unstable();
        assert_eq!(got, vec!["X002", "X011"], "{}", report.render());
    }

    #[test]
    fn duplicate_code_is_flagged() {
        let mut cfg = fixture_config("clean");
        cfg.diag_codes.push(cfg.diag_codes[0].clone());
        // Keep the snapshot consistent so only X020 fires.
        cfg.snapshot = snapshot_for(&cfg.diag_codes);
        let report = run(&cfg);
        assert_eq!(codes(&report), vec!["X020"], "{}", report.render());
    }

    #[test]
    fn undocumented_and_stale_codes_are_flagged() {
        // A code absent from DESIGN.md.
        let mut cfg = fixture_config("clean");
        cfg.design = design_for(&[&cfg.audit_codes]);
        assert_eq!(codes(&run(&cfg)), vec!["X021"]);

        // DESIGN.md documents a code that does not exist.
        let mut cfg = fixture_config("clean");
        cfg.design.push_str("| C999 | error | ghost |\n");
        assert_eq!(codes(&run(&cfg)), vec!["X022"]);

        // A documented severity disagreeing with the code's.
        let mut cfg = fixture_config("clean");
        cfg.design = cfg.design.replace("| C001 | error |", "| C001 | warning |");
        let report = run(&cfg);
        assert_eq!(codes(&report), vec!["X025"]);
        assert_eq!(report.error_count(), 0);
        assert_eq!(report.warning_count(), 1);
    }

    #[test]
    fn renumbered_and_unsnapshotted_codes_are_flagged() {
        // Snapshot knows a code the tree no longer defines: renumbering.
        let mut cfg = fixture_config("clean");
        cfg.snapshot.push_str("C998 error removed diagnostic\n");
        assert_eq!(codes(&run(&cfg)), vec!["X023"]);

        // A new code not yet snapshotted: stale snapshot.
        let mut cfg = fixture_config("clean");
        cfg.snapshot = String::new();
        assert_eq!(codes(&run(&cfg)), vec!["X024"]);

        // A changed summary is stale too.
        let mut cfg = fixture_config("clean");
        cfg.snapshot = cfg.snapshot.replace("sample diagnostic", "old summary");
        assert_eq!(codes(&run(&cfg)), vec!["X024"]);
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = run(&fixture_config("violations"));
        let json = report.to_json_string();
        assert!(json.contains("\"schema\":\"condor-audit/1\""));
        assert!(json.contains("\"code\":\"X001\""));
        let back = condor_cjson::parse(&json).unwrap();
        assert_eq!(
            back.get("errors").and_then(|v| v.as_i64()),
            Some(report.error_count() as i64)
        );
        assert_eq!(
            back.get("findings")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(report.findings.len())
        );
    }

    #[test]
    fn version_parsing() {
        assert_eq!(parse_semver("0.1.0"), Some((0, 1, 0)));
        assert_eq!(parse_semver("12.34.56"), Some((12, 34, 56)));
        assert_eq!(parse_semver("1.2"), None);
        assert_eq!(parse_semver("1.2.3.4"), None);
        assert_eq!(parse_semver("1.2.x"), None);
        let manifest = "[workspace]\n[workspace.package]\nversion = \"0.1.0\"\n";
        assert_eq!(workspace_version(manifest), Some((0, 1, 0)));
    }

    /// The tier-1 gate: the real tree must audit clean. Every
    /// registry/doc/code drift the rules can see fails this test.
    #[test]
    fn real_tree_audits_clean() {
        let report = run(&AuditConfig::repo());
        assert!(report.is_clean(), "\n{}", report.render());
    }
}
