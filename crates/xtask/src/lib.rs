//! Repo tooling (the `cargo xtask` pattern): a dependency-free
//! public-API surface check and a workspace-wide static invariant audit
//! (see [`audit`]).
//!
//! `cargo-public-api` is not available offline, so this crate derives a
//! poor man's item list instead: every `pub` item signature found in a
//! crate's `src/` tree, in file order, written to a committed snapshot
//! under `crates/xtask/api/<crate>.txt`. A test diffs the snapshot on
//! every `cargo test`, so public-API changes to `condor-nn` and
//! `condor-core` (the two crates downstream users build against) are
//! reviewed deliberately rather than slipping into a PR unnoticed.
//!
//! When a surface change is intentional, regenerate the snapshots with
//! either of:
//!
//! ```text
//! cargo run -p xtask
//! XTASK_BLESS=1 cargo test -p xtask
//! ```
//!
//! The extractor is syntactic on purpose. It lists `pub ...` items only
//! (not `pub(crate)`/`pub(super)`, which are not part of the external
//! surface), joins signatures that span multiple lines, and records the
//! file each item lives in. Items inside private modules are listed
//! too — that is conservative: a diff fires on any candidate surface
//! change and the reviewer decides.

pub mod audit;
pub mod lexer;

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// The crates whose public surface is under snapshot review, as
/// `(snapshot name, src dir relative to the repo root)`.
pub const TRACKED: &[(&str, &str)] = &[
    ("condor-nn", "crates/nn/src"),
    ("condor", "crates/core/src"),
    ("condor-serve", "crates/serve/src"),
    ("condor-check", "crates/check/src"),
    ("condor-faults", "crates/faults/src"),
    ("condor-kernels", "crates/kernels/src"),
    ("condor-queue", "crates/queue/src"),
];

/// Repo root, derived from this crate's own manifest location.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("xtask sits two levels under the repo root")
}

/// Path of the committed snapshot for one tracked crate.
pub fn snapshot_path(name: &str) -> PathBuf {
    repo_root()
        .join("crates/xtask/api")
        .join(format!("{name}.txt"))
}

/// Extracts the public surface of the crate rooted at `src_dir`
/// (relative to the repo root) as one line per item:
/// `<file relative to src_dir>: <signature>`.
pub fn surface(src_dir: &str) -> String {
    let root = repo_root().join(src_dir);
    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();

    let mut out = String::new();
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .expect("collected under root")
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(file).expect("source file is readable UTF-8");
        for sig in extract_items(&text) {
            let _ = writeln!(out, "{rel}: {sig}");
        }
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Item-introducing keywords that may follow `pub` (after qualifiers).
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "use", "mod", "union",
];

/// Qualifiers allowed between `pub` and the item keyword.
const QUALIFIERS: &[&str] = &["unsafe", "const", "async", "default", "extern"];

/// Returns the signatures of all `pub` items in one source file, in
/// order of appearance. A signature runs from `pub` to the first body
/// brace or terminating semicolon, whitespace-collapsed.
pub fn extract_items(text: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut lines = text.lines();
    while let Some(line) = lines.next() {
        let trimmed = line.trim_start();
        let Some(keyword) = pub_item_keyword(trimmed) else {
            continue;
        };
        // Accumulate until the signature closes: `use` items end at
        // `;` (their `{...}` groups are part of the path); everything
        // else ends at the first `{` or `;`.
        let mut sig = trimmed.to_string();
        let closes = |s: &str| {
            if keyword == "use" {
                s.contains(';')
            } else {
                s.contains('{') || s.contains(';')
            }
        };
        while !closes(&sig) {
            match lines.next() {
                Some(next) => {
                    sig.push(' ');
                    sig.push_str(next.trim());
                }
                None => break,
            }
        }
        let end = if keyword == "use" {
            sig.find(';')
        } else {
            sig.find(['{', ';'])
        };
        if let Some(end) = end {
            sig.truncate(end);
        }
        items.push(sig.split_whitespace().collect::<Vec<_>>().join(" "));
    }
    items
}

/// If `line` starts a public item (`pub fn ...`, `pub struct ...`, …),
/// returns the item keyword. Restricted visibilities (`pub(crate)`,
/// `pub(super)`, …) are not part of the external surface and return
/// `None`.
fn pub_item_keyword(line: &str) -> Option<&'static str> {
    let rest = line.strip_prefix("pub ")?;
    let mut words = rest.split_whitespace().peekable();
    while let Some(&w) = words.peek() {
        // `extern "C" fn` carries the ABI string after the qualifier.
        // `const` doubles as an item keyword (`pub const X: u32`): it
        // only qualifies when a `fn` (possibly behind more qualifiers)
        // follows.
        let is_qualifier = (QUALIFIERS.contains(&w) || w.starts_with('"'))
            && (w != "const"
                || rest
                    .split_whitespace()
                    .any(|t| t == "fn" || t.starts_with("fn(")));
        if is_qualifier {
            words.next();
        } else {
            break;
        }
    }
    let first = words.next()?;
    // `pub fn` vs `pub fn_table:` — compare the identifier exactly,
    // allowing `fn(` / `mod;` style immediate punctuation.
    let ident: String = first
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    ITEM_KEYWORDS
        .iter()
        .find(|&&k| k == ident)
        .copied()
        .filter(|&k| {
            // Reject `pub use` only when it is actually the keyword:
            // e.g. `pub fnord` was filtered by the ident comparison.
            !k.is_empty()
        })
}

/// The committed compatibility snapshot of condor-check's diagnostic
/// catalogue, one `C0xx severity summary` line per code. The audit's
/// `X023`/`X024` rules diff against it, so removing or renumbering a
/// code — or silently changing its meaning — fails the build until the
/// snapshot is deliberately regenerated and committed.
pub fn diag_code_snapshot() -> String {
    condor_check::Code::ALL
        .iter()
        .map(|c| format!("{} {} {}\n", c.as_str(), c.severity().label(), c.summary()))
        .collect()
}

/// Renders a human-oriented diff between the committed snapshot and the
/// freshly extracted surface.
pub fn render_diff(name: &str, committed: &str, current: &str) -> String {
    let old: Vec<&str> = committed.lines().collect();
    let new: Vec<&str> = current.lines().collect();
    let mut out = format!("public API surface of `{name}` changed:\n");
    for line in &new {
        if !old.contains(line) {
            let _ = writeln!(out, "  + {line}");
        }
    }
    for line in &old {
        if !new.contains(line) {
            let _ = writeln!(out, "  - {line}");
        }
    }
    out.push_str(
        "if the change is intentional, regenerate the snapshot with \
         `cargo run -p xtask` (or `XTASK_BLESS=1 cargo test -p xtask`) \
         and commit the updated crates/xtask/api/*.txt",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extractor_finds_public_items_and_skips_restricted_ones() {
        let src = "\
pub struct Foo {
    pub field: u32,
}
pub(crate) struct Hidden;
impl Foo {
    pub fn new(
        field: u32,
    ) -> Self {
        Foo { field }
    }
    fn private(&self) {}
}
pub use std::collections::{
    HashMap,
    HashSet,
};
pub const LIMIT: usize = 4;
";
        let items = extract_items(src);
        assert_eq!(
            items,
            vec![
                "pub struct Foo",
                "pub fn new( field: u32, ) -> Self",
                "pub use std::collections::{ HashMap, HashSet, }",
                "pub const LIMIT: usize = 4",
            ]
        );
    }

    #[test]
    fn extractor_handles_qualified_fns() {
        let items = extract_items("pub const fn id(x: u32) -> u32 { x }\npub unsafe fn raw() {}\n");
        assert_eq!(
            items,
            vec!["pub const fn id(x: u32) -> u32", "pub unsafe fn raw()"]
        );
    }

    /// The tier-1 gate: the committed snapshots must match the live
    /// surface of every tracked crate.
    #[test]
    fn public_api_surface_matches_committed_snapshots() {
        for (name, src_dir) in TRACKED {
            let current = surface(src_dir);
            let path = snapshot_path(name);
            if std::env::var_os("XTASK_BLESS").is_some() {
                fs::write(&path, &current).expect("snapshot dir is writable");
                continue;
            }
            let committed = fs::read_to_string(&path).unwrap_or_default();
            assert!(
                committed == current,
                "{}",
                render_diff(name, &committed, &current)
            );
        }
    }

    /// The committed diagnostic-code snapshot must match the live
    /// catalogue (blessable the same way as the API snapshots; the
    /// audit's X023/X024 rules enforce the same invariant from the
    /// other direction).
    #[test]
    fn diag_code_snapshot_matches_committed() {
        let current = diag_code_snapshot();
        let path = snapshot_path("diag-codes");
        if std::env::var_os("XTASK_BLESS").is_some() {
            fs::write(&path, &current).expect("snapshot dir is writable");
            return;
        }
        let committed = fs::read_to_string(&path).unwrap_or_default();
        assert!(
            committed == current,
            "{}",
            render_diff("diag-codes", &committed, &current)
        );
    }
}
