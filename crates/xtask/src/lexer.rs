//! A minimal, dependency-free token scanner for Rust source.
//!
//! The audit needs exactly three things a regex cannot deliver
//! reliably: string literals with comments stripped (a site name in a
//! `//` comment is not a use), call context (which identifier's
//! argument list a literal sits in), and attribute structure
//! (`#[deprecated(since = "…")]`). This lexer produces a flat token
//! stream — identifiers, string literals, single-character punctuation
//! — with line numbers, understanding just enough of Rust's lexical
//! grammar to never misparse a boundary: line and nested block
//! comments, escaped and raw strings, byte strings, character literals
//! vs lifetimes, and raw identifiers. Everything else (numbers,
//! multi-character operators) is passed through as punctuation or
//! skipped; the audit does not need it.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A string literal's contents (escapes left as written).
    Str(String),
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Lexes `src` into a token stream. Unterminated constructs consume to
/// end-of-file rather than erroring: the audit scans committed code
/// that already compiles, so recovery precision is not needed.
pub fn lex(src: &str) -> Vec<Spanned> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Spanned>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.push(Spanned { tok, line });
    }

    fn run(mut self) -> Vec<Spanned> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    let s = self.string();
                    self.push(Tok::Str(s), line);
                }
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(line),
                _ => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\n' {
                break;
            }
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes a `"…"` literal (opening quote at the cursor) and
    /// returns its raw contents.
    fn string(&mut self) -> String {
        self.bump();
        let mut s = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    s.push(c);
                    if let Some(esc) = self.bump() {
                        s.push(esc);
                    }
                }
                _ => s.push(c),
            }
        }
        s
    }

    /// Consumes a raw string `r#*"…"#*` with `hashes` `#`s (cursor on
    /// the opening quote) and returns its contents.
    fn raw_string(&mut self, hashes: usize) -> String {
        self.bump();
        let mut s = String::new();
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                return s;
            }
            s.push(c);
        }
        s
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // 'x' or '\n' is a char literal; 'ident (no closing quote) is a
        // lifetime. Distinguish by lookahead.
        if self.peek(1) == Some('\\') || (self.peek(1).is_some() && self.peek(2) == Some('\'')) {
            self.bump(); // opening quote
            if self.peek(0) == Some('\\') {
                self.bump();
                self.bump(); // escaped char
            } else {
                self.bump(); // the char
            }
            self.bump(); // closing quote
        } else {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|c| c == '_' || c.is_alphanumeric())
            {
                self.bump();
            }
            self.push(Tok::Punct('\''), line);
        }
    }

    fn number(&mut self) {
        while self
            .peek(0)
            .is_some_and(|c| c == '_' || c.is_alphanumeric())
        {
            self.bump();
        }
        // A fraction, but not the `..` of a range expression.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
        }
    }

    fn ident_or_prefixed(&mut self, line: u32) {
        let mut ident = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                ident.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String/char prefixes: r"", b"", br"", rb"", r#""#, b'…', and
        // raw identifiers r#ident.
        let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb");
        if is_str_prefix {
            if self.peek(0) == Some('"') {
                let s = self.string();
                self.push(Tok::Str(s), line);
                return;
            }
            if self.peek(0) == Some('#') {
                let mut hashes = 0usize;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    let s = self.raw_string(hashes);
                    self.push(Tok::Str(s), line);
                    return;
                }
                if ident == "r" {
                    // Raw identifier r#type: consume and emit the ident.
                    self.bump();
                    let mut raw = String::new();
                    while self
                        .peek(0)
                        .is_some_and(|c| c == '_' || c.is_alphanumeric())
                    {
                        raw.push(c_unwrap(self.bump()));
                    }
                    self.push(Tok::Ident(raw), line);
                    return;
                }
            }
            if ident == "b" && self.peek(0) == Some('\'') {
                self.char_or_lifetime();
                return;
            }
        }
        self.push(Tok::Ident(ident), line);
    }
}

/// `bump` after a successful `peek` cannot fail; isolated so the
/// workspace `unwrap_used` lint stays clean.
fn c_unwrap(c: Option<char>) -> char {
    c.unwrap_or('\0')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    fn strs(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Str(v) => Some(v),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_are_stripped() {
        let src = "// gate(\"x.y\")\n/* gate(\"a.b\") /* nested */ still */ fn f() {}";
        assert!(strs(src).is_empty());
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn strings_with_escapes_and_raw() {
        assert_eq!(strs(r#"let s = "a\"b";"#), vec![r#"a\"b"#]);
        assert_eq!(strs("let s = r#\"raw \" inside\"#;"), vec!["raw \" inside"]);
        assert_eq!(strs(r#"let b = b"bytes";"#), vec!["bytes"]);
    }

    #[test]
    fn lifetimes_do_not_eat_strings() {
        let src = "fn f<'a>(x: &'a str) { g('\\n', 'c', \"site\") }";
        assert_eq!(strs(src), vec!["site"]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\"s\"\n");
        assert_eq!(toks[0], spanned_ident("a", 1));
        assert_eq!(toks[1], spanned_ident("b", 2));
        assert_eq!(
            toks[2],
            Spanned {
                tok: Tok::Str("s".into()),
                line: 3
            }
        );
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = lex("0..5 0.5 0x1b3 1e-4");
        // No identifiers or strings come out of numeric soup; the two
        // range dots survive as punctuation.
        assert!(toks
            .iter()
            .all(|t| !matches!(t.tok, Tok::Str(_) | Tok::Ident(_))));
        let dots = toks.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        assert_eq!(dots, 2);
    }

    fn spanned_ident(i: &str, line: u32) -> Spanned {
        Spanned {
            tok: Tok::Ident(i.into()),
            line,
        }
    }
}
