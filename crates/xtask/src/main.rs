//! Regenerates the committed public-API snapshots under
//! `crates/xtask/api/`. Run after an intentional surface change:
//!
//! ```text
//! cargo run -p xtask
//! ```

fn main() {
    std::fs::create_dir_all(xtask::repo_root().join("crates/xtask/api"))
        .expect("api snapshot dir is creatable");
    for (name, src_dir) in xtask::TRACKED {
        let current = xtask::surface(src_dir);
        let path = xtask::snapshot_path(name);
        std::fs::write(&path, &current).expect("snapshot file is writable");
        println!(
            "wrote {} ({} items)",
            path.display(),
            current.lines().count()
        );
    }
}
