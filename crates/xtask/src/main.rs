//! Repo tooling entry point.
//!
//! ```text
//! cargo run -p xtask                  # regenerate committed snapshots
//! cargo run -p xtask -- audit         # static invariant audit (text)
//! cargo run -p xtask -- audit --json  # JSON report on stdout
//! ```
//!
//! `audit` exits non-zero when the tree has any finding; the same check
//! runs as a unit test, so `cargo test -q` gates it too.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => {
            let json = args.iter().any(|a| a == "--json");
            if let Some(bad) = args[1..].iter().find(|a| *a != "--json") {
                eprintln!("xtask audit: unknown flag `{bad}` (supported: --json)");
                return ExitCode::from(2);
            }
            audit(json)
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}` (supported: audit, or no command to regenerate snapshots)");
            ExitCode::from(2)
        }
        None => {
            bless();
            ExitCode::SUCCESS
        }
    }
}

fn audit(json: bool) -> ExitCode {
    let report = xtask::audit::run(&xtask::audit::AuditConfig::repo());
    if json {
        println!("{}", report.to_json_string());
        eprintln!("{}", report.render().lines().last().unwrap_or_default());
    } else {
        println!("{}", report.render());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Regenerates every committed snapshot under `crates/xtask/api/`: the
/// public-API surfaces of the tracked crates plus the diagnostic-code
/// compatibility snapshot.
fn bless() {
    std::fs::create_dir_all(xtask::repo_root().join("crates/xtask/api"))
        .expect("api snapshot dir is creatable");
    for (name, src_dir) in xtask::TRACKED {
        let current = xtask::surface(src_dir);
        let path = xtask::snapshot_path(name);
        std::fs::write(&path, &current).expect("snapshot file is writable");
        println!(
            "wrote {} ({} items)",
            path.display(),
            current.lines().count()
        );
    }
    let codes = xtask::diag_code_snapshot();
    let path = xtask::snapshot_path("diag-codes");
    std::fs::write(&path, &codes).expect("snapshot file is writable");
    println!("wrote {} ({} codes)", path.display(), codes.lines().count());
}
