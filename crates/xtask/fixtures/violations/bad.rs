//! Audit fixture: one seeded violation per scan rule, while still
//! covering every entry of the test registry so the unused-entry rules
//! (X002/X011) stay quiet.
//!
//! Not compiled — lexed by the audit's fixture tests only.

fn covering_uses(handle: &FaultHandle, metrics: &MetricsRegistry) {
    handle.check("s3.put_object");
    handle.timing("dataflow.pe0");
    metrics.incr("requests_completed");
    metrics.observe("latency_us", 1.0);
}

fn seeded(handle: &FaultHandle, metrics: &MetricsRegistry) {
    // X001: typo'd site — matches no registered template.
    handle.check("s3.putobject");
    // X003: a rule prefix that can never match a registered site.
    let plan = FaultPlan::new().rule(FaultRule::at("nosuch.").fail_once());
    // X010: unregistered metric name.
    metrics.incr("requests_compelted");
    // X012: `latency_us` is a histogram, used here as a counter.
    metrics.incr("latency_us");
    drop(plan);
}

// X030: no parseable `since` version.
#[deprecated(note = "gone soon")]
fn undated() {}

// X031: dated at a version that has not shipped (fixture is at 0.1.0).
#[deprecated(since = "9.9.9", note = "use seeded")]
fn future_dated() {}

// X032: the one-release grace period has passed.
#[deprecated(since = "0.0.1", note = "use seeded")]
fn expired() {}
