//! Audit fixture: a tree with zero findings against the test registry
//! (sites: `s3.put_object`, `dataflow.pe{}`; metrics:
//! `requests_completed` counter, `latency_us` histogram).
//!
//! Not compiled — lexed by the audit's fixture tests only.

fn exercise(handle: &FaultHandle, metrics: &MetricsRegistry) {
    // A commented-out site must not count: // handle.check("ghost.site")
    handle.check("s3.put_object");
    handle.gate("s3.put_object", || Ok(()));
    for pe in 0..4 {
        handle.timing(&format!("dataflow.pe{pe}"));
    }
    let plan = FaultPlan::new().rule(FaultRule::at("dataflow.pe").fail_once());
    metrics.incr("requests_completed");
    let done = metrics.counter("requests_completed");
    metrics.observe("latency_us", done as f64);
    drop(plan);
}

/// A deprecation dated at the current fixture version (0.1.0) is in its
/// grace period and clean.
#[deprecated(since = "0.1.0", note = "use `exercise` instead")]
fn legacy(handle: &FaultHandle) {
    handle.check("dataflow.pe0");
}
