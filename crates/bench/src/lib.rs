//! Experiment definitions regenerating every table and figure of the
//! paper's evaluation (Section 4).
//!
//! Each experiment returns plain data; the `tables` binary renders them
//! next to the paper's published numbers, and the Criterion benches in
//! `benches/` time the underlying machinery. Absolute agreement is not
//! expected (the substrate is a calibrated simulator, not the authors'
//! F1 testbed) — EXPERIMENTS.md records paper-vs-measured per cell and
//! the shape claims each experiment preserves.

#![forbid(unsafe_code)]

pub mod kernels;

use condor::deploy::F1InstanceType;
use condor::{CloudContext, Condor, DeployTarget, DeployedAccelerator, DseConfig};
use condor_dataflow::PeParallelism;
use condor_nn::{dataset, zoo, Network};
use condor_serve::{InferenceServer, ServeConfig};
use std::time::{Duration, Instant};

/// One row of Table 1 ("AWS F1 deployment results").
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Network name.
    pub name: String,
    /// Achieved clock (the paper: TC1 100 MHz, LeNet 180 MHz).
    pub freq_mhz: f64,
    /// LUT utilisation %.
    pub lut_pct: f64,
    /// FF utilisation %.
    pub ff_pct: f64,
    /// DSP utilisation %.
    pub dsp_pct: f64,
    /// BRAM utilisation %.
    pub bram_pct: f64,
    /// Sustained GFLOPS at batch 64.
    pub gflops: f64,
    /// Energy efficiency.
    pub gflops_per_w: f64,
}

/// The paper's published Table 1, for side-by-side reporting.
pub fn paper_table1() -> Vec<Table1Row> {
    vec![
        Table1Row {
            name: "TC1".into(),
            freq_mhz: 100.0,
            lut_pct: 10.47,
            ff_pct: 9.02,
            dsp_pct: 5.63,
            bram_pct: 0.97,
            gflops: 8.36,
            gflops_per_w: 1.56,
        },
        Table1Row {
            name: "LeNet".into(),
            freq_mhz: 180.0,
            lut_pct: 9.48,
            ff_pct: 8.6,
            dsp_pct: 2.53,
            bram_pct: 24.38,
            gflops: 3.35,
            gflops_per_w: 0.78,
        },
    ]
}

/// Builds and cloud-deploys one Table 1 design point: "the generated
/// network processes each feature map sequentially but can exploit full
/// intra-layers parallelism" — 1:1 layer→PE mapping, sequential feature
/// maps (fc SIMD 2 is the calibration knob documented in
/// EXPERIMENTS.md).
pub fn deploy_table1_network(net: Network, freq_mhz: f64) -> DeployedAccelerator {
    let ctx = CloudContext::new("condor-eval-bucket");
    Condor::from_network(net)
        .board("aws-f1")
        .freq_mhz(freq_mhz)
        .parallelism(PeParallelism {
            parallel_in: 1,
            parallel_out: 1,
            fc_simd: 2,
        })
        .build()
        .expect("Table 1 design points are synthesizable")
        .deploy(&DeployTarget::Cloud(&ctx))
        .expect("cloud deployment succeeds in the simulated account")
}

/// Regenerates Table 1.
pub fn table1() -> Vec<Table1Row> {
    let points = [
        (zoo::tc1_weighted(1), 100.0),
        (zoo::lenet_weighted(1), 180.0),
    ];
    points
        .into_iter()
        .map(|(net, freq)| {
            let name = net.name.clone();
            let deployed = deploy_table1_network(net, freq);
            let m = deployed.metrics(64).expect("metrics available");
            Table1Row {
                name,
                freq_mhz: m.freq_mhz,
                lut_pct: m.utilization.lut_pct,
                ff_pct: m.utilization.ff_pct,
                dsp_pct: m.utilization.dsp_pct,
                bram_pct: m.utilization.bram_pct,
                gflops: m.gflops,
                gflops_per_w: m.gflops_per_w,
            }
        })
        .collect()
}

/// One cell of Table 2 ("preliminary results of the improved methodology
/// for the features extraction part").
#[derive(Clone, Debug)]
pub struct Table2Cell {
    /// Network name.
    pub name: String,
    /// GFLOPS of the feature-extraction subnetwork under the improved
    /// (inter-layer parallel) methodology.
    pub gflops: f64,
    /// The parallelism the DSE selected.
    pub parallelism: PeParallelism,
    /// Achieved clock.
    pub freq_mhz: f64,
}

/// The paper's published Table 2.
pub fn paper_table2() -> Vec<(&'static str, f64)> {
    vec![("TC1", 16.56), ("LeNet", 53.51), ("VGG-16", 113.30)]
}

/// The *uniform* improved-methodology configuration Table 2 evaluates:
/// "reading multiple input feature maps concurrently and computing
/// multiple output feature maps in parallel". The paper applies one
/// refined methodology to all three networks; we fix the inter-layer
/// parallelism at 2×4 (the largest degree for which VGG-16's thirteen
/// concurrent convolution PEs still fit the VU9P DSP budget) and request
/// 250 MHz, letting the synthesis model derate the clock per design.
pub fn table2_parallelism() -> PeParallelism {
    PeParallelism {
        parallel_in: 2,
        parallel_out: 4,
        fc_simd: 1,
    }
}

/// The DSE space used by the per-network exploration variant
/// ([`table2_dse`]) and the VGG-16 example.
pub fn table2_dse_space() -> DseConfig {
    DseConfig {
        freqs_mhz: vec![150.0, 200.0, 250.0, 300.0],
        fusions: vec![1],
        parallel_in: vec![1, 2, 4, 8],
        parallel_out: vec![1, 2, 4, 8, 16],
        fc_simd: vec![1],
        precisions: vec![condor_dataflow::Precision::F32],
        eval_batch: 64,
        prefilter: true,
    }
}

/// Regenerates Table 2: the uniform improved methodology applied to each
/// network's feature-extraction prefix.
pub fn table2() -> Vec<Table2Cell> {
    [zoo::tc1(), zoo::lenet(), zoo::vgg16()]
        .into_iter()
        .map(|net| {
            let name = net.name.clone();
            let fe = net
                .feature_extraction_prefix()
                .expect("all zoo networks have a feature-extraction stage");
            let built = Condor::from_network(fe.clone())
                .board("aws-f1")
                .freq_mhz(250.0)
                .parallelism(table2_parallelism())
                .build()
                .expect("feature extraction is synthesizable (unlike the full VGG-16)");
            let mut plan = built.plan.clone();
            plan.freq_mhz = built.synthesis.achieved_fmax_mhz;
            let gflops = condor_dataflow::PipelineModel::from_plan(&plan)
                .gflops(fe.total_flops().expect("valid"), 64);
            Table2Cell {
                name,
                gflops,
                parallelism: table2_parallelism(),
                freq_mhz: built.synthesis.achieved_fmax_mhz,
            }
        })
        .collect()
}

/// The exploration variant of Table 2: per-network maximum-GFLOPS DSE.
/// Small networks parallelise disproportionately well under this
/// objective (LeNet overtakes VGG-16), which is why the headline Table 2
/// uses the uniform methodology — see EXPERIMENTS.md.
pub fn table2_dse() -> Vec<Table2Cell> {
    [zoo::tc1(), zoo::lenet(), zoo::vgg16()]
        .into_iter()
        .map(|net| {
            let name = net.name.clone();
            let fe = net
                .feature_extraction_prefix()
                .expect("all zoo networks have a feature-extraction stage");
            let board = condor_fpga::board("aws-f1").expect("catalog");
            let outcome = condor::dse::explore(&fe, board, &table2_dse_space()).expect("DSE runs");
            let best = outcome
                .require_best()
                .expect("feature extraction is synthesizable (unlike the full VGG-16)");
            Table2Cell {
                name,
                gflops: best.gflops,
                parallelism: best.parallelism,
                freq_mhz: best.synthesis.achieved_fmax_mhz,
            }
        })
        .collect()
}

/// One series of Figure 5 (mean time per image vs batch size).
#[derive(Clone, Debug)]
pub struct Figure5Series {
    /// Network name.
    pub name: String,
    /// Number of computational layers (the paper's convergence knee).
    pub layers: usize,
    /// `(batch, mean_ms_per_image)` points.
    pub points: Vec<(usize, f64)>,
}

/// The batch sizes swept by Figure 5.
pub fn figure5_batches() -> Vec<usize> {
    vec![1, 2, 4, 6, 8, 10, 12, 16, 24, 32, 48, 64]
}

/// Regenerates Figure 5 for TC1 and LeNet at their Table 1 clocks.
pub fn figure5() -> Vec<Figure5Series> {
    let points = [
        (zoo::tc1_weighted(1), 100.0),
        (zoo::lenet_weighted(1), 180.0),
    ];
    points
        .into_iter()
        .map(|(net, freq)| {
            let name = net.name.clone();
            let layers = net.compute_layer_count();
            let deployed = deploy_table1_network(net, freq);
            let points = figure5_batches()
                .into_iter()
                .map(|b| (b, deployed.timing(b).mean_us_per_image / 1000.0))
                .collect();
            Figure5Series {
                name,
                layers,
                points,
            }
        })
        .collect()
}

/// One row of the serving-throughput experiment: the paper's Figure 5
/// batch economics, recovered end-to-end by the `condor-serve` dynamic
/// batcher under concurrent client load.
#[derive(Clone, Debug)]
pub struct ServingRow {
    /// Concurrent client threads.
    pub clients: usize,
    /// Served images per wall-clock second.
    pub throughput_rps: f64,
    /// Mean dispatched hardware batch size.
    pub mean_batch: f64,
    /// Median request latency (µs).
    pub p50_us: f64,
    /// Tail request latency (µs).
    pub p99_us: f64,
}

/// Runs the serving sweep: LeNet on both slots of an f1.4xlarge, with a
/// growing number of concurrent clients each sending `per_client`
/// single-image requests. All figures come from the server's
/// [`condor::MetricsSnapshot`] — the same structure
/// [`condor::AcceleratorMetrics::snapshot`] reports through.
pub fn serving_sweep(client_counts: &[usize], per_client: usize) -> Vec<ServingRow> {
    client_counts
        .iter()
        .map(|&clients| {
            let ctx = CloudContext::new("condor-serving-bench")
                .with_instance_type(F1InstanceType::F1_4xlarge);
            let deployed = Condor::from_network(zoo::lenet_weighted(1))
                .board("aws-f1")
                .freq_mhz(180.0)
                .build()
                .expect("LeNet builds")
                .deploy(&DeployTarget::Cloud(&ctx))
                .expect("cloud deployment");
            let server = InferenceServer::from_deployment(
                deployed,
                ServeConfig::default()
                    .with_max_batch(16)
                    .with_batch_window(Duration::from_millis(3))
                    .with_default_timeout(Duration::from_secs(30)),
            )
            .expect("server starts");

            let started = Instant::now();
            std::thread::scope(|scope| {
                for c in 0..clients {
                    let server = &server;
                    scope.spawn(move || {
                        for sample in dataset::mnist_like(per_client, 9_000 + c as u64) {
                            server.infer(sample.image).expect("request served");
                        }
                    });
                }
            });
            let elapsed = started.elapsed().as_secs_f64();

            let snap = server.shutdown();
            let batches = snap.histogram("batch_size").expect("batches dispatched");
            let latency = snap.histogram("latency_us").expect("latency recorded");
            ServingRow {
                clients,
                throughput_rps: (clients * per_client) as f64 / elapsed,
                mean_batch: batches.mean,
                p50_us: latency.p50,
                p99_us: latency.p99,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn serving_sweep_batches_under_load() {
        let rows = serving_sweep(&[1, 8], 8);
        assert_eq!(rows.len(), 2);
        // 8 concurrent clients must produce real coalescing…
        assert!(rows[1].mean_batch > 1.0, "{rows:?}");
        // …and more coalescing than a single sequential client.
        assert!(rows[1].mean_batch >= rows[0].mean_batch, "{rows:?}");
        for row in &rows {
            assert!(row.throughput_rps > 0.0);
            assert!(row.p99_us >= row.p50_us);
        }
    }

    #[test]
    fn table1_preserves_paper_shape() {
        let rows = table1();
        let tc1 = &rows[0];
        let lenet = &rows[1];
        // Headline shape claims (EXPERIMENTS.md): TC1 out-throughputs
        // LeNet; LeNet dominates BRAM by an order of magnitude; both
        // designs are small on a VU9P; efficiency ordering follows.
        assert!(tc1.gflops > lenet.gflops);
        assert!(lenet.bram_pct > 10.0 * tc1.bram_pct);
        assert!(tc1.lut_pct < 30.0 && lenet.lut_pct < 30.0);
        assert!(tc1.gflops_per_w > lenet.gflops_per_w);
        assert_eq!(tc1.freq_mhz, 100.0);
        assert_eq!(lenet.freq_mhz, 180.0);
    }

    #[test]
    fn table2_preserves_paper_ordering() {
        let cells = table2();
        assert_eq!(cells.len(), 3);
        // VGG-16 > LeNet > TC1, as in the paper.
        assert!(cells[2].gflops > cells[1].gflops, "{cells:?}");
        assert!(cells[1].gflops > cells[0].gflops, "{cells:?}");
        // And the improved methodology beats the Table 1 regime.
        let t1 = table1();
        assert!(cells[0].gflops > t1[0].gflops);
        assert!(cells[1].gflops > t1[1].gflops);
    }

    #[test]
    fn figure5_monotone_with_knee() {
        for series in figure5() {
            for pair in series.points.windows(2) {
                assert!(
                    pair[1].1 <= pair[0].1 + 1e-9,
                    "{}: mean time increased with batch",
                    series.name
                );
            }
            // Converged after the knee: batch 64 within 20 % of batch 2×layers.
            let at = |b: usize| {
                series
                    .points
                    .iter()
                    .find(|(bb, _)| *bb >= b)
                    .expect("swept")
                    .1
            };
            assert!(at(64) >= at(2 * series.layers) * 0.8);
        }
    }
}
