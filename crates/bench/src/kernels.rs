//! Kernel-layer benchmark workloads: naive convolution against the
//! im2col + blocked-GEMM path, whole-network engines, and the threaded
//! runtime's frame-chunked batch execution.
//!
//! Shared between the `kernels` Criterion bench and the
//! `kernels_baseline` binary so the committed `BENCH_kernels.json`
//! baseline and the interactive `cargo bench` run time exactly the same
//! code paths.

use condor_dataflow::runtime::ThreadedRuntime;
use condor_dataflow::PlanBuilder;
use condor_kernels::{
    conv2d, gemm_f32, gemm_i8_requant, im2col, im2col_i8_patches, qconv2d, quantize_into,
    quantize_weights_per_channel, ConvGeometry, Epilogue, GemmBlocking, QWorkspace, QuantParams,
    Workspace,
};
use condor_nn::{dataset, golden, zoo, FastEngine, GoldenEngine, Network, QuantizedEngine};
use condor_tensor::{AllClose, Shape, Tensor, TensorRng};
use std::time::Instant;

/// A VGG-style 3×3 same-convolution: 64→64 channels at 56×56, the
/// mid-network layer shape the feature-extraction stage spends most of
/// its multiply-accumulates on (≈116 M MACs per image).
pub struct VggConvCase {
    /// Input feature-map stack (`64×56×56`).
    pub input: Tensor,
    /// Filter bank (`64×64×3×3`).
    pub weights: Tensor,
    /// Per-filter bias.
    pub bias: Tensor,
    /// Lowering geometry of the layer.
    pub geo: ConvGeometry,
    /// Output channels.
    pub num_output: usize,
}

impl VggConvCase {
    /// Shape of the convolution output.
    pub fn out_shape(&self) -> Shape {
        Shape::new(1, self.num_output, self.geo.out_h, self.geo.out_w)
    }
}

/// Builds the VGG-style convolution workload with seeded random data.
pub fn vgg_conv_case(seed: u64) -> VggConvCase {
    let (c, h, w, k, f) = (64usize, 56usize, 56usize, 3usize, 64usize);
    let geo = ConvGeometry {
        in_c: c,
        in_h: h,
        in_w: w,
        kernel: k,
        stride: 1,
        pad: 1,
        out_h: Shape::conv_out_dim(h, k, 1, 1),
        out_w: Shape::conv_out_dim(w, k, 1, 1),
    };
    let mut rng = TensorRng::seeded(seed);
    VggConvCase {
        input: rng.uniform(Shape::chw(c, h, w), -1.0, 1.0),
        weights: rng.uniform(Shape::new(f, c, k, k), -0.2, 0.2),
        bias: rng.uniform(Shape::vector(f), -0.5, 0.5),
        geo,
        num_output: f,
    }
}

/// Runs the golden engine's textbook sliding-window convolution.
pub fn conv_naive(case: &VggConvCase) -> Tensor {
    golden::convolve(
        &case.input,
        &case.weights,
        Some(&case.bias),
        case.out_shape(),
        case.num_output,
        case.geo.kernel,
        case.geo.stride,
        case.geo.pad,
        true,
    )
}

/// Runs the same layer through im2col + blocked GEMM into a reused
/// output buffer and lowering workspace.
pub fn conv_fast(case: &VggConvCase, out: &mut [f32], ws: &mut Workspace) {
    conv2d(
        case.input.as_slice(),
        case.weights.as_slice(),
        Some(case.bias.as_slice()),
        case.num_output,
        &case.geo,
        None,
        out,
        ws,
    );
}

/// The VGG-style convolution lowered to the symmetric INT8 scheme:
/// quantized operands, bias in accumulator units, per-channel requantize
/// multipliers, and the analytic per-channel error bound the quantized
/// output must honour against the f32 golden result.
pub struct QuantVggCase {
    /// Quantized input feature maps (`64×56×56` `i8`).
    pub input: Vec<i8>,
    /// Per-channel quantized filter bank (`64×64×3×3` `i8`).
    pub weights: Vec<i8>,
    /// Bias in accumulator units: `round(b[f] / (s_in · s_w[f]))`.
    pub bias: Vec<i32>,
    /// Requantize multipliers: `s_in · s_w[f] / s_out`.
    pub multipliers: Vec<f32>,
    /// Lowering geometry (same layer as [`VggConvCase`]).
    pub geo: ConvGeometry,
    /// Output channels.
    pub num_output: usize,
    /// Output quantization parameters.
    pub out_params: QuantParams,
    /// Analytic per-channel absolute error bound vs the f32 golden
    /// output (input rounding · weight L1 + weight rounding · patch
    /// magnitude + cross term + output rounding).
    pub bound: Vec<f32>,
}

/// Quantizes [`VggConvCase`] end to end: min-max input calibration,
/// per-channel weight scales, and output scale observed from the f32
/// golden result (exactly how the quantized engine calibrates).
pub fn quant_vgg_case(case: &VggConvCase, golden_out: &Tensor) -> QuantVggCase {
    let abs_in = case
        .input
        .as_slice()
        .iter()
        .fold(0.0f32, |m, &x| m.max(x.abs()));
    let in_params = QuantParams::from_abs_max(abs_in);
    let mut input = vec![0i8; case.input.len()];
    quantize_into(case.input.as_slice(), in_params, &mut input);

    let mut weights = vec![0i8; case.weights.len()];
    let wparams =
        quantize_weights_per_channel(case.weights.as_slice(), case.num_output, &mut weights);

    let abs_out = golden_out
        .as_slice()
        .iter()
        .fold(0.0f32, |m, &x| m.max(x.abs()));
    let out_params = QuantParams::from_abs_max(abs_out);

    let row = case.weights.len() / case.num_output;
    let err_in = in_params.scale / 2.0;
    let mut bias = Vec::with_capacity(case.num_output);
    let mut multipliers = Vec::with_capacity(case.num_output);
    let mut bound = Vec::with_capacity(case.num_output);
    for (f, wp) in wparams.iter().enumerate() {
        let s_w = wp.scale;
        let acc_unit = in_params.scale as f64 * s_w as f64;
        bias.push((case.bias.as_slice()[f] as f64 / acc_unit).round() as i32);
        multipliers.push((acc_unit / out_params.scale as f64) as f32);
        let l1: f32 = case.weights.as_slice()[f * row..(f + 1) * row]
            .iter()
            .map(|w| w.abs())
            .sum();
        let k = row as f32;
        let layer_err =
            l1 * err_in + (s_w / 2.0) * k * (abs_in + err_in) + in_params.scale * s_w / 2.0;
        bound.push((layer_err + out_params.scale / 2.0) * 1.01 + 1e-5);
    }
    QuantVggCase {
        input,
        weights,
        bias,
        multipliers,
        geo: case.geo,
        num_output: case.num_output,
        out_params,
        bound,
    }
}

/// Runs the layer through int8 im2col + packed GEMM + fused requantize
/// into a reused `i8` output buffer and quantized workspace. No ReLU is
/// fused, matching the bare [`conv_naive`]/[`conv_fast`] layer.
pub fn conv_int8(case: &QuantVggCase, out: &mut [i8], ws: &mut QWorkspace) {
    qconv2d(
        &case.input,
        &case.weights,
        Some(&case.bias),
        case.num_output,
        &case.geo,
        &case.multipliers,
        false,
        out,
        ws,
    );
}

/// Whole-network workload: a weighted LeNet, a batch of MNIST-like
/// images, and a fast engine with its arena already warm.
pub struct EngineCase {
    /// The network (owns the weights; golden engines borrow it).
    pub net: Network,
    /// Fast engine reusing one scratch arena across calls.
    pub fast: FastEngine,
    /// Input batch.
    pub images: Vec<Tensor>,
}

/// Builds the LeNet engine workload.
pub fn lenet_case(batch: usize) -> EngineCase {
    let net = zoo::lenet_weighted(5);
    let fast = FastEngine::new(&net).expect("zoo network is fully weighted");
    let images = dataset::mnist_like(batch, 7)
        .into_iter()
        .map(|s| s.image)
        .collect();
    EngineCase { net, fast, images }
}

/// Threaded-runtime workload: LeNet mapped to one PE per layer,
/// streaming frame-sized chunks between PE threads.
pub struct RuntimeCase {
    /// The functional runtime under test.
    pub runtime: ThreadedRuntime,
    /// Input batch.
    pub images: Vec<Tensor>,
}

/// The VGG layer's bare GEMM (`m=64, n=3136, k=576`) with both domains'
/// operands pre-lowered, isolating the matrix kernels from the im2col
/// cost: f32 weights × `k×n` columns against packed int8 weights ×
/// patch-major `n×k` patches with the fused requantize epilogue.
pub struct GemmCase {
    /// Output channels (GEMM rows).
    pub m: usize,
    /// Output pixels (GEMM columns).
    pub n: usize,
    /// Reduction depth (`C·K²`).
    pub k: usize,
    /// f32 weights, `m×k` row-major.
    pub a: Vec<f32>,
    /// f32 lowered patches, `k×n` row-major.
    pub b: Vec<f32>,
    /// f32 per-row bias.
    pub bias: Vec<f32>,
    /// int8 weights, `m×k` row-major (per-channel quantized).
    pub qa: Vec<i8>,
    /// int8 lowered patches, patch-major `n×k` row-major.
    pub qb_t: Vec<i8>,
    /// int8-path bias in accumulator units.
    pub qbias: Vec<i32>,
    /// Per-row requantize multipliers.
    pub multipliers: Vec<f32>,
}

/// Lowers both domains' operands for the bare-GEMM comparison.
pub fn gemm_case(case: &VggConvCase, qcase: &QuantVggCase) -> GemmCase {
    let (m, n, k) = (
        case.num_output,
        case.geo.lowered_cols(),
        case.geo.lowered_rows(),
    );
    let mut b = vec![0.0f32; case.geo.lowered_len()];
    im2col(case.input.as_slice(), &case.geo, &mut b);
    let mut qb_t = vec![0i8; case.geo.lowered_len()];
    im2col_i8_patches(&qcase.input, &case.geo, &mut qb_t);
    GemmCase {
        m,
        n,
        k,
        a: case.weights.as_slice().to_vec(),
        b,
        bias: case.bias.as_slice().to_vec(),
        qa: qcase.weights.clone(),
        qb_t,
        qbias: qcase.bias.clone(),
        multipliers: qcase.multipliers.clone(),
    }
}

/// The f32 blocked GEMM with the bias epilogue.
pub fn gemm_f32_run(case: &GemmCase, out: &mut [f32]) {
    gemm_f32(
        case.m,
        case.n,
        case.k,
        &case.a,
        &case.b,
        out,
        GemmBlocking::default(),
        Epilogue::Bias(&case.bias),
    );
}

/// The packed int8 GEMM with the fused bias/requantize epilogue.
pub fn gemm_int8_run(case: &GemmCase, out: &mut [i8], ws: &mut QWorkspace) {
    gemm_i8_requant(
        case.m,
        case.n,
        case.k,
        &case.qa,
        &case.qb_t,
        out,
        GemmBlocking::default(),
        Some(&case.qbias),
        &case.multipliers,
        false,
        ws,
    );
}

/// Quantized whole-network workload: a LeNet calibrated on a slice of
/// the batch it will then infer.
pub struct QuantEngineCase {
    /// Calibrated int8 engine with its arena already warm.
    pub engine: QuantizedEngine,
    /// Input batch (also the calibration set, so the analytic budgets
    /// are guaranteed to hold on it).
    pub images: Vec<Tensor>,
}

/// Builds the quantized LeNet workload.
pub fn quantized_lenet_case(batch: usize) -> QuantEngineCase {
    let net = zoo::lenet_weighted(5);
    let images: Vec<Tensor> = dataset::mnist_like(batch, 7)
        .into_iter()
        .map(|s| s.image)
        .collect();
    let engine = QuantizedEngine::calibrate(&net, &images).expect("zoo network calibrates");
    QuantEngineCase { engine, images }
}

/// Builds the threaded-runtime workload.
pub fn runtime_case(batch: usize) -> RuntimeCase {
    let net = zoo::lenet_weighted(5);
    let plan = PlanBuilder::new(&net)
        .build()
        .expect("zoo network plans cleanly");
    let runtime = ThreadedRuntime::new(&net, &plan).expect("runtime wires");
    let images = dataset::mnist_like(batch, 7)
        .into_iter()
        .map(|s| s.image)
        .collect();
    RuntimeCase { runtime, images }
}

/// Cross-checks every fast path against the golden oracle; panics on the
/// first disagreement. CI runs this as the bench smoke step
/// (`CONDOR_BENCH_SMOKE=1`), so a kernel regression fails the build even
/// though CI never runs the timing loops.
pub fn assert_kernels_match_golden() {
    // Single layer: im2col + GEMM vs the sliding-window loop nest.
    let case = vgg_conv_case(42);
    let want = conv_naive(&case);
    let mut out = vec![0.0f32; case.out_shape().len()];
    let mut ws = Workspace::new();
    conv_fast(&case, &mut out, &mut ws);
    let got = Tensor::from_vec(case.out_shape(), out);
    assert!(
        got.all_close_tol(&want, 1e-4, 1e-4),
        "im2col+GEMM convolution diverged from the golden loop nest"
    );

    // Whole networks: fast engine vs golden engine.
    for net in [zoo::tc1_weighted(3), zoo::lenet_weighted(3)] {
        let golden_engine = GoldenEngine::new(&net).expect("weighted");
        let mut fast = FastEngine::new(&net).expect("weighted");
        let mut rng = TensorRng::seeded(99);
        for _ in 0..3 {
            let img = rng.uniform(net.input_shape, -1.0, 1.0);
            let want = golden_engine.infer(&img).expect("golden runs");
            let got = fast.infer(&img).expect("fast runs");
            assert!(
                got.all_close_tol(&want, 1e-4, 1e-4),
                "fast engine diverged from golden on {}",
                net.name
            );
        }
    }

    // INT8 convolution: dequantized output must sit inside the analytic
    // per-channel error bound of the f32 golden result.
    let qcase = quant_vgg_case(&case, &want);
    let mut qout = vec![0i8; case.out_shape().len()];
    let mut qws = QWorkspace::new();
    conv_int8(&qcase, &mut qout, &mut qws);
    let pixels = case.geo.out_h * case.geo.out_w;
    for (f, (chunk, want_chunk)) in qout
        .chunks_exact(pixels)
        .zip(want.as_slice().chunks_exact(pixels))
        .enumerate()
    {
        for (&q, &w) in chunk.iter().zip(want_chunk) {
            let err = (qcase.out_params.dequantize(q) - w).abs();
            assert!(
                err <= qcase.bound[f],
                "int8 convolution error {err} exceeds the analytic bound {} on channel {f}",
                qcase.bound[f]
            );
        }
    }

    // Quantized engines: every layer inside its declared error budget on
    // the calibration inputs (the guaranteed regime).
    for net in [zoo::tc1_weighted(3), zoo::lenet_weighted(3)] {
        let mut rng = TensorRng::seeded(7);
        let calib: Vec<Tensor> = (0..4)
            .map(|_| rng.uniform(net.input_shape, -1.0, 1.0))
            .collect();
        let mut q = QuantizedEngine::calibrate(&net, &calib).expect("calibrates");
        let report = q.accuracy_report(&calib).expect("runs");
        assert!(
            report.within_budget(),
            "quantized engine exceeded its error budget on {}: {:?}",
            net.name,
            report.worst()
        );
    }

    // Threaded runtime: frame-chunked PE streaming vs golden batch.
    let rt = runtime_case(4);
    let got = rt.runtime.run_batch(&rt.images).expect("runtime runs");
    let golden_engine = GoldenEngine::new(rt.runtime.network()).expect("weighted");
    let want = golden_engine.infer_batch(&rt.images).expect("golden runs");
    for (g, w) in got.iter().zip(&want) {
        assert!(
            g.all_close_tol(w, 1e-4, 1e-4),
            "threaded runtime diverged from golden"
        );
    }
}

/// Times `samples` runs of `f` (after one untimed warm-up) and returns
/// the median in nanoseconds — the statistic `BENCH_kernels.json`
/// records per benchmark.
pub fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut times: Vec<u128> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as u64
}

/// Result of a paired two-body timing run: each body's overall median,
/// its fastest sample, and the contention-resistant speedup estimate.
pub struct PairedTiming {
    /// Overall median of the first body, nanoseconds.
    pub f_ns: u64,
    /// Overall median of the second body, nanoseconds.
    pub g_ns: u64,
    /// Fastest sample of the first body, nanoseconds.
    pub f_min_ns: u64,
    /// Fastest sample of the second body, nanoseconds.
    pub g_min_ns: u64,
    /// `f_min_ns / g_min_ns` — the uncontended capability ratio.
    pub ratio_f_over_g: f64,
}

/// Times two bodies within one process, alternating *blocks* of
/// `samples` runs (`f×samples, g×samples, f×samples, ...` over `rounds`
/// rounds, one untimed warm-up each).
///
/// Why blocks rather than strict `f, g, f, g` interleaving: each body
/// keeps its own operands cache-resident across a block, as in
/// steady-state inference where consecutive images reuse the same
/// weights — per-sample alternation would charge both kernels a cold
/// refill every sample. Why alternate at all: this host's clock drifts
/// between runs (and slowly within one), so sampling both bodies under
/// the same frequency envelope keeps their *ratio* meaningful even when
/// absolute times are not.
///
/// The returned [`PairedTiming::ratio_f_over_g`] is built for a noisy
/// shared host in three steps. Within each round, each body's *minimum*
/// sample is its least-contaminated observation (contention only ever
/// slows a sample down — classic min-time estimation). The two minima of
/// one round come from adjacent blocks, so they saw (nearly) the same
/// clock envelope and their quotient is a paired estimate of the
/// capability ratio. The median of the per-round quotients then rejects
/// rounds where a neighbor's load contaminated even the minima. Pooled
/// medians and minima are also reported for the absolute-ns records.
pub fn blockwise_median_ns(
    rounds: usize,
    samples: usize,
    mut f: impl FnMut(),
    mut g: impl FnMut(),
) -> PairedTiming {
    fn median(v: &mut [u128]) -> u128 {
        v.sort_unstable();
        v[v.len() / 2]
    }
    f();
    g();
    // Everything is preallocated so the measurement loop itself never
    // touches the allocator: fresh pages mid-run would perturb the very
    // placement effects the pairing is trying to hold constant.
    let (rounds, samples) = (rounds.max(1), samples.max(1));
    let mut tf: Vec<u128> = Vec::with_capacity(rounds * samples);
    let mut tg: Vec<u128> = Vec::with_capacity(rounds * samples);
    let mut ratios: Vec<f64> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let round = tf.len();
        for _ in 0..samples {
            let start = Instant::now();
            f();
            tf.push(start.elapsed().as_nanos());
        }
        for _ in 0..samples {
            let start = Instant::now();
            g();
            tg.push(start.elapsed().as_nanos());
        }
        let rf_min = tf[round..].iter().copied().min().unwrap_or(1).max(1);
        let rg_min = tg[round..].iter().copied().min().unwrap_or(1).max(1);
        ratios.push(rf_min as f64 / rg_min as f64);
    }
    ratios.sort_unstable_by(f64::total_cmp);
    let f_min = tf.iter().copied().min().unwrap_or(1).max(1);
    let g_min = tg.iter().copied().min().unwrap_or(1).max(1);
    PairedTiming {
        f_ns: median(&mut tf) as u64,
        g_ns: median(&mut tg) as u64,
        f_min_ns: f_min as u64,
        g_min_ns: g_min as u64,
        ratio_f_over_g: ratios[ratios.len() / 2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_checks_pass() {
        assert_kernels_match_golden();
    }

    #[test]
    fn blockwise_median_times_both_bodies() {
        let (mut calls_f, mut calls_g) = (0u32, 0u32);
        let t = blockwise_median_ns(3, 4, || calls_f += 1, || calls_g += 1);
        assert_eq!(calls_f, 13); // warm-up + 3 rounds × 4 samples
        assert_eq!(calls_g, 13);
        assert!(t.f_ns < 1_000_000_000 && t.g_ns < 1_000_000_000);
        assert!(t.f_min_ns <= t.f_ns && t.g_min_ns <= t.g_ns);
        assert!(t.ratio_f_over_g.is_finite() && t.ratio_f_over_g > 0.0);
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut calls = 0u32;
        let ns = median_ns(5, || calls += 1);
        assert_eq!(calls, 6); // warm-up + 5 samples
        assert!(ns < 1_000_000_000);
    }
}
