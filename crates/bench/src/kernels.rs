//! Kernel-layer benchmark workloads: naive convolution against the
//! im2col + blocked-GEMM path, whole-network engines, and the threaded
//! runtime's frame-chunked batch execution.
//!
//! Shared between the `kernels` Criterion bench and the
//! `kernels_baseline` binary so the committed `BENCH_kernels.json`
//! baseline and the interactive `cargo bench` run time exactly the same
//! code paths.

use condor_dataflow::runtime::ThreadedRuntime;
use condor_dataflow::PlanBuilder;
use condor_kernels::{conv2d, ConvGeometry, Workspace};
use condor_nn::{dataset, golden, zoo, FastEngine, GoldenEngine, Network};
use condor_tensor::{AllClose, Shape, Tensor, TensorRng};
use std::time::Instant;

/// A VGG-style 3×3 same-convolution: 64→64 channels at 56×56, the
/// mid-network layer shape the feature-extraction stage spends most of
/// its multiply-accumulates on (≈116 M MACs per image).
pub struct VggConvCase {
    /// Input feature-map stack (`64×56×56`).
    pub input: Tensor,
    /// Filter bank (`64×64×3×3`).
    pub weights: Tensor,
    /// Per-filter bias.
    pub bias: Tensor,
    /// Lowering geometry of the layer.
    pub geo: ConvGeometry,
    /// Output channels.
    pub num_output: usize,
}

impl VggConvCase {
    /// Shape of the convolution output.
    pub fn out_shape(&self) -> Shape {
        Shape::new(1, self.num_output, self.geo.out_h, self.geo.out_w)
    }
}

/// Builds the VGG-style convolution workload with seeded random data.
pub fn vgg_conv_case(seed: u64) -> VggConvCase {
    let (c, h, w, k, f) = (64usize, 56usize, 56usize, 3usize, 64usize);
    let geo = ConvGeometry {
        in_c: c,
        in_h: h,
        in_w: w,
        kernel: k,
        stride: 1,
        pad: 1,
        out_h: Shape::conv_out_dim(h, k, 1, 1),
        out_w: Shape::conv_out_dim(w, k, 1, 1),
    };
    let mut rng = TensorRng::seeded(seed);
    VggConvCase {
        input: rng.uniform(Shape::chw(c, h, w), -1.0, 1.0),
        weights: rng.uniform(Shape::new(f, c, k, k), -0.2, 0.2),
        bias: rng.uniform(Shape::vector(f), -0.5, 0.5),
        geo,
        num_output: f,
    }
}

/// Runs the golden engine's textbook sliding-window convolution.
pub fn conv_naive(case: &VggConvCase) -> Tensor {
    golden::convolve(
        &case.input,
        &case.weights,
        Some(&case.bias),
        case.out_shape(),
        case.num_output,
        case.geo.kernel,
        case.geo.stride,
        case.geo.pad,
        true,
    )
}

/// Runs the same layer through im2col + blocked GEMM into a reused
/// output buffer and lowering workspace.
pub fn conv_fast(case: &VggConvCase, out: &mut [f32], ws: &mut Workspace) {
    conv2d(
        case.input.as_slice(),
        case.weights.as_slice(),
        Some(case.bias.as_slice()),
        case.num_output,
        &case.geo,
        None,
        out,
        ws,
    );
}

/// Whole-network workload: a weighted LeNet, a batch of MNIST-like
/// images, and a fast engine with its arena already warm.
pub struct EngineCase {
    /// The network (owns the weights; golden engines borrow it).
    pub net: Network,
    /// Fast engine reusing one scratch arena across calls.
    pub fast: FastEngine,
    /// Input batch.
    pub images: Vec<Tensor>,
}

/// Builds the LeNet engine workload.
pub fn lenet_case(batch: usize) -> EngineCase {
    let net = zoo::lenet_weighted(5);
    let fast = FastEngine::new(&net).expect("zoo network is fully weighted");
    let images = dataset::mnist_like(batch, 7)
        .into_iter()
        .map(|s| s.image)
        .collect();
    EngineCase { net, fast, images }
}

/// Threaded-runtime workload: LeNet mapped to one PE per layer,
/// streaming frame-sized chunks between PE threads.
pub struct RuntimeCase {
    /// The functional runtime under test.
    pub runtime: ThreadedRuntime,
    /// Input batch.
    pub images: Vec<Tensor>,
}

/// Builds the threaded-runtime workload.
pub fn runtime_case(batch: usize) -> RuntimeCase {
    let net = zoo::lenet_weighted(5);
    let plan = PlanBuilder::new(&net)
        .build()
        .expect("zoo network plans cleanly");
    let runtime = ThreadedRuntime::new(&net, &plan).expect("runtime wires");
    let images = dataset::mnist_like(batch, 7)
        .into_iter()
        .map(|s| s.image)
        .collect();
    RuntimeCase { runtime, images }
}

/// Cross-checks every fast path against the golden oracle; panics on the
/// first disagreement. CI runs this as the bench smoke step
/// (`CONDOR_BENCH_SMOKE=1`), so a kernel regression fails the build even
/// though CI never runs the timing loops.
pub fn assert_kernels_match_golden() {
    // Single layer: im2col + GEMM vs the sliding-window loop nest.
    let case = vgg_conv_case(42);
    let want = conv_naive(&case);
    let mut out = vec![0.0f32; case.out_shape().len()];
    let mut ws = Workspace::new();
    conv_fast(&case, &mut out, &mut ws);
    let got = Tensor::from_vec(case.out_shape(), out);
    assert!(
        got.all_close_tol(&want, 1e-4, 1e-4),
        "im2col+GEMM convolution diverged from the golden loop nest"
    );

    // Whole networks: fast engine vs golden engine.
    for net in [zoo::tc1_weighted(3), zoo::lenet_weighted(3)] {
        let golden_engine = GoldenEngine::new(&net).expect("weighted");
        let mut fast = FastEngine::new(&net).expect("weighted");
        let mut rng = TensorRng::seeded(99);
        for _ in 0..3 {
            let img = rng.uniform(net.input_shape, -1.0, 1.0);
            let want = golden_engine.infer(&img).expect("golden runs");
            let got = fast.infer(&img).expect("fast runs");
            assert!(
                got.all_close_tol(&want, 1e-4, 1e-4),
                "fast engine diverged from golden on {}",
                net.name
            );
        }
    }

    // Threaded runtime: frame-chunked PE streaming vs golden batch.
    let rt = runtime_case(4);
    let got = rt.runtime.run_batch(&rt.images).expect("runtime runs");
    let golden_engine = GoldenEngine::new(rt.runtime.network()).expect("weighted");
    let want = golden_engine.infer_batch(&rt.images).expect("golden runs");
    for (g, w) in got.iter().zip(&want) {
        assert!(
            g.all_close_tol(w, 1e-4, 1e-4),
            "threaded runtime diverged from golden"
        );
    }
}

/// Times `samples` runs of `f` (after one untimed warm-up) and returns
/// the median in nanoseconds — the statistic `BENCH_kernels.json`
/// records per benchmark.
pub fn median_ns(samples: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut times: Vec<u128> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2] as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_checks_pass() {
        assert_kernels_match_golden();
    }

    #[test]
    fn median_is_order_insensitive() {
        let mut calls = 0u32;
        let ns = median_ns(5, || calls += 1);
        assert_eq!(calls, 6); // warm-up + 5 samples
        assert!(ns < 1_000_000_000);
    }
}
