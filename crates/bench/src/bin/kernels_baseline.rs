//! Records the kernel-layer performance baseline.
//!
//! Times the same workloads as `benches/kernels.rs` (after the same
//! golden cross-check), then writes `BENCH_kernels.json`: machine
//! identification, the median wall-clock nanoseconds per benchmark, and
//! the derived naive-vs-im2col convolution speedup. The committed file
//! at the repo root is the recorded baseline this optimisation PR claims
//! (≥5× on the VGG-style layer); regenerate it with
//! `cargo run --release -p condor-bench --bin kernels_baseline`.

#![allow(clippy::unwrap_used)] // CLI tool: fail loud

use condor_bench::kernels::{
    assert_kernels_match_golden, conv_fast, conv_naive, lenet_case, median_ns, runtime_case,
    vgg_conv_case,
};
use condor_cjson::value::Value;
use condor_kernels::Workspace;
use condor_nn::GoldenEngine;
use std::hint::black_box;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".into());

    eprintln!("cross-checking fast paths against the golden oracle...");
    assert_kernels_match_golden();

    let mut rows: Vec<(String, u64)> = Vec::new();
    let mut record = |name: &str, ns: u64| {
        eprintln!("  {name}: median {:.3} ms", ns as f64 / 1e6);
        rows.push((name.to_string(), ns));
    };

    eprintln!("timing (median over samples, one warm-up each)...");
    let case = vgg_conv_case(42);
    let naive_ns = median_ns(5, || {
        black_box(conv_naive(&case));
    });
    record("conv_naive_vgg56", naive_ns);

    let mut out = vec![0.0f32; case.out_shape().len()];
    let mut ws = Workspace::with_capacity(case.geo.lowered_len());
    let fast_ns = median_ns(20, || {
        conv_fast(&case, &mut out, &mut ws);
        black_box(out.last().copied());
    });
    record("conv_im2col_gemm_vgg56", fast_ns);

    let mut engines = lenet_case(16);
    record(
        "lenet_fast_batch16",
        median_ns(20, || {
            black_box(engines.fast.infer_batch(&engines.images).unwrap());
        }),
    );
    let golden = GoldenEngine::new(&engines.net).unwrap();
    record(
        "lenet_golden_batch16",
        median_ns(10, || {
            black_box(golden.infer_batch(&engines.images).unwrap());
        }),
    );
    let rt = runtime_case(16);
    record(
        "lenet_runtime_batch16",
        median_ns(10, || {
            black_box(rt.runtime.run_batch(&rt.images).unwrap());
        }),
    );

    let speedup = naive_ns as f64 / fast_ns.max(1) as f64;
    eprintln!("derived vgg conv speedup (naive / im2col+gemm): {speedup:.1}x");
    assert!(
        speedup >= 5.0,
        "kernel layer regressed: naive/fast convolution speedup {speedup:.2}x < 5x"
    );

    let machine = Value::object([
        ("arch".to_string(), Value::str(std::env::consts::ARCH)),
        ("os".to_string(), Value::str(std::env::consts::OS)),
        (
            "cpus".to_string(),
            Value::int(
                std::thread::available_parallelism()
                    .map(|n| n.get() as i64)
                    .unwrap_or(1),
            ),
        ),
    ]);
    let benchmarks = Value::object(rows.iter().map(|(name, ns)| {
        (
            name.clone(),
            Value::object([("median_ns".to_string(), Value::int(*ns as i64))]),
        )
    }));
    let doc = Value::object([
        ("schema".to_string(), Value::str("condor-bench-kernels/v1")),
        ("machine".to_string(), machine),
        ("benchmarks".to_string(), benchmarks),
        (
            "derived".to_string(),
            Value::object([(
                "vgg_conv_speedup_naive_over_fast".to_string(),
                Value::float((speedup * 100.0).round() / 100.0),
            )]),
        ),
    ]);

    std::fs::write(
        &out_path,
        condor_cjson::write::to_string_pretty(&doc) + "\n",
    )
    .expect("baseline file written");
    eprintln!("wrote {out_path}");
}
