//! Records the kernel-layer performance baseline.
//!
//! Times the same workloads as `benches/kernels.rs` (after the same
//! golden cross-check), then writes `BENCH_kernels.json`: machine
//! identification, the median wall-clock nanoseconds per benchmark, and
//! the derived speedups — naive-vs-im2col convolution (≥5× claimed) and
//! f32-vs-int8 GEMM on the same VGG-style layer (≥2× claimed). The f32
//! and int8 GEMMs are timed in alternating same-process blocks and their
//! speedup is a paired min-time statistic, estimating the uncontended
//! capability ratio on a host whose clock drifts; regenerate the file
//! with `cargo run --release -p condor-bench --bin kernels_baseline`.

#![allow(clippy::unwrap_used)] // CLI tool: fail loud

use condor_bench::kernels::{
    assert_kernels_match_golden, blockwise_median_ns, conv_fast, conv_int8, conv_naive, gemm_case,
    gemm_f32_run, gemm_int8_run, lenet_case, median_ns, quant_vgg_case, quantized_lenet_case,
    runtime_case, vgg_conv_case,
};
use condor_cjson::value::Value;
use condor_kernels::{QWorkspace, Workspace};
use condor_nn::GoldenEngine;
use std::hint::black_box;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".into());

    eprintln!("cross-checking fast paths against the golden oracle...");
    assert_kernels_match_golden();

    let mut rows: Vec<(String, u64)> = Vec::new();
    let mut record = |name: &str, ns: u64| {
        eprintln!("  {name}: median {:.3} ms", ns as f64 / 1e6);
        rows.push((name.to_string(), ns));
    };

    eprintln!("timing (median over samples, one warm-up each)...");
    let case = vgg_conv_case(42);
    let golden_out = conv_naive(&case);
    let qcase = quant_vgg_case(&case, &golden_out);

    // Bare GEMM first, f32 vs int8 on the same pre-lowered operands,
    // timed in alternating same-process blocks on a still-quiet heap:
    // this host's clock drifts between runs, so only a same-process
    // ratio is trustworthy; block-wise alternation keeps each kernel's
    // operands cache-resident as in steady-state inference; and timing
    // before the convolution workloads keeps both kernels' operand page
    // placement comparable instead of heap-history-dependent.
    let gcase = gemm_case(&case, &qcase);
    let mut gout = vec![0.0f32; gcase.m * gcase.n];
    let mut gqout = vec![0i8; gcase.m * gcase.n];
    let mut qws = QWorkspace::new();
    // Several attempts, keeping the least-contended one — judged by the
    // sum of the two kernels' fastest samples, never by the ratio
    // itself: contention is one-sided, so the attempt with the smallest
    // absolute minima is the window closest to an unloaded machine.
    let mut gemm_pair = None;
    for attempt in 0..5 {
        let t = blockwise_median_ns(
            6,
            8,
            || {
                gemm_f32_run(&gcase, &mut gout);
                black_box(gout.last().copied());
            },
            || {
                gemm_int8_run(&gcase, &mut gqout, &mut qws);
                black_box(gqout.last().copied());
            },
        );
        eprintln!(
            "  gemm window {attempt}: f32 min {:.3} ms, int8 min {:.3} ms",
            t.f_min_ns as f64 / 1e6,
            t.g_min_ns as f64 / 1e6
        );
        let better = gemm_pair
            .as_ref()
            .is_none_or(|best: &condor_bench::kernels::PairedTiming| {
                t.f_min_ns + t.g_min_ns < best.f_min_ns + best.g_min_ns
            });
        if better {
            gemm_pair = Some(t);
        }
    }
    let gemm_pair = gemm_pair.expect("at least one measurement window");
    record("gemm_f32_vgg56", gemm_pair.f_ns);
    record("gemm_int8_vgg56", gemm_pair.g_ns);
    let gemm_mins = [
        ("gemm_f32_vgg56", gemm_pair.f_min_ns),
        ("gemm_int8_vgg56", gemm_pair.g_min_ns),
    ];

    let naive_ns = median_ns(5, || {
        black_box(conv_naive(&case));
    });
    record("conv_naive_vgg56", naive_ns);

    let mut out = vec![0.0f32; case.out_shape().len()];
    let mut ws = Workspace::with_capacity(case.geo.lowered_len());
    let fast_ns = median_ns(20, || {
        conv_fast(&case, &mut out, &mut ws);
        black_box(out.last().copied());
    });
    record("conv_im2col_gemm_vgg56", fast_ns);
    let mut qout = vec![0i8; case.out_shape().len()];
    record(
        "conv_int8_vgg56",
        median_ns(20, || {
            conv_int8(&qcase, &mut qout, &mut qws);
            black_box(qout.last().copied());
        }),
    );

    let mut engines = lenet_case(16);
    record(
        "lenet_fast_batch16",
        median_ns(20, || {
            black_box(engines.fast.infer_batch(&engines.images).unwrap());
        }),
    );
    let mut quantized = quantized_lenet_case(16);
    record(
        "lenet_quantized_batch16",
        median_ns(20, || {
            for img in &quantized.images {
                black_box(quantized.engine.infer(img).unwrap());
            }
        }),
    );
    let golden = GoldenEngine::new(&engines.net).unwrap();
    record(
        "lenet_golden_batch16",
        median_ns(10, || {
            black_box(golden.infer_batch(&engines.images).unwrap());
        }),
    );
    let rt = runtime_case(16);
    record(
        "lenet_runtime_batch16",
        median_ns(10, || {
            black_box(rt.runtime.run_batch(&rt.images).unwrap());
        }),
    );

    let speedup = naive_ns as f64 / fast_ns.max(1) as f64;
    eprintln!("derived vgg conv speedup (naive / im2col+gemm): {speedup:.1}x");
    assert!(
        speedup >= 5.0,
        "kernel layer regressed: naive/fast convolution speedup {speedup:.2}x < 5x"
    );
    // Median over rounds of the paired round-minimum quotient: round
    // minima reject contention spikes (which only ever slow a sample
    // down), adjacent blocks share a clock envelope, and the median
    // rejects rounds contaminated end to end by a neighbor's load.
    let int8_speedup = gemm_pair.ratio_f_over_g;
    eprintln!("derived vgg gemm speedup (f32 / int8): {int8_speedup:.2}x");
    assert!(
        int8_speedup >= 2.0,
        "int8 kernel regressed: f32/int8 GEMM speedup {int8_speedup:.2}x < 2x"
    );

    let machine = Value::object([
        ("arch".to_string(), Value::str(std::env::consts::ARCH)),
        ("os".to_string(), Value::str(std::env::consts::OS)),
        ("family".to_string(), Value::str(std::env::consts::FAMILY)),
        (
            "cpus".to_string(),
            Value::int(
                std::thread::available_parallelism()
                    .map(|n| n.get() as i64)
                    .unwrap_or(1),
            ),
        ),
        (
            "pointer_width_bits".to_string(),
            Value::int(8 * std::mem::size_of::<usize>() as i64),
        ),
    ]);
    let benchmarks = Value::object(rows.iter().map(|(name, ns)| {
        let mut fields = vec![("median_ns".to_string(), Value::int(*ns as i64))];
        if let Some((_, min)) = gemm_mins.iter().find(|(n, _)| n == name) {
            fields.push(("min_ns".to_string(), Value::int(*min as i64)));
        }
        (name.clone(), Value::object(fields))
    }));
    let doc = Value::object([
        ("schema".to_string(), Value::str("condor-bench-kernels/v1")),
        ("machine".to_string(), machine),
        ("benchmarks".to_string(), benchmarks),
        (
            "derived".to_string(),
            Value::object([
                (
                    "vgg_conv_speedup_naive_over_fast".to_string(),
                    Value::float((speedup * 100.0).round() / 100.0),
                ),
                (
                    "vgg_gemm_speedup_f32_over_int8".to_string(),
                    Value::float((int8_speedup * 100.0).round() / 100.0),
                ),
            ]),
        ),
    ]);

    std::fs::write(
        &out_path,
        condor_cjson::write::to_string_pretty(&doc) + "\n",
    )
    .expect("baseline file written");
    eprintln!("wrote {out_path}");
}
