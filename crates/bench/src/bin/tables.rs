//! Regenerates every table and figure of the paper's evaluation and
//! prints them next to the published numbers.
//!
//! ```text
//! cargo run --release -p condor-bench --bin tables [table1|table2|figure5|all]
//! ```

use condor_bench::{figure5, paper_table1, paper_table2, table1, table2, Figure5Series, Table1Row};

fn print_table1() {
    println!("== Table 1: AWS F1 deployment results (paper vs reproduced) ==");
    println!(
        "{:<8} {:>6} | {:>7} {:>7} {:>7} {:>7} {:>8} {:>9}",
        "net", "MHz", "LUT%", "FF%", "DSP%", "BRAM%", "GFLOPS", "GFLOPS/W"
    );
    let measured = table1();
    for (paper, ours) in paper_table1().iter().zip(&measured) {
        print_t1_row("paper", paper);
        print_t1_row("ours", ours);
    }
    println!();
}

fn print_t1_row(tag: &str, r: &Table1Row) {
    println!(
        "{:<8} {:>6.0} | {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>8.2} {:>9.2}   [{tag}]",
        r.name, r.freq_mhz, r.lut_pct, r.ff_pct, r.dsp_pct, r.bram_pct, r.gflops, r.gflops_per_w
    );
}

fn print_table2() {
    println!("== Table 2: improved methodology, features-extraction GFLOPS ==");
    println!(
        "{:<8} {:>14} {:>14}   {:<24}",
        "net", "paper GFLOPS", "ours GFLOPS", "chosen configuration"
    );
    let measured = table2();
    for ((name, paper_gflops), cell) in paper_table2().iter().zip(&measured) {
        println!(
            "{:<8} {:>14.2} {:>14.2}   Pin={} Pout={} @ {:.0} MHz",
            name,
            paper_gflops,
            cell.gflops,
            cell.parallelism.parallel_in,
            cell.parallelism.parallel_out,
            cell.freq_mhz
        );
    }
    println!();
}

fn print_figure5() {
    println!("== Figure 5: mean time to process an image vs batch size ==");
    let series = figure5();
    print!("{:<7}", "batch");
    for s in &series {
        print!(" {:>14}", format!("{} (ms)", s.name));
    }
    println!();
    let batches: Vec<usize> = series[0].points.iter().map(|(b, _)| *b).collect();
    for (i, b) in batches.iter().enumerate() {
        print!("{b:<7}");
        for s in &series {
            print!(" {:>14.4}", s.points[i].1);
        }
        println!();
    }
    for s in &series {
        println!(
            "-- {}: {} compute layers; convergence expected once batch > {}",
            s.name, s.layers, s.layers
        );
        print_profile(s);
    }
    println!();
}

/// A tiny ASCII rendition of one series, normalised to its slowest point.
fn print_profile(s: &Figure5Series) {
    let max = s.points.iter().map(|(_, v)| *v).fold(0.0, f64::max);
    for (b, v) in &s.points {
        let frac = if max > 0.0 { v / max } else { 0.0 };
        let bar = ((frac * 40.0).round() as usize).max(1);
        println!("   batch {b:>3} |{}", "#".repeat(bar));
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "table1" => print_table1(),
        "table2" => print_table2(),
        "figure5" => print_figure5(),
        "all" => {
            print_table1();
            print_table2();
            print_figure5();
        }
        other => {
            eprintln!("unknown experiment '{other}' (use table1|table2|figure5|all)");
            std::process::exit(2);
        }
    }
}
