//! Ablation: non-uniform memory partitioning vs a monolithic line
//! buffer (DESIGN.md §4).
//!
//! The paper adopts Cong et al.'s non-uniform partitioning: `K²` filters
//! chained by FIFOs sized to the access distances, buffering only
//! `(K−1)·W + K` elements with zero port contention. The classical
//! alternative — one on-chip buffer holding the whole input feature map,
//! read K² times per window through at most two BRAM ports — needs both
//! more storage and serialised reads. This bench quantifies the gap
//! with the synthesis model (storage) and a port-contention cycle model
//! (throughput), and times the behavioural filter chain.

use condor_dataflow::FilterChain;
use condor_fpga::Resources;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Storage and per-window read cycles of the two buffering schemes for a
/// K×K window over an H×W map.
fn compare(k: usize, h: usize, w: usize) -> ((u64, u64), (u64, u64)) {
    // Non-uniform partitioning: (K−1)·W+K elements, all taps concurrent.
    let nup_elems = ((k - 1) * w + k) as u64;
    let nup_bram = Resources::bram_tiles_for_bytes(nup_elems * 4).max(1);
    let nup_cycles_per_window = 1u64;
    // Monolithic buffer: H·W elements; dual-port BRAM serves 2 of the
    // K² reads per cycle.
    let mono_elems = (h * w) as u64;
    let mono_bram = Resources::bram_tiles_for_bytes(mono_elems * 4).max(1);
    let mono_cycles_per_window = ((k * k) as u64).div_ceil(2);
    (
        (nup_bram, nup_cycles_per_window),
        (mono_bram, mono_cycles_per_window),
    )
}

fn bench_partitioning(c: &mut Criterion) {
    println!("== ablation: non-uniform partitioning vs monolithic line buffer ==");
    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>12}",
        "layer", "NUP BRAM", "NUP cyc/win", "mono BRAM", "mono cyc/win"
    );
    for (name, k, h, w) in [
        ("LeNet conv1 (5x5@28)", 5, 28, 28),
        ("LeNet conv2 (5x5@12)", 5, 12, 12),
        ("VGG conv1_1 (3x3@224)", 3, 224, 224),
        ("VGG conv5_3 (3x3@14)", 3, 14, 14),
    ] {
        let ((nb, nc), (mb, mc)) = compare(k, h, w);
        println!("{name:<22} {nb:>10} {nc:>12} {mb:>10} {mc:>12}");
    }

    let mut group = c.benchmark_group("ablation_partitioning");
    group.sample_size(20);
    for (k, h, w) in [(5usize, 28usize, 28usize), (3, 64, 64)] {
        let img: Vec<f32> = (0..h * w).map(|v| v as f32).collect();
        group.bench_with_input(
            BenchmarkId::new("filter_chain_stream", format!("{k}x{k}@{w}")),
            &(k, h, w),
            |b, &(k, h, w)| {
                b.iter(|| {
                    let mut chain = FilterChain::new(k, h, w, 1, 0);
                    black_box(chain.run(&img).len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
