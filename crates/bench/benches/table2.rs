//! Table 2 bench: times the automated design-space exploration over the
//! feature-extraction subnetworks and prints the regenerated GFLOPS
//! column.

#![allow(clippy::unwrap_used)] // bench harness: fail loud

use condor_bench::{table2, table2_dse_space};
use condor_nn::zoo;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    for cell in table2() {
        println!(
            "table2/{}: {:.2} GFLOPS (Pin={}, Pout={}, {:.0} MHz)",
            cell.name,
            cell.gflops,
            cell.parallelism.parallel_in,
            cell.parallelism.parallel_out,
            cell.freq_mhz
        );
    }

    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    let board = condor_fpga::board("aws-f1").unwrap();
    for net in [zoo::tc1(), zoo::lenet(), zoo::vgg16()] {
        let fe = net.feature_extraction_prefix().unwrap();
        let name = net.name.replace('-', "_").to_lowercase();
        group.bench_function(format!("dse_{name}_features"), |b| {
            b.iter(|| {
                let outcome = condor::dse::explore(&fe, board, &table2_dse_space()).unwrap();
                black_box(outcome.require_best().unwrap().gflops)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
