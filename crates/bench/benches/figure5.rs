//! Figure 5 bench: times the pipeline batch sweep and prints the
//! regenerated mean-time-per-image series.

use condor_bench::{deploy_table1_network, figure5, figure5_batches};
use condor_nn::zoo;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_figure5(c: &mut Criterion) {
    for series in figure5() {
        let pts: Vec<String> = series
            .points
            .iter()
            .map(|(b, ms)| format!("{b}:{ms:.4}ms"))
            .collect();
        println!(
            "figure5/{} ({} layers): {}",
            series.name,
            series.layers,
            pts.join(" ")
        );
    }

    let mut group = c.benchmark_group("figure5");
    group.sample_size(10);
    let deployed = deploy_table1_network(zoo::lenet_weighted(1), 180.0);
    for batch in figure5_batches() {
        group.bench_with_input(
            BenchmarkId::new("lenet_batch_timing", batch),
            &batch,
            |b, &batch| b.iter(|| black_box(deployed.timing(batch))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_figure5);
criterion_main!(benches);
