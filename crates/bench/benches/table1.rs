//! Table 1 bench: times the full Condor flow (build → cloud deploy →
//! metrics) for the two published design points and prints the
//! regenerated row so `cargo bench` output doubles as the experiment
//! record.

#![allow(clippy::unwrap_used)] // bench harness: fail loud

use condor_bench::{deploy_table1_network, table1};
use condor_nn::zoo;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Print the regenerated table once, alongside the timing run.
    for row in table1() {
        println!(
            "table1/{}: LUT {:.2}% FF {:.2}% DSP {:.2}% BRAM {:.2}% | {:.2} GFLOPS, {:.2} GFLOPS/W",
            row.name,
            row.lut_pct,
            row.ff_pct,
            row.dsp_pct,
            row.bram_pct,
            row.gflops,
            row.gflops_per_w
        );
    }

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("tc1_flow_build_deploy", |b| {
        b.iter(|| {
            let deployed = deploy_table1_network(zoo::tc1_weighted(1), 100.0);
            black_box(deployed.metrics(64).unwrap());
        })
    });
    group.bench_function("lenet_flow_build_deploy", |b| {
        b.iter(|| {
            let deployed = deploy_table1_network(zoo::lenet_weighted(1), 180.0);
            black_box(deployed.metrics(64).unwrap());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
