//! Serving bench: throughput, batch coalescing and latency percentiles
//! of the `condor-serve` dynamic batcher over a 2-slot F1 deployment,
//! printed from the shared metrics snapshot.

use condor_bench::serving_sweep;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_serving(c: &mut Criterion) {
    // Print the experiment record once, alongside the timing run.
    for row in serving_sweep(&[1, 2, 4, 8], 16) {
        println!(
            "serving/{} clients: {:.0} img/s | mean batch {:.2} | p50 {:.0} µs | p99 {:.0} µs",
            row.clients, row.throughput_rps, row.mean_batch, row.p50_us, row.p99_us
        );
    }

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    for clients in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("lenet_f1_4xlarge", clients),
            &clients,
            |b, &clients| b.iter(|| black_box(serving_sweep(&[clients], 8))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
