//! Kernel bench: the im2col + blocked-GEMM compute layer against the
//! golden loop nests, plus whole-network engines and the threaded
//! runtime's frame-chunked batches.
//!
//! Every run first cross-checks the fast paths against the golden oracle
//! (so the timing numbers are known-correct code). With
//! `CONDOR_BENCH_SMOKE=1` the bench stops after that check — CI uses
//! this to catch kernel regressions without paying for the timing loops.
//! `cargo run -p condor-bench --bin kernels_baseline` times the same
//! workloads and records `BENCH_kernels.json`.

#![allow(clippy::unwrap_used)] // bench harness: fail loud

use condor_bench::kernels::{
    assert_kernels_match_golden, conv_fast, conv_int8, conv_naive, lenet_case, quant_vgg_case,
    quantized_lenet_case, runtime_case, vgg_conv_case,
};
use condor_kernels::{QWorkspace, Workspace};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    assert_kernels_match_golden();
    println!("kernels smoke: fast paths match the golden oracle (1e-4)");
    if std::env::var_os("CONDOR_BENCH_SMOKE").is_some() {
        return;
    }

    let case = vgg_conv_case(42);
    let mut group = c.benchmark_group("kernels");
    group.sample_size(5);
    group.bench_function("conv_naive_vgg56", |b| {
        b.iter(|| black_box(conv_naive(&case)))
    });
    let mut out = vec![0.0f32; case.out_shape().len()];
    let mut ws = Workspace::with_capacity(case.geo.lowered_len());
    group.bench_function("conv_im2col_gemm_vgg56", |b| {
        b.iter(|| {
            conv_fast(&case, &mut out, &mut ws);
            black_box(out.last().copied())
        })
    });

    let qcase = quant_vgg_case(&case, &conv_naive(&case));
    let mut qout = vec![0i8; case.out_shape().len()];
    let mut qws = QWorkspace::new();
    group.bench_function("conv_int8_gemm_vgg56", |b| {
        b.iter(|| {
            conv_int8(&qcase, &mut qout, &mut qws);
            black_box(qout.last().copied())
        })
    });

    let mut engines = lenet_case(16);
    group.bench_function("lenet_fast_batch16", |b| {
        b.iter(|| black_box(engines.fast.infer_batch(&engines.images).unwrap()))
    });
    let mut quantized = quantized_lenet_case(16);
    group.bench_function("lenet_quantized_batch16", |b| {
        b.iter(|| {
            for img in &quantized.images {
                black_box(quantized.engine.infer(img).unwrap());
            }
        })
    });
    let golden = condor_nn::GoldenEngine::new(&engines.net).unwrap();
    group.bench_function("lenet_golden_batch16", |b| {
        b.iter(|| black_box(golden.infer_batch(&engines.images).unwrap()))
    });

    let rt = runtime_case(16);
    group.bench_function("lenet_runtime_batch16", |b| {
        b.iter(|| black_box(rt.runtime.run_batch(&rt.images).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
