//! Ablation: FIFO depth sensitivity (DESIGN.md §4).
//!
//! The paper sizes each inter-filter FIFO to "the spatial distance
//! between the two accesses that the filters at each end … represent",
//! and sizes PE-to-PE channels generously. This bench drives the
//! element-level layer simulation with progressively slower downstream
//! consumers and smaller output FIFOs to show where back-pressure starts
//! costing cycles — and that results stay correct regardless.

#![allow(clippy::unwrap_used)] // bench harness: fail loud

use condor_dataflow::layersim::{simulate_conv_layer, LayerSimConfig};
use condor_tensor::{Shape, TensorRng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn run(out_fifo_depth: usize, drain_every: u64) -> (u64, u64) {
    let mut rng = TensorRng::seeded(11);
    let input = rng.uniform(Shape::chw(2, 16, 16), -1.0, 1.0);
    let weights = rng.uniform(Shape::new(8, 2, 3, 3), -0.5, 0.5);
    let report = simulate_conv_layer(
        &input,
        &weights,
        None,
        1,
        0,
        false,
        &LayerSimConfig {
            out_fifo_depth,
            drain_every,
            ..LayerSimConfig::default()
        },
    )
    .unwrap();
    (report.cycles, report.pe_stall_cycles)
}

fn bench_fifo(c: &mut Criterion) {
    println!("== ablation: output FIFO depth vs consumer rate (conv 8x2@16, 3x3) ==");
    println!(
        "{:<12} {:<12} {:>10} {:>12}",
        "fifo depth", "drain every", "cycles", "PE stalls"
    );
    for (depth, drain) in [
        (64, 1),
        (8, 1),
        (1, 1),
        (64, 2),
        (8, 2),
        (1, 2),
        (64, 8),
        (1, 8),
    ] {
        let (cycles, stalls) = run(depth, drain);
        println!("{depth:<12} {drain:<12} {cycles:>10} {stalls:>12}");
    }

    let mut group = c.benchmark_group("ablation_fifo");
    group.sample_size(20);
    for depth in [1usize, 8, 64] {
        group.bench_with_input(
            BenchmarkId::new("conv_layersim", depth),
            &depth,
            |b, &depth| b.iter(|| black_box(run(depth, 1))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fifo);
criterion_main!(benches);
