//! Ablation: inter-layer parallelism sweep (DESIGN.md §4).
//!
//! "We can exploit inter-layer parallelism reading multiple input
//! feature maps concurrently and computing multiple output feature maps
//! in parallel." This sweep shows the DSP-vs-GFLOPS trade on the LeNet
//! feature-extraction stage and where resource growth stops paying.

#![allow(clippy::unwrap_used)] // bench harness: fail loud

use condor_dataflow::{PeParallelism, PipelineModel, PlanBuilder};
use condor_hls::synthesize_plan;
use condor_nn::zoo;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn evaluate(pi: usize, po: usize) -> (f64, u64) {
    let net = zoo::lenet().feature_extraction_prefix().unwrap();
    let plan = PlanBuilder::new(&net)
        .freq_mhz(200.0)
        .parallelism(PeParallelism {
            parallel_in: pi,
            parallel_out: po,
            fc_simd: 1,
        })
        .build()
        .unwrap();
    let device = condor_fpga::device("xcvu9p").unwrap();
    let synth = synthesize_plan(&plan, device);
    let mut timed = plan.clone();
    timed.freq_mhz = synth.achieved_fmax_mhz;
    let gflops = PipelineModel::from_plan(&timed).gflops(net.total_flops().unwrap(), 64);
    (gflops, synth.total.dsp)
}

fn bench_parallelism(c: &mut Criterion) {
    println!("== ablation: inter-layer parallelism on LeNet features (200 MHz) ==");
    println!("{:<12} {:>10} {:>8}", "Pin x Pout", "GFLOPS", "DSP");
    for (pi, po) in [(1, 1), (1, 2), (2, 2), (2, 5), (4, 5), (4, 10), (8, 10)] {
        let (gflops, dsp) = evaluate(pi, po);
        println!("{:<12} {gflops:>10.3} {dsp:>8}", format!("{pi} x {po}"));
    }

    let mut group = c.benchmark_group("ablation_parallelism");
    group.sample_size(20);
    for (pi, po) in [(1usize, 1usize), (2, 2), (4, 5)] {
        group.bench_with_input(
            BenchmarkId::new("lenet_features_eval", format!("{pi}x{po}")),
            &(pi, po),
            |b, &(pi, po)| b.iter(|| black_box(evaluate(pi, po))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallelism);
criterion_main!(benches);
