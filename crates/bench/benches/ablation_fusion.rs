//! Ablation: layer fusion vs full spatial unfold (DESIGN.md §4).
//!
//! Sweeps the number of computational layers fused per PE on LeNet and
//! reports the resources-vs-throughput trade the paper's methodology
//! makes: fusing shrinks the design ("for large CNNs, [1:1 mapping]
//! might not be possible given the available resources") at the cost of
//! serialising the fused layers.

#![allow(clippy::unwrap_used)] // bench harness: fail loud

use condor::Condor;
use condor_dataflow::PipelineModel;
use condor_nn::zoo;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn build(fusion: usize) -> (f64, u64, u64) {
    let built = Condor::from_network(zoo::lenet_weighted(1))
        .board("aws-f1")
        .freq_mhz(180.0)
        .fusion(fusion)
        .build()
        .unwrap();
    let mut plan = built.plan.clone();
    plan.freq_mhz = built.synthesis.achieved_fmax_mhz;
    let gflops = PipelineModel::from_plan(&plan).gflops(built.network.total_flops().unwrap(), 64);
    (
        gflops,
        built.synthesis.total.lut,
        built.synthesis.total.bram_36k,
    )
}

fn bench_fusion(c: &mut Criterion) {
    println!("== ablation: fusion factor on LeNet (aws-f1, 180 MHz) ==");
    println!(
        "{:<8} {:>10} {:>10} {:>10}",
        "fusion", "GFLOPS", "LUT", "BRAM36"
    );
    for fusion in [1, 2, 3, 4, 10] {
        let (gflops, lut, bram) = build(fusion);
        println!("{fusion:<8} {gflops:>10.3} {lut:>10} {bram:>10}");
    }

    let mut group = c.benchmark_group("ablation_fusion");
    group.sample_size(10);
    for fusion in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("lenet_build", fusion), &fusion, |b, &f| {
            b.iter(|| black_box(build(f)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
