//! Ablation: the static DSE pre-filter (condor-check `PlanBounds`).
//!
//! Every DSE point normally costs a plan build, a synthesis pass and a
//! pipeline evaluation. The pre-filter bounds the resources of each
//! candidate parallelism from below with a single shape-inference walk
//! and discards hopeless points without building anything. This bench
//! sweeps the same candidate space with the filter on and off and
//! reports how many points were pruned and the wall-clock ratio —
//! largest for networks where *everything* is pruned (VGG-16's
//! fully-connected layers never fit on chip).

use condor::dse::{explore, DseConfig, DseOutcome};
use condor_fpga::{board, Board};
use condor_nn::{zoo, Network};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn cfg(prefilter: bool) -> DseConfig {
    DseConfig {
        prefilter,
        ..DseConfig::default()
    }
}

fn sweep(net: &Network, fpga: &Board, prefilter: bool) -> DseOutcome {
    explore(net, fpga, &cfg(prefilter)).expect("candidate space is non-empty")
}

fn bench_precheck(c: &mut Criterion) {
    let f1 = board("aws-f1").expect("aws-f1 is in the catalog");
    let nets = [zoo::tc1(), zoo::lenet(), zoo::vgg16()];

    println!("== ablation: static pre-filter vs full DSE sweep (aws-f1) ==");
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>12} {:>9}",
        "network", "points", "pruned", "off (ms)", "on (ms)", "speedup"
    );
    for net in &nets {
        let t0 = Instant::now();
        let off = sweep(net, f1, false);
        let t_off = t0.elapsed();
        let t1 = Instant::now();
        let on = sweep(net, f1, true);
        let t_on = t1.elapsed();
        let pruned = on.points.iter().filter(|p| p.pruned).count();
        // The filter must never change the verdict, only the cost.
        assert_eq!(
            on.points.iter().filter(|p| p.feasible()).count(),
            off.points.iter().filter(|p| p.feasible()).count(),
            "{}: pre-filter changed the feasible set",
            net.name
        );
        println!(
            "{:<10} {:>8} {:>8} {:>12.2} {:>12.2} {:>8.2}x",
            net.name,
            on.points.len(),
            pruned,
            t_off.as_secs_f64() * 1e3,
            t_on.as_secs_f64() * 1e3,
            t_off.as_secs_f64() / t_on.as_secs_f64().max(1e-9)
        );
    }

    let mut group = c.benchmark_group("ablation_precheck");
    group.sample_size(10);
    for net in &nets {
        for prefilter in [false, true] {
            let label = if prefilter { "prefilter" } else { "full" };
            group.bench_with_input(
                BenchmarkId::new(label, &net.name),
                &prefilter,
                |b, &prefilter| b.iter(|| black_box(sweep(net, f1, prefilter))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_precheck);
criterion_main!(benches);
