//! Timing-fault injection in the cycle-level simulators.
//!
//! The contract under test: timing faults stretch the reported clock
//! deterministically per `(seed, plan)` and never touch functional
//! outputs — a perturbed run produces bit-identical tensors and a
//! strictly larger cycle count, and two runs (or N concurrent runs)
//! with the same seed report identical perturbed cycles.
//!
//! Seed window: `CONDOR_TIMING_SEEDS` narrows or widens the sweep the
//! same way `CONDOR_CHAOS_SEEDS` does for the serve chaos suite —
//! either a count (`"64"`) or an inclusive range (`"100-131"`).

#![allow(clippy::unwrap_used)] // test code: unwrap is the assertion

use condor_dataflow::layersim::{simulate_conv_layer, simulate_pool_layer};
use condor_dataflow::{LayerSimConfig, PipelineModel};
use condor_faults::{FaultPlan, FaultRule};
use condor_nn::PoolKind;
use condor_tensor::{AllClose, Shape, TensorRng};

fn seed_window() -> Vec<u64> {
    match std::env::var("CONDOR_TIMING_SEEDS") {
        Ok(spec) => {
            if let Some((lo, hi)) = spec.split_once('-') {
                let lo: u64 = lo.trim().parse().expect("range start");
                let hi: u64 = hi.trim().parse().expect("range end");
                (lo..=hi).collect()
            } else {
                let n: u64 = spec.trim().parse().expect("seed count");
                (0..n).collect()
            }
        }
        Err(_) => (0..8).collect(),
    }
}

fn timing_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .rule(
            FaultRule::at("dataflow.datamover")
                .probability(0.5)
                .jitter_cycles(40),
        )
        .rule(FaultRule::at("dataflow.pe").probability(0.3).slowdown(1.5))
        .rule(FaultRule::at("dataflow.pe").nth_call(7).stall_cycles(120))
}

fn conv_under(cfg: &LayerSimConfig) -> condor_dataflow::LayerSimReport {
    let mut rng = TensorRng::seeded(11);
    let input = rng.uniform(Shape::chw(2, 10, 10), -1.0, 1.0);
    let weights = rng.uniform(Shape::new(3, 2, 3, 3), -0.5, 0.5);
    simulate_conv_layer(&input, &weights, None, 1, 0, true, cfg).unwrap()
}

#[test]
fn conv_outputs_survive_timing_faults_and_cycles_grow() {
    let clean = conv_under(&LayerSimConfig::default());
    for seed in seed_window() {
        let cfg = LayerSimConfig {
            faults: timing_plan(seed).install(),
            pe_site: "dataflow.pe0".to_string(),
            ..LayerSimConfig::default()
        };
        let perturbed = conv_under(&cfg);
        // Functional outputs are untouched — same tensor, within the
        // golden tolerance (they are in fact bit-identical).
        assert!(perturbed.output.all_close(&clean.output), "seed {seed}");
        if perturbed.timing.is_clean() {
            assert_eq!(perturbed.cycles, clean.cycles, "seed {seed}");
        } else {
            assert!(perturbed.cycles > clean.cycles, "seed {seed}");
            assert_eq!(
                perturbed.cycles - clean.cycles,
                perturbed.timing.extra_cycles,
                "seed {seed}: every injected cycle must show up in the clock"
            );
        }
    }
}

#[test]
fn identical_seed_and_plan_reports_identical_perturbed_cycles() {
    for seed in seed_window() {
        let run = |_: usize| {
            let cfg = LayerSimConfig {
                faults: timing_plan(seed).install(),
                pe_site: "dataflow.pe0".to_string(),
                ..LayerSimConfig::default()
            };
            conv_under(&cfg)
        };
        let a = run(0);
        let b = run(1);
        assert_eq!(a.cycles, b.cycles, "seed {seed}");
        assert_eq!(a.timing, b.timing, "seed {seed}");
        assert_eq!(a.output, b.output, "seed {seed}");
    }
}

#[test]
fn determinism_holds_across_thread_counts() {
    // N concurrent simulations, each with its own injector installed
    // from the same plan, must agree with a serial reference run: the
    // DES advances single-threaded per run, so OS scheduling cannot
    // leak into the perturbed clock.
    let seed = 0xDE5;
    let reference = {
        let cfg = LayerSimConfig {
            faults: timing_plan(seed).install(),
            pe_site: "dataflow.pe0".to_string(),
            ..LayerSimConfig::default()
        };
        conv_under(&cfg)
    };
    for threads in [2usize, 4, 8] {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                std::thread::spawn(move || {
                    let cfg = LayerSimConfig {
                        faults: timing_plan(seed).install(),
                        pe_site: "dataflow.pe0".to_string(),
                        ..LayerSimConfig::default()
                    };
                    conv_under(&cfg)
                })
            })
            .collect();
        for h in handles {
            let r = h.join().unwrap();
            assert_eq!(r.cycles, reference.cycles, "{threads} threads");
            assert_eq!(r.timing, reference.timing, "{threads} threads");
        }
    }
}

#[test]
fn pool_sim_is_perturbed_but_functionally_exact() {
    let mut rng = TensorRng::seeded(21);
    let input = rng.uniform(Shape::chw(3, 8, 8), -1.0, 1.0);
    let clean =
        simulate_pool_layer(&input, PoolKind::Max, 2, 2, 0, &LayerSimConfig::default()).unwrap();
    let cfg = LayerSimConfig {
        faults: FaultPlan::new(5)
            .rule(
                FaultRule::at("dataflow.datamover")
                    .always()
                    .stall_cycles(25),
            )
            .install(),
        ..LayerSimConfig::default()
    };
    let perturbed = simulate_pool_layer(&input, PoolKind::Max, 2, 2, 0, &cfg).unwrap();
    assert_eq!(perturbed.output, clean.output);
    assert!(perturbed.cycles > clean.cycles);
    assert_eq!(perturbed.timing.events, 3); // one per input map
    assert_eq!(perturbed.timing.extra_cycles, 75);
}

#[test]
fn stalled_fifo_never_deadlocks_a_checked_plan() {
    // The worst case for the old drain loop: an undersized output FIFO
    // (depth 1, slow consumer) plus a large injected stall window. The
    // stall budget burns while the drain keeps running, so the run
    // completes — delayed, never wedged.
    let cfg = LayerSimConfig {
        out_fifo_depth: 1,
        drain_every: 4,
        faults: FaultPlan::new(9)
            .rule(
                FaultRule::at("dataflow.pe0")
                    .probability(0.8)
                    .stall_cycles(500),
            )
            .rule(
                FaultRule::at("dataflow.datamover")
                    .always()
                    .jitter_cycles(200),
            )
            .install(),
        pe_site: "dataflow.pe0".to_string(),
        ..LayerSimConfig::default()
    };
    let report = conv_under(&cfg);
    let clean = conv_under(&LayerSimConfig {
        out_fifo_depth: 1,
        drain_every: 4,
        ..LayerSimConfig::default()
    });
    assert!(report.output.all_close(&clean.output));
    assert!(!report.timing.is_clean());
}

#[test]
fn pipeline_model_perturbation_is_deterministic_and_localised() {
    let m = PipelineModel::from_stage_cycles(vec![50, 120, 80], 100.0);
    let clean = m.batch(16);
    for seed in seed_window() {
        let (a, ra) = m.batch_with_faults(16, &timing_plan(seed).install());
        let (b, rb) = m.batch_with_faults(16, &timing_plan(seed).install());
        assert_eq!(a.total_cycles, b.total_cycles, "seed {seed}");
        assert_eq!(ra, rb, "seed {seed}");
        assert!(a.total_cycles >= clean.total_cycles, "seed {seed}");
        // Stage attribution covers every injected cycle.
        assert_eq!(
            ra.per_stage_extra.iter().sum::<u64>(),
            ra.extra_cycles,
            "seed {seed}"
        );
    }
}
