//! Property tests over the dataflow substrate: window streaming, plan
//! invariants, pipeline timing and runtime/golden equivalence.

#![allow(clippy::unwrap_used)] // test code: unwrap is the assertion

use condor_dataflow::layersim::{simulate_conv_layer, LayerSimConfig};
use condor_dataflow::runtime::ThreadedRuntime;
use condor_dataflow::{FilterChain, PipelineModel, PlanBuilder};
use condor_nn::arbitrary::{random_chain, random_weighted_chain};
use condor_nn::{golden, GoldenEngine};
use condor_tensor::{AllClose, Shape, TensorRng};
use proptest::prelude::*;

proptest! {
    /// The filter chain emits exactly the sliding windows, in output
    /// row-major order, for arbitrary geometries.
    #[test]
    fn filter_chain_equals_window_enumeration(
        h in 2usize..14,
        w in 2usize..14,
        k in 1usize..5,
        stride in 1usize..3,
    ) {
        prop_assume!(k <= h && k <= w);
        let img: Vec<f32> = (0..h * w).map(|v| v as f32 * 0.5 - 3.0).collect();
        let mut chain = FilterChain::new(k, h, w, stride, 0);
        let got = chain.run(&img);
        let (oh, ow) = chain.out_dims();
        prop_assert_eq!(got.len(), oh * ow);
        for (idx, win) in got.iter().enumerate() {
            prop_assert_eq!(win.out_row, idx / ow);
            prop_assert_eq!(win.out_col, idx % ow);
            for r in 0..k {
                for c in 0..k {
                    let expect = img[(win.out_row * stride + r) * w + win.out_col * stride + c];
                    prop_assert_eq!(win.elems[r * k + c], expect);
                }
            }
        }
        // The buffer never exceeds the paper's bound.
        prop_assert!(chain.high_water() <= chain.buffer_bound());
    }

    /// FIFO depths always follow the spatial-distance rule and sum to
    /// the span between first and last access, for any plan.
    #[test]
    fn plan_fifo_rule_holds_for_random_networks(seed in any::<u64>()) {
        let net = random_chain(seed);
        let plan = PlanBuilder::new(&net).build().unwrap();
        for pe in &plan.pes {
            let k = pe.max_window();
            let depths = pe.fifo_depths();
            prop_assert_eq!(depths.len(), k * k - 1);
            if k > 1 {
                let w = pe.max_input_width();
                // When w == k the row-crossing distance degenerates to 1
                // and is indistinguishable from in-row FIFOs.
                if w > k {
                    prop_assert_eq!(
                        depths.iter().filter(|&&d| d == w - k + 1).count(),
                        k - 1
                    );
                }
                prop_assert_eq!(depths.iter().sum::<usize>(), (k - 1) * w + k - 1);
            }
        }
    }

    /// Fusion preserves total PE cycles: a fused PE costs the sum of its
    /// members, so the pipeline's *work* is invariant (only its balance
    /// changes).
    #[test]
    fn fusion_preserves_total_cycles(seed in any::<u64>(), fusion in 2usize..5) {
        let net = random_chain(seed);
        let unfused = PlanBuilder::new(&net).build().unwrap();
        let fused = PlanBuilder::new(&net).fusion(fusion).build().unwrap();
        let total_a: u64 = unfused.pes.iter().map(|p| p.cycles_per_image()).sum();
        let total_b: u64 = fused.pes.iter().map(|p| p.cycles_per_image()).sum();
        prop_assert_eq!(total_a, total_b);
        // And fusing never increases the stage count.
        prop_assert!(fused.pes.len() <= unfused.pes.len());
        // The initiation interval can only get worse (slowest stage grows).
        prop_assert!(fused.initiation_interval() >= unfused.initiation_interval());
    }

    /// Pipeline timing identities: total(B) = latency + (B−1)·II for a
    /// linear pipeline; the mean is monotonically decreasing.
    #[test]
    fn pipeline_timing_identities(
        stages in prop::collection::vec(1u64..10_000, 1..12),
        batch in 1usize..64,
    ) {
        let m = PipelineModel::from_stage_cycles(stages.clone(), 100.0);
        let t = m.batch(batch);
        let latency: u64 = stages.iter().sum();
        let ii = *stages.iter().max().unwrap();
        prop_assert_eq!(t.total_cycles, latency + (batch as u64 - 1) * ii);
        if batch > 1 {
            prop_assert!(
                m.batch(batch).mean_cycles_per_image
                    <= m.batch(batch - 1).mean_cycles_per_image
            );
        }
    }

    /// The threaded hardware runtime equals the golden engine on random
    /// weighted networks (the central functional-correctness property).
    #[test]
    fn runtime_matches_golden_on_random_networks(seed in 0u64..64) {
        let net = random_weighted_chain(seed);
        let plan = PlanBuilder::new(&net).build().unwrap();
        let rt = ThreadedRuntime::new(&net, &plan).unwrap();
        let mut rng = TensorRng::seeded(seed ^ 0xabcd);
        let images: Vec<_> = (0..2)
            .map(|_| rng.uniform(net.input_shape, -1.0, 1.0))
            .collect();
        let hw = rt.run_batch(&images).unwrap();
        let golden = GoldenEngine::new(&net).unwrap().infer_batch(&images).unwrap();
        for (h, g) in hw.iter().zip(&golden) {
            prop_assert!(h.all_close(g));
        }
    }

    /// Fused and unfused plans compute identical results.
    #[test]
    fn fusion_is_functionally_invisible(seed in 0u64..32, fusion in 2usize..4) {
        let net = random_weighted_chain(seed);
        let mut rng = TensorRng::seeded(seed ^ 0x77);
        let img = rng.uniform(net.input_shape, -1.0, 1.0);
        let a = ThreadedRuntime::new(&net, &PlanBuilder::new(&net).build().unwrap())
            .unwrap()
            .run_batch(std::slice::from_ref(&img))
            .unwrap();
        let b = ThreadedRuntime::new(
            &net,
            &PlanBuilder::new(&net).fusion(fusion).build().unwrap(),
        )
        .unwrap()
        .run_batch(std::slice::from_ref(&img))
        .unwrap();
        prop_assert!(a[0].all_close(&b[0]));
    }

    /// The element-level conv simulation equals the golden convolution
    /// for arbitrary small geometries, with and without back-pressure.
    #[test]
    fn layersim_matches_golden_under_backpressure(
        seed in any::<u64>(),
        c in 1usize..3,
        f in 1usize..4,
        k in 1usize..4,
        drain in 1u64..4,
    ) {
        let (h, w) = (6usize, 7usize);
        prop_assume!(k <= h && k <= w);
        let mut rng = TensorRng::seeded(seed);
        let input = rng.uniform(Shape::chw(c, h, w), -1.0, 1.0);
        let weights = rng.uniform(Shape::new(f, c, k, k), -0.5, 0.5);
        let report = simulate_conv_layer(
            &input,
            &weights,
            None,
            1,
            0,
            false,
            &LayerSimConfig {
                out_fifo_depth: 2,
                drain_every: drain,
                ..LayerSimConfig::default()
            },
        ).unwrap();
        let out_shape = Shape::new(1, f, h - k + 1, w - k + 1);
        let expect = golden::convolve(&input, &weights, None, out_shape, f, k, 1, 0, false);
        prop_assert!(report.output.all_close(&expect));
        // Cycle count is bounded below by both compute and stream work.
        let compute = (c * f * (h - k + 1) * (w - k + 1)) as u64;
        let stream = (c * h * w) as u64;
        prop_assert!(report.cycles >= compute.max(stream));
    }
}
