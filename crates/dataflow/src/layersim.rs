//! Element-granularity, cycle-level simulation of one feature-extraction
//! layer: datamover stream → filter chain → PE → output FIFO.
//!
//! This is the fine-grained model that grounds the closed-form cycle
//! formulas in [`crate::plan`]: it advances cycle by cycle, moving one
//! stream element per cycle into the filter chain, spending one PE cycle
//! per output-map group per completed window, honouring output FIFO
//! back-pressure and optional input-side stalls (a bandwidth-starved
//! datamover). Its outputs are cross-checked against the golden engine
//! and its cycle count against `PePlan::cycles_per_image`.

use crate::fifo::Fifo;
use crate::pipeline::TimingFaultReport;
use crate::plan::{DataflowError, DataflowErrorKind};
use crate::window::FilterChain;
use condor_faults::FaultHandle;
use condor_nn::PoolKind;
use condor_tensor::{Shape, Tensor};

fn sim_error(message: impl Into<String>) -> DataflowError {
    DataflowError::kinded(DataflowErrorKind::Simulation, message)
}

/// Knobs for the layer simulation.
#[derive(Clone, Debug)]
pub struct LayerSimConfig {
    /// Depth of the PE→downstream output FIFO.
    pub out_fifo_depth: usize,
    /// Output drain rate: the consumer pops one element every
    /// `drain_every` cycles (1 = full rate).
    pub drain_every: u64,
    /// The datamover delivers an input element only on cycles where
    /// `cycle % stall_period != stall_period - 1` when `Some(period)` —
    /// a crude bandwidth throttle.
    pub input_stall_period: Option<u64>,
    /// Timing-fault injection over the simulated cycle loop: the handle
    /// is consulted at [`LayerSimConfig::pe_site`] once per completed
    /// window (PE slowdown / FIFO-stall windows) and at
    /// `dataflow.datamover` once per input-map stream (jitter). Fired
    /// perturbations stall the PE for extra cycles — the downstream
    /// drain keeps running, so a stall can never deadlock the sim —
    /// and never touch functional outputs. Disabled by default.
    pub faults: FaultHandle,
    /// Site name for PE-side timing consults.
    pub pe_site: String,
}

impl Default for LayerSimConfig {
    fn default() -> Self {
        LayerSimConfig {
            out_fifo_depth: 64,
            drain_every: 1,
            input_stall_period: None,
            faults: FaultHandle::disabled(),
            pe_site: "dataflow.pe0".to_string(),
        }
    }
}

/// Site of the datamover-jitter timing consults.
const DATAMOVER_SITE: &str = "dataflow.datamover";

/// Result of a layer simulation.
#[derive(Clone, Debug)]
pub struct LayerSimReport {
    /// Total cycles from first input element to last output element.
    pub cycles: u64,
    /// Cycles the PE spent waiting (no window available or output full).
    pub pe_stall_cycles: u64,
    /// Cycles input delivery was throttled or back-pressured.
    pub input_stall_cycles: u64,
    /// The layer output (`1×F×H_out×W_out`).
    pub output: Tensor,
    /// Peak occupancy of the filter-chain buffer.
    pub chain_high_water: usize,
    /// Peak occupancy of the output FIFO.
    pub out_fifo_high_water: usize,
    /// Timing faults that fired during the run (stage 0 = datamover,
    /// stage 1 = the PE).
    pub timing: TimingFaultReport,
}

/// Pads one feature map into a row-major stream with a zero halo.
fn padded_stream(input: &Tensor, c: usize, pad: usize) -> Vec<f32> {
    let s = input.shape();
    let (hp, wp) = (s.h + 2 * pad, s.w + 2 * pad);
    let mut out = Vec::with_capacity(hp * wp);
    for i in 0..hp {
        for j in 0..wp {
            out.push(input.at_padded(0, c, i as isize, j as isize, pad));
        }
    }
    out
}

/// Simulates a convolutional layer on a single-input/single-output PE
/// with the interleaved-output-map strategy: the input is streamed once
/// per input map; for every completed window the PE spends one cycle per
/// output map accumulating `w·window` into the partial-result buffer.
///
/// Shape mismatches between the input and the weights produce a typed
/// [`DataflowError`] rather than a panic.
#[allow(clippy::too_many_arguments)]
pub fn simulate_conv_layer(
    input: &Tensor,
    weights: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    relu: bool,
    cfg: &LayerSimConfig,
) -> Result<LayerSimReport, DataflowError> {
    let in_shape = input.shape();
    let w_shape = weights.shape();
    if in_shape.n != 1 {
        return Err(sim_error(format!(
            "layer sim takes a single image, got batch {}",
            in_shape.n
        )));
    }
    if w_shape.c != in_shape.c {
        return Err(sim_error(format!(
            "weight fan-in mismatch: weights expect {} input maps, input has {}",
            w_shape.c, in_shape.c
        )));
    }
    if cfg.out_fifo_depth == 0 || cfg.drain_every == 0 {
        return Err(sim_error("out_fifo_depth and drain_every must be positive"));
    }
    let kernel = w_shape.h;
    if kernel == 0 || kernel > in_shape.h + 2 * pad || kernel > in_shape.w + 2 * pad {
        return Err(sim_error(format!(
            "kernel {kernel} does not fit padded input {}x{}",
            in_shape.h + 2 * pad,
            in_shape.w + 2 * pad
        )));
    }
    let num_output = w_shape.n;
    let out_h = Shape::conv_out_dim(in_shape.h, kernel, stride, pad);
    let out_w = Shape::conv_out_dim(in_shape.w, kernel, stride, pad);
    let out_shape = Shape::new(1, num_output, out_h, out_w);

    let mut partial = Tensor::zeros(out_shape);
    let mut out_fifo = Fifo::new("pe-out", cfg.out_fifo_depth);
    // Elements leave the PE in (window, φ) order, not NCHW; the FIFO is
    // mirrored by a coordinate queue so the collector can scatter them.
    let mut out_coords: std::collections::VecDeque<(usize, usize, usize)> =
        std::collections::VecDeque::new();
    let mut output = Tensor::zeros(out_shape);
    let mut emitted = 0usize;
    let mut drained = 0usize;

    let mut cycle: u64 = 0;
    let mut pe_stalls: u64 = 0;
    let mut input_stalls: u64 = 0;
    let mut chain_high_water = 0usize;
    let mut timing = TimingFaultReport {
        events: 0,
        extra_cycles: 0,
        per_stage_extra: vec![0; 2],
    };
    // Outstanding injected stall cycles; consumed one per cycle while
    // the PE holds (the drain keeps running, so this cannot deadlock).
    let mut timing_stall: u64 = 0;
    let faults_active = cfg.faults.is_active();

    // PE state: windows pending output-map iteration.
    let mut pending_window: Option<Vec<f32>> = None;
    let mut pending_pos = (0usize, 0usize);
    let mut pending_phi = 0usize;

    let total_out = out_shape.len();
    for c in 0..in_shape.c {
        let last_input_map = c == in_shape.c - 1;
        let stream = padded_stream(input, c, pad);
        // Datamover jitter: one timing consult per input-map stream;
        // the perturbation's cost base is the stream length.
        if faults_active {
            if let Some(p) = cfg.faults.timing(DATAMOVER_SITE) {
                let extra = p.extra_cycles(stream.len() as u64);
                timing_stall += extra;
                timing.events += 1;
                timing.extra_cycles += extra;
                timing.per_stage_extra[0] += extra;
            }
        }
        let mut chain = FilterChain::new(kernel, in_shape.h, in_shape.w, stride, pad);
        let mut next_elem = 0usize;

        while next_elem < stream.len() || pending_window.is_some() {
            cycle += 1;
            // Drain the output FIFO at the configured rate.
            if cycle.is_multiple_of(cfg.drain_every) {
                if let Some(v) = out_fifo.try_pop() {
                    let (oc, oh, ow) = out_coords.pop_front().expect("coord queue in sync");
                    *output.at_mut(0, oc, oh, ow) = v;
                    drained += 1;
                }
            }
            // Injected timing stall: the PE holds this cycle.
            if timing_stall > 0 {
                timing_stall -= 1;
                pe_stalls += 1;
                continue;
            }

            if let Some(window) = &pending_window {
                // PE busy: one output map per cycle on the current window.
                let phi = pending_phi;
                let (oi, oj) = pending_pos;
                let mut acc = 0.0f32;
                for (t, &x) in window.iter().enumerate() {
                    acc += weights.at(phi, c, t / kernel, t % kernel) * x;
                }
                if last_input_map {
                    // Final accumulation: bias + activation, then emit.
                    // The partial buffer is only read here, never
                    // written, so a back-pressure retry recomputes `acc`
                    // without double-counting.
                    let mut v = partial.at(0, phi, oi, oj) + acc;
                    if let Some(b) = bias {
                        v += b.at(0, phi, 0, 0);
                    }
                    if relu {
                        v = v.max(0.0);
                    }
                    if !out_fifo.try_push(v) {
                        // Output back-pressure: retry this φ next cycle.
                        pe_stalls += 1;
                        continue;
                    }
                    out_coords.push_back((phi, oi, oj));
                    emitted += 1;
                } else {
                    *partial.at_mut(0, phi, oi, oj) += acc;
                }
                pending_phi += 1;
                if pending_phi == num_output {
                    pending_window = None;
                    pending_phi = 0;
                }
                continue;
            }

            // PE idle: accept the next stream element (unless throttled).
            if next_elem < stream.len() {
                if let Some(period) = cfg.input_stall_period {
                    if cycle % period == period - 1 {
                        input_stalls += 1;
                        continue;
                    }
                }
                if let Some(win) = chain.push(stream[next_elem]) {
                    pending_window = Some(win.elems);
                    pending_pos = (win.out_row, win.out_col);
                    pending_phi = 0;
                    // PE timing faults: one consult per completed
                    // window; the cost base is the φ sweep this window
                    // is about to pay.
                    if faults_active {
                        if let Some(p) = cfg.faults.timing(&cfg.pe_site) {
                            let extra = p.extra_cycles(num_output as u64);
                            timing_stall += extra;
                            timing.events += 1;
                            timing.extra_cycles += extra;
                            timing.per_stage_extra[1] += extra;
                        }
                    }
                }
                next_elem += 1;
            } else {
                pe_stalls += 1;
            }
        }
        chain_high_water = chain_high_water.max(chain.high_water());
    }

    // Epilogue: drain remaining outputs and burn any residual injected
    // stall so the reported cycle count reflects the full perturbation.
    while drained < total_out || timing_stall > 0 {
        cycle += 1;
        if timing_stall > 0 {
            timing_stall -= 1;
            pe_stalls += 1;
        }
        if cycle.is_multiple_of(cfg.drain_every) {
            if let Some(v) = out_fifo.try_pop() {
                let (oc, oh, ow) = out_coords.pop_front().expect("coord queue in sync");
                *output.at_mut(0, oc, oh, ow) = v;
                drained += 1;
            }
        }
    }
    if emitted != total_out {
        return Err(sim_error("simulation lost output elements"));
    }

    Ok(LayerSimReport {
        cycles: cycle,
        pe_stall_cycles: pe_stalls,
        input_stall_cycles: input_stalls,
        output,
        chain_high_water,
        out_fifo_high_water: out_fifo.high_water(),
        timing,
    })
}

/// Simulates a pooling layer: stream-bound, one window comparison per
/// completed window. Inconsistent inputs produce a typed
/// [`DataflowError`] rather than a panic.
pub fn simulate_pool_layer(
    input: &Tensor,
    method: PoolKind,
    kernel: usize,
    stride: usize,
    pad: usize,
    cfg: &LayerSimConfig,
) -> Result<LayerSimReport, DataflowError> {
    let in_shape = input.shape();
    if in_shape.n != 1 {
        return Err(sim_error(format!(
            "layer sim takes a single image, got batch {}",
            in_shape.n
        )));
    }
    if cfg.out_fifo_depth == 0 || cfg.drain_every == 0 {
        return Err(sim_error("out_fifo_depth and drain_every must be positive"));
    }
    if kernel == 0 || kernel > in_shape.h + 2 * pad || kernel > in_shape.w + 2 * pad {
        return Err(sim_error(format!(
            "pool window {kernel} does not fit padded input {}x{}",
            in_shape.h + 2 * pad,
            in_shape.w + 2 * pad
        )));
    }
    let out_h = Shape::pool_out_dim(in_shape.h, kernel, stride, pad);
    let out_w = Shape::pool_out_dim(in_shape.w, kernel, stride, pad);
    let out_shape = Shape::new(1, in_shape.c, out_h, out_w);

    let mut out_fifo = Fifo::new("pool-out", cfg.out_fifo_depth);
    let mut out_coords: std::collections::VecDeque<(usize, usize, usize)> =
        std::collections::VecDeque::new();
    let mut output = Tensor::zeros(out_shape);
    let mut drained = 0usize;
    let mut emitted = 0usize;
    let mut cycle: u64 = 0;
    let mut pe_stalls: u64 = 0;
    let mut input_stalls: u64 = 0;
    let mut chain_high_water = 0usize;
    let mut timing = TimingFaultReport {
        events: 0,
        extra_cycles: 0,
        per_stage_extra: vec![0; 2],
    };
    let mut timing_stall: u64 = 0;
    let faults_active = cfg.faults.is_active();
    let total_out = out_shape.len();

    for c in 0..in_shape.c {
        let stream = padded_stream(input, c, pad);
        if faults_active {
            if let Some(p) = cfg.faults.timing(DATAMOVER_SITE) {
                let extra = p.extra_cycles(stream.len() as u64);
                timing_stall += extra;
                timing.events += 1;
                timing.extra_cycles += extra;
                timing.per_stage_extra[0] += extra;
            }
        }
        let mut chain = FilterChain::new(kernel, in_shape.h, in_shape.w, stride, pad);
        let (chain_oh, chain_ow) = chain.out_dims();
        let mut next_elem = 0usize;
        let mut retry: Option<(usize, usize, f32)> = None;

        while next_elem < stream.len() || retry.is_some() {
            cycle += 1;
            if cycle.is_multiple_of(cfg.drain_every) {
                if let Some(v) = out_fifo.try_pop() {
                    let (oc, oh, ow) = out_coords.pop_front().expect("coord queue in sync");
                    *output.at_mut(0, oc, oh, ow) = v;
                    drained += 1;
                }
            }
            // Injected timing stall: the pool PE holds this cycle.
            if timing_stall > 0 {
                timing_stall -= 1;
                pe_stalls += 1;
                continue;
            }
            if let Some((oi, oj, v)) = retry {
                if out_fifo.try_push(v) {
                    // Caffe-style ceil pooling can produce an output grid
                    // larger than the chain's floor grid; those edge
                    // windows are completed by the epilogue below, so the
                    // in-stream grid must stay within bounds here.
                    debug_assert!(oi < chain_oh && oj < chain_ow);
                    out_coords.push_back((c, oi, oj));
                    emitted += 1;
                    retry = None;
                } else {
                    pe_stalls += 1;
                }
                continue;
            }
            if next_elem < stream.len() {
                if let Some(period) = cfg.input_stall_period {
                    if cycle % period == period - 1 {
                        input_stalls += 1;
                        continue;
                    }
                }
                if let Some(win) = chain.push(stream[next_elem]) {
                    let v = match method {
                        PoolKind::Max => {
                            win.elems.iter().copied().fold(f32::NEG_INFINITY, f32::max)
                        }
                        PoolKind::Average => win.elems.iter().sum::<f32>() / win.elems.len() as f32,
                    };
                    // PE timing faults: one consult per completed window.
                    if faults_active {
                        if let Some(p) = cfg.faults.timing(&cfg.pe_site) {
                            let extra = p.extra_cycles(1);
                            timing_stall += extra;
                            timing.events += 1;
                            timing.extra_cycles += extra;
                            timing.per_stage_extra[1] += extra;
                        }
                    }
                    if out_fifo.try_push(v) {
                        out_coords.push_back((c, win.out_row, win.out_col));
                        emitted += 1;
                    } else {
                        retry = Some((win.out_row, win.out_col, v));
                        pe_stalls += 1;
                    }
                }
                next_elem += 1;
            } else {
                pe_stalls += 1;
            }
        }
        chain_high_water = chain_high_water.max(chain.high_water());

        // Ceil-mode epilogue: windows that Caffe's ceil division adds at
        // the right/bottom edge operate on partial data and are computed
        // directly (the hardware filters handle them with boundary
        // conditions).
        for oi in 0..out_h {
            for oj in 0..out_w {
                if oi < chain_oh && oj < chain_ow {
                    continue;
                }
                cycle += 1;
                let mut max = f32::NEG_INFINITY;
                let mut sum = 0.0;
                let mut count = 0;
                for m in 0..kernel {
                    for n in 0..kernel {
                        let hh = (oi * stride + m) as isize - pad as isize;
                        let ww = (oj * stride + n) as isize - pad as isize;
                        if hh < 0
                            || ww < 0
                            || hh >= in_shape.h as isize
                            || ww >= in_shape.w as isize
                        {
                            continue;
                        }
                        let v = input.at(0, c, hh as usize, ww as usize);
                        max = max.max(v);
                        sum += v;
                        count += 1;
                    }
                }
                let v = match method {
                    PoolKind::Max => max,
                    PoolKind::Average => sum / count.max(1) as f32,
                };
                *output.at_mut(0, c, oi, oj) = v;
                emitted += 1;
                drained += 1;
            }
        }
    }

    while drained < total_out || timing_stall > 0 {
        cycle += 1;
        // Residual injected stall burns here; the drain below keeps
        // running, so a stalled FIFO can delay but never deadlock.
        if timing_stall > 0 {
            timing_stall -= 1;
            pe_stalls += 1;
        }
        if cycle.is_multiple_of(cfg.drain_every) {
            if let Some(v) = out_fifo.try_pop() {
                let (oc, oh, ow) = out_coords.pop_front().expect("coord queue in sync");
                *output.at_mut(0, oc, oh, ow) = v;
                drained += 1;
            }
        }
    }
    if emitted != total_out {
        return Err(sim_error("simulation lost output elements"));
    }

    Ok(LayerSimReport {
        cycles: cycle,
        pe_stall_cycles: pe_stalls,
        input_stall_cycles: input_stalls,
        output,
        chain_high_water,
        out_fifo_high_water: out_fifo.high_water(),
        timing,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_nn::{GoldenEngine, Layer, LayerKind, Network};
    use condor_tensor::{linspace, AllClose, TensorRng};

    fn golden_conv(
        input: &Tensor,
        weights: &Tensor,
        bias: &Tensor,
        stride: usize,
        pad: usize,
        relu: bool,
    ) -> Tensor {
        let mut layers = vec![Layer::new(
            "conv",
            LayerKind::Convolution {
                num_output: weights.shape().n,
                kernel: weights.shape().h,
                stride,
                pad,
                bias: true,
            },
        )];
        if relu {
            layers.push(Layer::new(
                "relu",
                LayerKind::ReLU {
                    negative_slope: 0.0,
                },
            ));
        }
        let mut net = Network::new("g", input.shape(), layers).unwrap();
        net.set_weights("conv", weights.clone(), Some(bias.clone()))
            .unwrap();
        GoldenEngine::new(&net).unwrap().infer(input).unwrap()
    }

    #[test]
    fn conv_sim_matches_golden_engine() {
        let mut rng = TensorRng::seeded(3);
        let input = rng.uniform(Shape::chw(3, 8, 8), -1.0, 1.0);
        let weights = rng.uniform(Shape::new(4, 3, 3, 3), -0.5, 0.5);
        let bias = rng.uniform(Shape::vector(4), -0.1, 0.1);
        let report = simulate_conv_layer(
            &input,
            &weights,
            Some(&bias),
            1,
            0,
            false,
            &LayerSimConfig::default(),
        )
        .unwrap();
        let golden = golden_conv(&input, &weights, &bias, 1, 0, false);
        assert!(report.output.all_close(&golden));
    }

    #[test]
    fn conv_sim_with_padding_stride_and_relu() {
        let mut rng = TensorRng::seeded(9);
        let input = rng.uniform(Shape::chw(2, 7, 7), -1.0, 1.0);
        let weights = rng.uniform(Shape::new(3, 2, 3, 3), -0.5, 0.5);
        let bias = rng.uniform(Shape::vector(3), -0.3, 0.3);
        let report = simulate_conv_layer(
            &input,
            &weights,
            Some(&bias),
            2,
            1,
            true,
            &LayerSimConfig::default(),
        )
        .unwrap();
        let golden = golden_conv(&input, &weights, &bias, 2, 1, true);
        assert!(report.output.all_close(&golden));
        assert!(report.output.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn conv_cycle_count_matches_analytic_model() {
        // F=4, C=2, 6x6 input, 3x3 kernel → analytic: per input map,
        // compute = F·H_out·W_out = 4·16 = 64; stream = 36. Compute-bound.
        let mut rng = TensorRng::seeded(5);
        let input = rng.uniform(Shape::chw(2, 6, 6), -1.0, 1.0);
        let weights = rng.uniform(Shape::new(4, 2, 3, 3), -0.5, 0.5);
        let report = simulate_conv_layer(
            &input,
            &weights,
            None,
            1,
            0,
            false,
            &LayerSimConfig::default(),
        )
        .unwrap();
        let analytic = 2 * 4 * 16; // C · F · H_out · W_out
                                   // The simulated count adds stream/fill slack but must stay within
                                   // the fill overhead of the analytic bound.
        assert!(report.cycles as i64 >= analytic as i64);
        let fill = (2 * 6 + 3) * 2; // per-map chain fill, twice
        let slack = report.cycles as i64 - analytic as i64;
        assert!(
            slack <= fill as i64 + 64,
            "cycles {} vs analytic {analytic}",
            report.cycles
        );
    }

    #[test]
    fn stream_bound_conv_is_stream_limited() {
        // F=1: one output map — the stream, not compute, dominates.
        let mut rng = TensorRng::seeded(6);
        let input = rng.uniform(Shape::chw(1, 10, 10), -1.0, 1.0);
        let weights = rng.uniform(Shape::new(1, 1, 3, 3), -0.5, 0.5);
        let report = simulate_conv_layer(
            &input,
            &weights,
            None,
            1,
            0,
            false,
            &LayerSimConfig::default(),
        )
        .unwrap();
        // Stream bound = 100 elements; compute = 64.
        assert!(report.cycles >= 100);
        assert!(report.cycles <= 100 + 64 + 33);
    }

    #[test]
    fn undersized_output_fifo_causes_stalls() {
        let mut rng = TensorRng::seeded(7);
        let input = rng.uniform(Shape::chw(1, 8, 8), -1.0, 1.0);
        let weights = rng.uniform(Shape::new(8, 1, 3, 3), -0.5, 0.5);
        let fast = simulate_conv_layer(
            &input,
            &weights,
            None,
            1,
            0,
            false,
            &LayerSimConfig::default(),
        )
        .unwrap();
        let throttled = simulate_conv_layer(
            &input,
            &weights,
            None,
            1,
            0,
            false,
            &LayerSimConfig {
                out_fifo_depth: 1,
                drain_every: 4, // consumer 4x slower than the PE
                ..LayerSimConfig::default()
            },
        )
        .unwrap();
        assert!(throttled.pe_stall_cycles > fast.pe_stall_cycles);
        assert!(throttled.cycles > fast.cycles);
        // Functional result is unaffected by back-pressure.
        assert!(throttled.output.all_close(&fast.output));
    }

    #[test]
    fn input_throttle_slows_stream_bound_layer() {
        let mut rng = TensorRng::seeded(8);
        let input = rng.uniform(Shape::chw(1, 12, 12), -1.0, 1.0);
        let weights = rng.uniform(Shape::new(1, 1, 3, 3), -0.5, 0.5);
        let fast = simulate_conv_layer(
            &input,
            &weights,
            None,
            1,
            0,
            false,
            &LayerSimConfig::default(),
        )
        .unwrap();
        let slow = simulate_conv_layer(
            &input,
            &weights,
            None,
            1,
            0,
            false,
            &LayerSimConfig {
                input_stall_period: Some(2), // every other cycle stalls
                ..LayerSimConfig::default()
            },
        )
        .unwrap();
        assert!(slow.input_stall_cycles > 0);
        assert!(slow.cycles > fast.cycles);
        assert!(slow.output.all_close(&fast.output));
    }

    #[test]
    fn pool_sim_matches_golden_engine() {
        let input = linspace(Shape::chw(3, 6, 6), -2.0, 0.13);
        for method in [PoolKind::Max, PoolKind::Average] {
            let report =
                simulate_pool_layer(&input, method, 2, 2, 0, &LayerSimConfig::default()).unwrap();
            let net = Network::new(
                "p",
                input.shape(),
                vec![Layer::new(
                    "pool",
                    LayerKind::Pooling {
                        method,
                        kernel: 2,
                        stride: 2,
                        pad: 0,
                    },
                )],
            )
            .unwrap();
            let golden = GoldenEngine::new(&net).unwrap().infer(&input).unwrap();
            assert!(report.output.all_close(&golden), "{method:?}");
        }
    }

    #[test]
    fn pool_ceil_mode_edge_windows() {
        // 5x5 input, 2x2/2 pooling → ceil gives 3x3 output with partial
        // windows at the edges.
        let input = linspace(Shape::chw(1, 5, 5), 0.0, 1.0);
        let report =
            simulate_pool_layer(&input, PoolKind::Max, 2, 2, 0, &LayerSimConfig::default())
                .unwrap();
        assert_eq!(report.output.shape(), Shape::new(1, 1, 3, 3));
        let net = Network::new(
            "p",
            input.shape(),
            vec![Layer::new(
                "pool",
                LayerKind::Pooling {
                    method: PoolKind::Max,
                    kernel: 2,
                    stride: 2,
                    pad: 0,
                },
            )],
        )
        .unwrap();
        let golden = GoldenEngine::new(&net).unwrap().infer(&input).unwrap();
        assert!(report.output.all_close(&golden));
    }

    #[test]
    fn pool_cycles_are_stream_bound() {
        let input = linspace(Shape::chw(4, 10, 10), 0.0, 0.5);
        let report =
            simulate_pool_layer(&input, PoolKind::Max, 2, 2, 0, &LayerSimConfig::default())
                .unwrap();
        let stream = 4 * 100;
        assert!(report.cycles >= stream as u64);
        assert!(report.cycles <= stream as u64 + 200);
    }

    #[test]
    fn chain_high_water_respects_bound() {
        let mut rng = TensorRng::seeded(12);
        let input = rng.uniform(Shape::chw(1, 9, 9), -1.0, 1.0);
        let weights = rng.uniform(Shape::new(2, 1, 5, 5), -0.5, 0.5);
        let report = simulate_conv_layer(
            &input,
            &weights,
            None,
            1,
            0,
            false,
            &LayerSimConfig::default(),
        )
        .unwrap();
        assert!(report.chain_high_water <= (5 - 1) * 9 + 5);
    }
}

#[cfg(test)]
mod pool_throttle_tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_nn::PoolKind;
    use condor_tensor::{Shape, TensorRng};

    #[test]
    fn pool_under_backpressure_stays_correct() {
        let mut rng = TensorRng::seeded(44);
        let input = rng.uniform(Shape::chw(2, 8, 8), -3.0, 3.0);
        let fast = simulate_pool_layer(&input, PoolKind::Max, 2, 2, 0, &LayerSimConfig::default())
            .unwrap();
        let throttled = simulate_pool_layer(
            &input,
            PoolKind::Max,
            2,
            2,
            0,
            &LayerSimConfig {
                out_fifo_depth: 1,
                drain_every: 6,
                ..LayerSimConfig::default()
            },
        )
        .unwrap();
        assert!(throttled.cycles > fast.cycles);
        assert!(throttled.pe_stall_cycles > 0);
        assert_eq!(throttled.output, fast.output);
    }

    #[test]
    fn pool_input_throttle_counts_stalls() {
        let mut rng = TensorRng::seeded(45);
        let input = rng.uniform(Shape::chw(1, 10, 10), -1.0, 1.0);
        let slow = simulate_pool_layer(
            &input,
            PoolKind::Average,
            2,
            2,
            0,
            &LayerSimConfig {
                input_stall_period: Some(3),
                ..LayerSimConfig::default()
            },
        )
        .unwrap();
        let fast = simulate_pool_layer(
            &input,
            PoolKind::Average,
            2,
            2,
            0,
            &LayerSimConfig::default(),
        )
        .unwrap();
        assert!(slow.input_stall_cycles > 0);
        assert!(slow.cycles > fast.cycles);
        assert_eq!(slow.output, fast.output);
    }
}
