//! The filter-chain memory subsystem (non-uniform memory partitioning).
//!
//! Paper Section 3.2: "for each feature map read in parallel we create a
//! pipeline of filters interleaved by FIFOs … Within a pipeline, each
//! filter represents an access to the input feature map (a point of the
//! sliding window) and extract the elements from the input stream that
//! belong to its data domain, sending them to the PE. It also sends each
//! element read to the subsequent filter … The FIFOs between filters
//! realize the on-chip buffering and their size is equal to the spatial
//! distance between the two accesses … only the elements that are
//! spatially located in between the first and the last access are
//! buffered on-chip, at any point in time. For this pipeline to work
//! correctly without stalls, its filters are ordered in lexicographically
//! inverse order according to the polyhedral model."
//!
//! [`FilterChain`] is the behavioural model of that pipeline: elements of
//! one (padded) input feature map are pushed in row-major stream order;
//! whenever the element completing a sliding window arrives, the chain
//! emits the full K×K window — all taps concurrently, exactly what the
//! hardware presents to the PE in one cycle. Its buffer occupancy is,
//! by construction, the paper's `(K−1)·W + K` bound.

use std::collections::VecDeque;

/// One filter of the chain: the sliding-window access it represents and
/// the inequalities selecting its data domain (used verbatim by the HLS
/// code generator).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilterSpec {
    /// Window-row offset of the access this filter represents.
    pub row: usize,
    /// Window-column offset.
    pub col: usize,
    /// Position in the chain (0 = receives the raw stream first). The
    /// chain is in lexicographically inverse access order, so position 0
    /// is the access `(K−1, K−1)`.
    pub position: usize,
    /// Depth of the FIFO feeding the *next* filter (`None` for the last).
    pub downstream_fifo_depth: Option<usize>,
    /// Human-readable selection inequalities over the stream coordinates
    /// `(i, j)` of the padded input.
    pub conditions: Vec<String>,
}

/// A completed sliding window, emitted in output row-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct Window {
    /// Output row index.
    pub out_row: usize,
    /// Output column index.
    pub out_col: usize,
    /// The K×K elements in window row-major order (tap `(r, c)` at
    /// `r·K + c`).
    pub elems: Vec<f32>,
}

/// Behavioural model of one filter pipeline over one input feature map.
///
/// ```
/// use condor_dataflow::FilterChain;
///
/// // A 2x2 window sliding over a 3x3 map: 4 windows, row-major.
/// let mut chain = FilterChain::new(2, 3, 3, 1, 0);
/// let stream: Vec<f32> = (0..9).map(|v| v as f32).collect();
/// let windows = chain.run(&stream);
/// assert_eq!(windows.len(), 4);
/// assert_eq!(windows[0].elems, vec![0.0, 1.0, 3.0, 4.0]);
/// // On-chip buffering never exceeds the paper's (K-1)·W + K bound.
/// assert!(chain.high_water() <= chain.buffer_bound());
/// ```
#[derive(Clone, Debug)]
pub struct FilterChain {
    k: usize,
    stride: usize,
    padded_h: usize,
    padded_w: usize,
    out_h: usize,
    out_w: usize,
    /// Sliding buffer of the last `(K−1)·W_p + K` elements.
    buf: VecDeque<f32>,
    /// Elements received so far.
    received: usize,
    /// Peak buffer occupancy observed.
    high_water: usize,
}

impl FilterChain {
    /// Creates a chain for a `K×K` window sliding with `stride` over an
    /// `h×w` input with symmetric zero padding `pad`. The stream pushed
    /// into the chain must be the *padded* image, row-major.
    pub fn new(k: usize, h: usize, w: usize, stride: usize, pad: usize) -> Self {
        assert!(k >= 1 && stride >= 1, "degenerate window");
        let padded_h = h + 2 * pad;
        let padded_w = w + 2 * pad;
        assert!(
            padded_h >= k && padded_w >= k,
            "window {k} exceeds padded input {padded_h}x{padded_w}"
        );
        FilterChain {
            k,
            stride,
            padded_h,
            padded_w,
            out_h: (padded_h - k) / stride + 1,
            out_w: (padded_w - k) / stride + 1,
            buf: VecDeque::new(),
            received: 0,
            high_water: 0,
        }
    }

    /// Output extents `(out_h, out_w)`.
    pub fn out_dims(&self) -> (usize, usize) {
        (self.out_h, self.out_w)
    }

    /// On-chip buffer bound: `(K−1)·W_p + K` elements.
    pub fn buffer_bound(&self) -> usize {
        (self.k - 1) * self.padded_w + self.k
    }

    /// Total stream elements expected for one feature map.
    pub fn stream_len(&self) -> usize {
        self.padded_h * self.padded_w
    }

    /// Peak occupancy observed so far.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Pushes the next stream element; returns the window it completes,
    /// if any. (With stride 1 every element inside the valid region
    /// completes exactly one window; with larger strides some complete
    /// none — the filters' inequality conditions filter them out.)
    pub fn push(&mut self, v: f32) -> Option<Window> {
        assert!(
            self.received < self.stream_len(),
            "stream overrun: feature map already complete"
        );
        self.buf.push_back(v);
        self.received += 1;
        if self.buf.len() > self.buffer_bound() {
            self.buf.pop_front();
        }
        self.high_water = self.high_water.max(self.buf.len());

        // Which window does the element just received complete? The
        // completing element of window (oi, oj) is the bottom-right tap:
        // flat index (oi·s + K−1)·W_p + oj·s + K−1.
        let flat = self.received - 1;
        let r = flat / self.padded_w;
        let c = flat % self.padded_w;
        if r + 1 < self.k || c + 1 < self.k {
            return None;
        }
        let top = r + 1 - self.k;
        let left = c + 1 - self.k;
        if !top.is_multiple_of(self.stride) || !left.is_multiple_of(self.stride) {
            return None;
        }
        let out_row = top / self.stride;
        let out_col = left / self.stride;
        if out_row >= self.out_h || out_col >= self.out_w {
            return None;
        }

        // Assemble the window from the sliding buffer.
        let front_flat = self.received - self.buf.len();
        let mut elems = Vec::with_capacity(self.k * self.k);
        for tr in 0..self.k {
            for tc in 0..self.k {
                let tap_flat = (top + tr) * self.padded_w + (left + tc);
                elems.push(self.buf[tap_flat - front_flat]);
            }
        }
        Some(Window {
            out_row,
            out_col,
            elems,
        })
    }

    /// Runs a whole padded feature map through the chain, returning all
    /// windows in output row-major order.
    pub fn run(&mut self, padded_stream: &[f32]) -> Vec<Window> {
        assert_eq!(
            padded_stream.len(),
            self.stream_len(),
            "stream length mismatch"
        );
        padded_stream.iter().filter_map(|&v| self.push(v)).collect()
    }

    /// The filter specifications of this chain, in lexicographically
    /// inverse order with the paper's FIFO sizing.
    pub fn filter_specs(&self) -> Vec<FilterSpec> {
        let k = self.k;
        let s = self.stride;
        let mut specs = Vec::with_capacity(k * k);
        // Lexicographically inverse: (K−1,K−1), (K−1,K−2), …, (0,0).
        for (position, tap) in (0..k * k).rev().enumerate() {
            let row = tap / k;
            let col = tap % k;
            // FIFO depth to the next (lexicographically smaller) access:
            // distance 1 within a row, W_p − K + 1 across rows.
            let downstream_fifo_depth = if tap == 0 {
                None
            } else if col == 0 {
                Some(self.padded_w - k + 1)
            } else {
                Some(1)
            };
            let conditions = vec![
                format!("i >= {row}"),
                format!("i <= {}", row + (self.out_h - 1) * s),
                format!("(i - {row}) % {s} == 0"),
                format!("j >= {col}"),
                format!("j <= {}", col + (self.out_w - 1) * s),
                format!("(j - {col}) % {s} == 0"),
            ];
            specs.push(FilterSpec {
                row,
                col,
                position,
                downstream_fifo_depth,
                conditions,
            });
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    /// Brute-force window enumeration for cross-checking.
    fn naive_windows(img: &[f32], h: usize, w: usize, k: usize, stride: usize) -> Vec<Window> {
        let mut out = Vec::new();
        let out_h = (h - k) / stride + 1;
        let out_w = (w - k) / stride + 1;
        for oi in 0..out_h {
            for oj in 0..out_w {
                let mut elems = Vec::new();
                for r in 0..k {
                    for c in 0..k {
                        elems.push(img[(oi * stride + r) * w + oj * stride + c]);
                    }
                }
                out.push(Window {
                    out_row: oi,
                    out_col: oj,
                    elems,
                });
            }
        }
        out
    }

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|v| v as f32).collect()
    }

    #[test]
    fn windows_match_naive_enumeration_stride1() {
        let (h, w, k) = (6, 7, 3);
        let img = ramp(h * w);
        let mut chain = FilterChain::new(k, h, w, 1, 0);
        let got = chain.run(&img);
        assert_eq!(got, naive_windows(&img, h, w, k, 1));
    }

    #[test]
    fn windows_match_naive_enumeration_stride2() {
        let (h, w, k, s) = (8, 8, 2, 2);
        let img = ramp(h * w);
        let mut chain = FilterChain::new(k, h, w, s, 0);
        let got = chain.run(&img);
        assert_eq!(got, naive_windows(&img, h, w, k, s));
        assert_eq!(got.len(), 16); // 4x4 output
    }

    #[test]
    fn padding_is_callers_stream() {
        // pad=1 on a 3x3 image: the chain sees a 5x5 padded stream.
        let chain = FilterChain::new(3, 3, 3, 1, 1);
        assert_eq!(chain.out_dims(), (3, 3));
        assert_eq!(chain.stream_len(), 25);
    }

    #[test]
    fn buffer_never_exceeds_paper_bound() {
        let (h, w, k) = (12, 16, 5);
        let img = ramp(h * w);
        let mut chain = FilterChain::new(k, h, w, 1, 0);
        chain.run(&img);
        assert_eq!(chain.buffer_bound(), (k - 1) * w + k);
        assert!(chain.high_water() <= chain.buffer_bound());
        // And the bound is tight: a full-height window needs all of it.
        assert_eq!(chain.high_water(), chain.buffer_bound());
    }

    #[test]
    fn first_window_fill_latency() {
        let (h, w, k) = (5, 5, 3);
        let mut chain = FilterChain::new(k, h, w, 1, 0);
        let mut first_at = None;
        for (i, v) in ramp(h * w).into_iter().enumerate() {
            if chain.push(v).is_some() {
                first_at = Some(i + 1);
                break;
            }
        }
        // (K−1)·W + K elements must arrive before the first window.
        assert_eq!(first_at, Some((k - 1) * w + k));
    }

    #[test]
    fn one_window_per_cycle_after_fill_stride1() {
        let (h, w, k) = (6, 6, 3);
        let mut chain = FilterChain::new(k, h, w, 1, 0);
        let mut windows_at = Vec::new();
        for (i, v) in ramp(h * w).into_iter().enumerate() {
            if chain.push(v).is_some() {
                windows_at.push(i);
            }
        }
        // Within one output row, completions are on consecutive cycles.
        let (out_h, out_w) = chain.out_dims();
        assert_eq!(windows_at.len(), out_h * out_w);
        for row in 0..out_h {
            let row_slice = &windows_at[row * out_w..(row + 1) * out_w];
            assert!(row_slice.windows(2).all(|p| p[1] == p[0] + 1));
        }
    }

    #[test]
    fn filter_specs_are_lexicographically_inverse() {
        let chain = FilterChain::new(3, 6, 6, 1, 0);
        let specs = chain.filter_specs();
        assert_eq!(specs.len(), 9);
        assert_eq!((specs[0].row, specs[0].col), (2, 2));
        assert_eq!((specs[8].row, specs[8].col), (0, 0));
        assert!(specs.iter().enumerate().all(|(i, s)| s.position == i));
        // FIFO depths: distance 1 within rows, W−K+1 across rows, none
        // after the last access.
        assert_eq!(specs[8].downstream_fifo_depth, None);
        let row_crossings = specs
            .iter()
            .filter(|s| s.downstream_fifo_depth == Some(4))
            .count();
        assert_eq!(row_crossings, 2); // taps (2,0) and (1,0)
                                      // The FIFO depths sum to the spatial distance between the first
                                      // and the last access: one less than the on-chip buffer bound.
        let total: usize = specs.iter().filter_map(|s| s.downstream_fifo_depth).sum();
        assert_eq!(total, chain.buffer_bound() - 1);
    }

    #[test]
    fn filter_conditions_mention_domain() {
        let chain = FilterChain::new(2, 4, 4, 2, 0);
        let specs = chain.filter_specs();
        let f = specs.iter().find(|s| s.row == 0 && s.col == 1).unwrap();
        assert!(f.conditions.iter().any(|c| c == "j >= 1"));
        assert!(f.conditions.iter().any(|c| c.contains("% 2 == 0")));
    }

    #[test]
    #[should_panic(expected = "stream overrun")]
    fn overrun_detected() {
        let mut chain = FilterChain::new(2, 2, 2, 1, 0);
        for v in 0..5 {
            chain.push(v as f32);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds padded input")]
    fn oversized_window_rejected() {
        FilterChain::new(5, 3, 3, 1, 0);
    }
}
