//! Threaded functional runtime: the accelerator as concurrent processes.
//!
//! "The accelerator is a composition of … simple and independent elements
//! communicating over FIFOs" using "blocking reads and writes" (paper
//! Sections Abstract / 3.2). This runtime realises that structure in
//! software: the datamover and every PE run as their own OS thread and
//! exchange *frame-sized* chunks — one `Vec<f32>` per feature-map payload,
//! the software analogue of a DMA burst — over bounded blocking channels,
//! so back-pressure propagates exactly as in the hardware pipeline. All
//! PEs are "concurrently active", which is what makes batched execution
//! pipeline across layers (Figure 5).
//!
//! Frame chunking replaced the original element-at-a-time streams: sending
//! every `f32` through a channel cost a synchronised handoff per element,
//! which dwarfed the arithmetic. A frame per send keeps the FIFO semantics
//! (blocking, bounded, order-preserving) at per-image granularity.
//!
//! Numerical behaviour per PE uses the `condor-kernels` compute layer via
//! [`condor_nn::fast::forward_layer_fast`] — the same slice-level
//! primitive `FastEngine` is built on — applied layer-by-layer over the
//! PE's fused layers. A full-network run therefore cross-checks the plan's
//! topology, fusion grouping, stream wiring and ordering against
//! [`condor_nn::GoldenEngine`], which the kernels are property-tested
//! against.

use crate::plan::{AcceleratorPlan, DataflowError, DataflowErrorKind, PePlan};
use condor_faults::{FaultAction, FaultHandle};
use condor_kernels::Workspace;
use condor_nn::fast::{forward_layer_fast, merge_fast};
use condor_nn::Network;
use condor_tensor::Tensor;
use crossbeam_channel::{bounded, Receiver, Sender};
use std::sync::Arc;

/// The threaded accelerator runtime.
///
/// Owns shared handles to the network and plan so one wired runtime can
/// be cached and reused across batches (and shared between concurrent
/// callers — `run_batch` takes `&self` and each call spawns its own
/// channel pipeline, so overlapping batches do not interfere).
pub struct ThreadedRuntime {
    net: Arc<Network>,
    plan: Arc<AcceleratorPlan>,
    channel_depth: usize,
    faults: FaultHandle,
}

impl std::fmt::Debug for ThreadedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedRuntime")
            .field("network", &self.net.name)
            .field("pes", &self.plan.pes.len())
            .field("channel_depth", &self.channel_depth)
            .finish()
    }
}

impl ThreadedRuntime {
    /// Wires a runtime for a fully-weighted network and its plan.
    pub fn new(net: &Network, plan: &AcceleratorPlan) -> Result<Self, DataflowError> {
        ThreadedRuntime::from_shared(Arc::new(net.clone()), Arc::new(plan.clone()))
    }

    /// Wires a runtime from shared handles without copying weights —
    /// the constructor for callers that keep the runtime alive across
    /// many batches (deployment handles, the inference server).
    pub fn from_shared(
        net: Arc<Network>,
        plan: Arc<AcceleratorPlan>,
    ) -> Result<Self, DataflowError> {
        if !net.fully_weighted() {
            return Err(DataflowError::kinded(
                DataflowErrorKind::Execution,
                "network must be fully weighted before hardware execution",
            ));
        }
        if plan.pes.is_empty() {
            return Err(DataflowError::new("plan has no PEs"));
        }
        if plan.pes.iter().any(|pe| pe.layers.is_empty()) {
            return Err(DataflowError::new("plan has a PE with no layers"));
        }
        for pe in &plan.pes {
            for layer in &pe.layers {
                if layer.kind.has_weights() && net.weights_of(&layer.name).is_none() {
                    return Err(DataflowError::kinded(
                        DataflowErrorKind::Execution,
                        format!("plan layer '{}' has no weights in the network", layer.name),
                    ));
                }
            }
        }
        Ok(ThreadedRuntime {
            net,
            plan,
            channel_depth: 4,
            faults: FaultHandle::disabled(),
        })
    }

    /// The network this runtime executes.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The plan this runtime executes.
    pub fn plan(&self) -> &AcceleratorPlan {
        &self.plan
    }

    /// Overrides the inter-PE channel depth, measured in *frames*
    /// (feature-map payloads), default 4. Depth 1 still completes — the
    /// channels are blocking, not lossy — just with maximal back-pressure.
    pub fn with_channel_depth(mut self, depth: usize) -> Self {
        self.channel_depth = depth.max(1);
        self
    }

    /// Arms fault injection (disabled by default). Sites:
    /// `dataflow.datamover` fires per input frame (`Delay` = DMA stall,
    /// `FailTransient` = dropped frame, `Abort`/`FailPermanent` = the
    /// datamover dies); `dataflow.pe{i}` fires per frame inside PE *i*
    /// with the same action mapping (a stalled FIFO, a dropped frame, a
    /// dead worker). Dropped frames and dead workers surface as a
    /// *transient* "pipeline terminated early" error from `run_batch`.
    pub fn with_faults(mut self, faults: FaultHandle) -> Self {
        self.faults = faults;
        self
    }

    /// Streams a batch of images through the PE pipeline and collects
    /// the outputs in order.
    pub fn run_batch(&self, images: &[Tensor]) -> Result<Vec<Tensor>, DataflowError> {
        for img in images {
            if img.shape() != self.net.input_shape {
                return Err(DataflowError::kinded(
                    DataflowErrorKind::Execution,
                    format!(
                        "input shape {} does not match network input {}",
                        img.shape(),
                        self.net.input_shape
                    ),
                ));
            }
        }
        if images.is_empty() {
            return Ok(Vec::new());
        }

        let n_pes = self.plan.pes.len();
        let out_shape = self
            .plan
            .pes
            .last()
            .expect("non-empty")
            .layers
            .last()
            .expect("PE has layers")
            .output;

        // Which stage feeds each input position of each PE: the PE
        // hosting the first layer's predecessor node, or the datamover
        // (`None`) when the predecessor is the network input. On a
        // linear chain this is `[[None], [Some(0)], [Some(1)], …]`.
        let mut pe_of_node = vec![usize::MAX; self.net.node_count()];
        for (pi, pe) in self.plan.pes.iter().enumerate() {
            for l in &pe.layers {
                pe_of_node[l.node.index()] = pi;
            }
        }
        let feeds: Vec<Vec<Option<usize>>> = self
            .plan
            .pes
            .iter()
            .map(|pe| {
                let first = pe.layers.first().expect("PE has layers");
                let preds = self.net.inputs_of(first.node);
                if preds.is_empty() {
                    vec![None]
                } else {
                    preds
                        .iter()
                        .map(|p| {
                            let src = pe_of_node.get(p.index()).copied().unwrap_or(usize::MAX);
                            (src != usize::MAX).then_some(src)
                        })
                        .collect()
                }
            })
            .collect();
        // Per-position frame lengths (a join receives one frame per
        // upstream branch, each with its own shape).
        let ins_multi = self
            .net
            .input_shapes_multi()
            .map_err(|e| DataflowError::kinded(DataflowErrorKind::Execution, e.message.clone()))?;
        let in_lens: Vec<Vec<usize>> = self
            .plan
            .pes
            .iter()
            .map(|pe| {
                let first = pe.layers.first().expect("PE has layers");
                ins_multi
                    .get(first.node.index())
                    .map(|shapes| shapes.iter().map(|s| s.len()).collect())
                    .unwrap_or_else(|| vec![first.input.len()])
            })
            .collect();

        // One bounded channel per graph edge: each (PE, input position)
        // pair gets its own FIFO, registered with the producing stage.
        // Each message is one whole frame.
        let mut pe_rxs: Vec<Vec<Receiver<Vec<f32>>>> = Vec::with_capacity(n_pes);
        let mut dm_txs: Vec<Sender<Vec<f32>>> = Vec::new();
        let mut pe_txs: Vec<Vec<Sender<Vec<f32>>>> = vec![Vec::new(); n_pes];
        for feed in &feeds {
            let mut rxs = Vec::with_capacity(feed.len());
            for &src in feed {
                let (tx, rx) = bounded::<Vec<f32>>(self.channel_depth);
                rxs.push(rx);
                match src {
                    None => dm_txs.push(tx),
                    Some(s) => pe_txs[s].push(tx),
                }
            }
            pe_rxs.push(rxs);
        }
        // The collector is one more consumer of the final PE.
        let (col_tx, col_rx) = bounded::<Vec<f32>>(self.channel_depth);
        pe_txs[n_pes - 1].push(col_tx);

        let batch = images.len();
        let mut result: Result<Vec<Tensor>, DataflowError> = Ok(Vec::new());

        std::thread::scope(|scope| {
            // Datamover: streams each image as one input frame to every
            // input-fed position (a fork at the network input replays
            // the frame once per branch).
            let images_ref = images;
            let dm_faults = self.faults.clone();
            scope.spawn(move || {
                for img in images_ref {
                    match dm_faults.check("dataflow.datamover") {
                        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                        Some(FaultAction::FailTransient) => continue, // dropped frame
                        Some(FaultAction::FailPermanent) | Some(FaultAction::Abort) => return,
                        // Timing actions belong to the DES; `check`
                        // never returns them on the functional path.
                        Some(_) => {}
                        None => {}
                    }
                    if send_to_all(&dm_txs, img.as_slice().to_vec()).is_err() {
                        return; // downstream failed; unwind quietly
                    }
                }
                // Dropping dm_txs closes the streams.
            });

            // PEs: receive one frame per image and input position, apply
            // the fused layers through the kernel compute layer, send the
            // output frame to every consumer. Scratch (ping-pong
            // activations + im2col workspace) is allocated once per PE
            // and reused across the batch.
            let mut rx_iter = pe_rxs.into_iter();
            let mut tx_iter = pe_txs.into_iter();
            for (idx, pe) in self.plan.pes.iter().enumerate() {
                let rxs = rx_iter.next().expect("one rx set per PE");
                let txs = tx_iter.next().expect("one tx set per PE");
                let lens = in_lens[idx].clone();
                let net = self.net.as_ref();
                let faults = self.faults.clone();
                let site = format!("dataflow.pe{idx}");
                scope.spawn(move || pe_worker(pe, net, &rxs, &txs, &lens, batch, &faults, &site));
            }

            // Collector (this thread): assemble the batch outputs.
            let rx = col_rx;
            let mut outs = Vec::with_capacity(batch);
            for i in 0..batch {
                match recv_frame(&rx, out_shape.len()) {
                    Some(frame) => outs.push(Tensor::from_vec(out_shape, frame)),
                    None => {
                        let err = DataflowError::kinded(
                            DataflowErrorKind::Execution,
                            format!("pipeline terminated early at image {i}"),
                        );
                        // Truncation caused by an injected dataflow fault
                        // is transient: re-running the batch may succeed.
                        let injected = self
                            .faults
                            .log()
                            .iter()
                            .any(|r| r.site.starts_with("dataflow."));
                        result = Err(if injected { err.mark_transient() } else { err });
                        return;
                    }
                }
            }
            result = Ok(outs);
        });

        result
    }
}

/// Receives exactly one frame of the expected length, or `None` if the
/// channel closes first (or an upstream stage sent a malformed frame).
fn recv_frame(rx: &Receiver<Vec<f32>>, len: usize) -> Option<Vec<f32>> {
    let frame = rx.recv().ok()?;
    (frame.len() == len).then_some(frame)
}

/// Sends one frame to every consumer, cloning for all but the last (the
/// common single-consumer chain case moves the frame without a copy).
/// `Err` when every consumer hung up; a dangling PE (no consumers)
/// drops the frame, mirroring hardware where an unread stream idles.
fn send_to_all(txs: &[Sender<Vec<f32>>], frame: Vec<f32>) -> Result<(), ()> {
    let Some((last, rest)) = txs.split_last() else {
        return Ok(());
    };
    for tx in rest {
        let _ = tx.send(frame.clone()); // one dead branch must not kill the fork
    }
    last.send(frame).map_err(|_| ())
}

/// One PE thread: drains `batch` frames from each input position, runs
/// the PE's fused layers over its private scratch arena, and forwards
/// output frames to every consumer. A PE whose first layer is a
/// multi-input merge (`Concat`/`Eltwise`) receives one frame per
/// upstream branch and combines them before the remaining fused layers
/// run. Returns early (closing its channels) on upstream termination,
/// downstream termination or a compute error — the collector reports
/// the resulting truncation.
#[allow(clippy::too_many_arguments)]
fn pe_worker(
    pe: &PePlan,
    net: &Network,
    rxs: &[Receiver<Vec<f32>>],
    txs: &[Sender<Vec<f32>>],
    in_lens: &[usize],
    batch: usize,
    faults: &FaultHandle,
    site: &str,
) {
    let first = pe.layers.first().expect("PE has layers");
    let out_len = pe.layers.last().expect("PE has layers").output.len();
    let merge_head = rxs.len() > 1;
    let max_len = pe
        .layers
        .iter()
        .map(|l| l.input.len().max(l.output.len()))
        .max()
        .expect("PE has layers");
    let mut ping = vec![0.0f32; max_len];
    let mut pong = vec![0.0f32; max_len];
    let mut ws = Workspace::new();
    let mut frames: Vec<Vec<f32>> = Vec::with_capacity(rxs.len());

    for _ in 0..batch {
        frames.clear();
        for (rx, &len) in rxs.iter().zip(in_lens) {
            let Some(frame) = recv_frame(rx, len) else {
                return; // upstream closed early
            };
            frames.push(frame);
        }
        // Injected FIFO faults: stall, drop the frame, or kill the PE.
        match faults.check(site) {
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(FaultAction::FailTransient) => continue, // frame dropped
            Some(FaultAction::FailPermanent) | Some(FaultAction::Abort) => return,
            // Timing actions belong to the DES, not this thread.
            Some(_) => {}
            None => {}
        }
        let mut src = &mut ping;
        let mut dst = &mut pong;
        let rest = if merge_head {
            // The join combines its branch frames into the first
            // layer's output, then the fused tail runs as usual.
            let inputs: Vec<&[f32]> = frames.iter().map(Vec::as_slice).collect();
            merge_fast(&first.kind, &inputs, &mut src[..first.output.len()]);
            &pe.layers[1..]
        } else {
            src[..in_lens[0]].copy_from_slice(&frames[0]);
            &pe.layers[..]
        };
        for layer in rest {
            // Standalone activation layers stay unfused here: the plan
            // already groups layers into PEs, and the runtime mirrors
            // the plan's structure one filter at a time.
            if forward_layer_fast(
                net,
                &layer.name,
                &layer.kind,
                None,
                &src[..layer.input.len()],
                layer.input,
                layer.output,
                &mut dst[..layer.output.len()],
                &mut ws,
            )
            .is_err()
            {
                return; // typed compute error ⇒ truncate the stream
            }
            std::mem::swap(&mut src, &mut dst);
        }
        // Recycle an incoming frame's allocation for the outgoing one.
        let mut out = frames.swap_remove(0);
        out.resize(out_len, 0.0);
        out.copy_from_slice(&src[..out_len]);
        if send_to_all(txs, out).is_err() {
            return; // every downstream consumer closed
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::plan::{PeParallelism, PlanBuilder};
    use condor_nn::{dataset, zoo, GoldenEngine};
    use condor_tensor::{AllClose, Shape};

    fn lenet_setup() -> (Network, AcceleratorPlan) {
        let net = zoo::lenet_weighted(21);
        let plan = PlanBuilder::new(&net).build().unwrap();
        (net, plan)
    }

    #[test]
    fn lenet_runtime_matches_golden_engine() {
        let (net, plan) = lenet_setup();
        let rt = ThreadedRuntime::new(&net, &plan).unwrap();
        let images: Vec<Tensor> = dataset::mnist_like(4, 5)
            .into_iter()
            .map(|s| s.image)
            .collect();
        let hw = rt.run_batch(&images).unwrap();
        let golden = GoldenEngine::new(&net)
            .unwrap()
            .infer_batch(&images)
            .unwrap();
        assert_eq!(hw.len(), 4);
        for (h, g) in hw.iter().zip(&golden) {
            assert!(h.all_close(g));
        }
    }

    #[test]
    fn tc1_runtime_matches_golden_engine() {
        let net = zoo::tc1_weighted(33);
        let plan = PlanBuilder::new(&net)
            .parallelism(PeParallelism {
                parallel_in: 1,
                parallel_out: 1,
                fc_simd: 2,
            })
            .build()
            .unwrap();
        let rt = ThreadedRuntime::new(&net, &plan).unwrap();
        let images: Vec<Tensor> = dataset::usps_like(6, 9)
            .into_iter()
            .map(|s| s.image)
            .collect();
        let hw = rt.run_batch(&images).unwrap();
        let golden = GoldenEngine::new(&net)
            .unwrap()
            .infer_batch(&images)
            .unwrap();
        for (h, g) in hw.iter().zip(&golden) {
            assert!(h.all_close(g));
        }
    }

    #[test]
    fn resnet_block_runtime_matches_golden_engine() {
        let net = zoo::resnet_block_weighted(17);
        for fusion in [1, 4] {
            let plan = PlanBuilder::new(&net).fusion(fusion).build().unwrap();
            let rt = ThreadedRuntime::new(&net, &plan).unwrap();
            let images: Vec<Tensor> = (0..4u64)
                .map(|i| condor_tensor::xavier(net.input_shape, 4, 40 + i))
                .collect();
            let hw = rt.run_batch(&images).unwrap();
            let golden = GoldenEngine::new(&net)
                .unwrap()
                .infer_batch(&images)
                .unwrap();
            for (h, g) in hw.iter().zip(&golden) {
                assert!(
                    h.all_close(g),
                    "fusion {fusion}: fork/join wiring broke values"
                );
            }
        }
    }

    #[test]
    fn random_dag_runtimes_match_golden_engine() {
        for seed in 0..8u64 {
            let net = condor_nn::arbitrary::random_weighted_dag(seed);
            let plan = PlanBuilder::new(&net).build().unwrap();
            let rt = ThreadedRuntime::new(&net, &plan).unwrap();
            let images: Vec<Tensor> = (0..2u64)
                .map(|i| condor_tensor::xavier(net.input_shape, 4, seed * 10 + i))
                .collect();
            let hw = rt.run_batch(&images).unwrap();
            let golden = GoldenEngine::new(&net)
                .unwrap()
                .infer_batch(&images)
                .unwrap();
            for (h, g) in hw.iter().zip(&golden) {
                assert!(h.all_close(g), "seed {seed}: DAG runtime diverged");
            }
        }
    }

    #[test]
    fn runtime_matches_fast_engine_bitwise() {
        // The PEs and FastEngine share `forward_layer_fast`, so modulo
        // ReLU fusion (which changes no values for exact ReLU epilogue
        // math) the runtime should reproduce the fast engine exactly on
        // unfused plans.
        let (net, plan) = lenet_setup();
        let rt = ThreadedRuntime::new(&net, &plan).unwrap();
        let mut fast = condor_nn::FastEngine::new(&net).unwrap();
        let images: Vec<Tensor> = dataset::mnist_like(3, 11)
            .into_iter()
            .map(|s| s.image)
            .collect();
        let hw = rt.run_batch(&images).unwrap();
        let sw = fast.infer_batch(&images).unwrap();
        for (h, s) in hw.iter().zip(&sw) {
            assert!(h.all_close(s));
        }
    }

    #[test]
    fn fused_plan_gives_same_answers_as_unfused() {
        let net = zoo::lenet_weighted(8);
        let unfused = PlanBuilder::new(&net).build().unwrap();
        let fused = PlanBuilder::new(&net).fusion(10).build().unwrap();
        assert!(fused.pes.len() < unfused.pes.len());
        let images: Vec<Tensor> = dataset::mnist_like(3, 2)
            .into_iter()
            .map(|s| s.image)
            .collect();
        let a = ThreadedRuntime::new(&net, &unfused)
            .unwrap()
            .run_batch(&images)
            .unwrap();
        let b = ThreadedRuntime::new(&net, &fused)
            .unwrap()
            .run_batch(&images)
            .unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!(x.all_close(y));
        }
    }

    #[test]
    fn tiny_channels_still_complete() {
        // Depth-1 channels maximise back-pressure but must not deadlock:
        // the pipeline is acyclic and every consumer drains its input.
        let net = zoo::tc1_weighted(3);
        let plan = PlanBuilder::new(&net).build().unwrap();
        let rt = ThreadedRuntime::new(&net, &plan)
            .unwrap()
            .with_channel_depth(1);
        let images: Vec<Tensor> = dataset::usps_like(2, 4)
            .into_iter()
            .map(|s| s.image)
            .collect();
        let out = rt.run_batch(&images).unwrap();
        let golden = GoldenEngine::new(&net)
            .unwrap()
            .infer_batch(&images)
            .unwrap();
        for (h, g) in out.iter().zip(&golden) {
            assert!(h.all_close(g));
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let (net, plan) = lenet_setup();
        let rt = ThreadedRuntime::new(&net, &plan).unwrap();
        assert!(rt.run_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let (net, plan) = lenet_setup();
        let rt = ThreadedRuntime::new(&net, &plan).unwrap();
        let bad = Tensor::zeros(Shape::chw(1, 16, 16));
        assert!(rt.run_batch(&[bad]).is_err());
    }

    #[test]
    fn unweighted_network_rejected() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        assert!(ThreadedRuntime::new(&net, &plan).is_err());
    }

    #[test]
    fn dropped_pe_frame_truncates_with_transient_error() {
        use condor_faults::{FaultPlan, FaultRule};
        let (net, plan) = lenet_setup();
        let handle = FaultPlan::new(7)
            .rule(FaultRule::at("dataflow.pe0").nth_call(1).fail_transient())
            .install();
        let rt = ThreadedRuntime::new(&net, &plan)
            .unwrap()
            .with_faults(handle.clone());
        let images: Vec<Tensor> = dataset::mnist_like(3, 5)
            .into_iter()
            .map(|s| s.image)
            .collect();
        let err = rt.run_batch(&images).unwrap_err();
        assert!(err.message.contains("pipeline terminated early"));
        assert!(err.transient, "injected drop must classify as transient");
        assert_eq!(handle.fired(), 1);
        // The fault window was one frame: a re-run succeeds.
        assert_eq!(rt.run_batch(&images).unwrap().len(), 3);
    }

    #[test]
    fn dead_datamover_truncates_the_stream() {
        use condor_faults::{FaultPlan, FaultRule};
        let (net, plan) = lenet_setup();
        let handle = FaultPlan::new(9)
            .rule(FaultRule::at("dataflow.datamover").nth_call(2).abort())
            .install();
        let rt = ThreadedRuntime::new(&net, &plan)
            .unwrap()
            .with_faults(handle);
        let images: Vec<Tensor> = dataset::mnist_like(4, 6)
            .into_iter()
            .map(|s| s.image)
            .collect();
        let err = rt.run_batch(&images).unwrap_err();
        assert!(err.message.contains("terminated early at image 2"));
        assert!(err.transient);
    }

    #[test]
    fn stalled_fifo_still_computes_correctly() {
        use condor_faults::{FaultPlan, FaultRule};
        use std::time::Duration;
        let (net, plan) = lenet_setup();
        let handle = FaultPlan::new(3)
            .rule(
                FaultRule::at("dataflow.pe1")
                    .first_calls(2)
                    .delay(Duration::from_millis(2)),
            )
            .install();
        let rt = ThreadedRuntime::new(&net, &plan)
            .unwrap()
            .with_faults(handle.clone());
        let images: Vec<Tensor> = dataset::mnist_like(3, 8)
            .into_iter()
            .map(|s| s.image)
            .collect();
        let stalled = rt.run_batch(&images).unwrap();
        let golden = GoldenEngine::new(&net)
            .unwrap()
            .infer_batch(&images)
            .unwrap();
        for (h, g) in stalled.iter().zip(&golden) {
            assert!(h.all_close(g), "stalls must not corrupt values");
        }
        assert_eq!(handle.fired(), 2);
    }

    #[test]
    fn empty_fault_plan_leaves_runtime_unchanged() {
        use condor_faults::FaultPlan;
        let (net, plan) = lenet_setup();
        let handle = FaultPlan::new(0xC0).install();
        let rt = ThreadedRuntime::new(&net, &plan)
            .unwrap()
            .with_faults(handle.clone());
        let images: Vec<Tensor> = dataset::mnist_like(2, 1)
            .into_iter()
            .map(|s| s.image)
            .collect();
        assert_eq!(rt.run_batch(&images).unwrap().len(), 2);
        assert_eq!(handle.fired(), 0);
    }
}
