//! Threaded functional runtime: the accelerator as concurrent processes.
//!
//! "The accelerator is a composition of … simple and independent elements
//! communicating over FIFOs" using "blocking reads and writes" (paper
//! Sections Abstract / 3.2). This runtime realises that structure in
//! software: the datamover and every PE run as their own OS thread and
//! exchange raw `f32` streams over *bounded* blocking channels, so
//! back-pressure propagates exactly as in the hardware pipeline. All PEs
//! are "concurrently active", which is what makes batched execution
//! pipeline across layers (Figure 5).
//!
//! Numerical behaviour per PE reuses the golden reference arithmetic,
//! applied layer-by-layer over the PE's fused layers, so a full-network
//! run cross-checks the plan's topology, fusion grouping, stream wiring
//! and ordering against [`condor_nn::GoldenEngine`].

use crate::plan::{AcceleratorPlan, DataflowError, DataflowErrorKind, PePlan};
use condor_nn::golden;
use condor_nn::{LayerKind, Network};
use condor_tensor::{Shape, Tensor};
use crossbeam_channel::{bounded, Receiver, Sender};
use std::sync::Arc;

/// The threaded accelerator runtime.
///
/// Owns shared handles to the network and plan so one wired runtime can
/// be cached and reused across batches (and shared between concurrent
/// callers — `run_batch` takes `&self` and each call spawns its own
/// channel pipeline, so overlapping batches do not interfere).
pub struct ThreadedRuntime {
    net: Arc<Network>,
    plan: Arc<AcceleratorPlan>,
    channel_depth: usize,
}

impl std::fmt::Debug for ThreadedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedRuntime")
            .field("network", &self.net.name)
            .field("pes", &self.plan.pes.len())
            .field("channel_depth", &self.channel_depth)
            .finish()
    }
}

impl ThreadedRuntime {
    /// Wires a runtime for a fully-weighted network and its plan.
    pub fn new(net: &Network, plan: &AcceleratorPlan) -> Result<Self, DataflowError> {
        ThreadedRuntime::from_shared(Arc::new(net.clone()), Arc::new(plan.clone()))
    }

    /// Wires a runtime from shared handles without copying weights —
    /// the constructor for callers that keep the runtime alive across
    /// many batches (deployment handles, the inference server).
    pub fn from_shared(
        net: Arc<Network>,
        plan: Arc<AcceleratorPlan>,
    ) -> Result<Self, DataflowError> {
        if !net.fully_weighted() {
            return Err(DataflowError::kinded(
                DataflowErrorKind::Execution,
                "network must be fully weighted before hardware execution",
            ));
        }
        if plan.pes.is_empty() {
            return Err(DataflowError::new("plan has no PEs"));
        }
        if plan.pes.iter().any(|pe| pe.layers.is_empty()) {
            return Err(DataflowError::new("plan has a PE with no layers"));
        }
        for pe in &plan.pes {
            for layer in &pe.layers {
                if layer.kind.has_weights() && net.weights_of(&layer.name).is_none() {
                    return Err(DataflowError::kinded(
                        DataflowErrorKind::Execution,
                        format!("plan layer '{}' has no weights in the network", layer.name),
                    ));
                }
            }
        }
        Ok(ThreadedRuntime {
            net,
            plan,
            channel_depth: 1024,
        })
    }

    /// The network this runtime executes.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The plan this runtime executes.
    pub fn plan(&self) -> &AcceleratorPlan {
        &self.plan
    }

    /// Overrides the inter-PE channel depth (default 1024 elements).
    /// Depth 1 still completes — the channels are blocking, not lossy —
    /// just with maximal back-pressure.
    pub fn with_channel_depth(mut self, depth: usize) -> Self {
        self.channel_depth = depth.max(1);
        self
    }

    /// Streams a batch of images through the PE pipeline and collects
    /// the outputs in order.
    pub fn run_batch(&self, images: &[Tensor]) -> Result<Vec<Tensor>, DataflowError> {
        for img in images {
            if img.shape() != self.net.input_shape {
                return Err(DataflowError::kinded(
                    DataflowErrorKind::Execution,
                    format!(
                        "input shape {} does not match network input {}",
                        img.shape(),
                        self.net.input_shape
                    ),
                ));
            }
        }
        if images.is_empty() {
            return Ok(Vec::new());
        }

        let n_pes = self.plan.pes.len();
        let out_shape = self
            .plan
            .pes
            .last()
            .expect("non-empty")
            .layers
            .last()
            .expect("PE has layers")
            .output;

        // One channel between consecutive stages: datamover → pe0 → … →
        // collector.
        let mut senders: Vec<Sender<f32>> = Vec::with_capacity(n_pes + 1);
        let mut receivers: Vec<Receiver<f32>> = Vec::with_capacity(n_pes + 1);
        for _ in 0..=n_pes {
            let (tx, rx) = bounded::<f32>(self.channel_depth);
            senders.push(tx);
            receivers.push(rx);
        }

        let batch = images.len();
        let mut result: Result<Vec<Tensor>, DataflowError> = Ok(Vec::new());

        std::thread::scope(|scope| {
            // Datamover: streams each image's elements in NCHW order.
            let dm_tx = senders.remove(0);
            let images_ref = images;
            scope.spawn(move || {
                for img in images_ref {
                    for &v in img.as_slice() {
                        if dm_tx.send(v).is_err() {
                            return; // downstream failed; unwind quietly
                        }
                    }
                }
                // Dropping dm_tx closes the stream.
            });

            // PEs: read one image worth of elements, apply fused layers,
            // stream the output.
            for pe in &self.plan.pes {
                let rx = receivers.remove(0);
                let tx = senders.remove(0);
                let net = self.net.as_ref();
                let in_shape = pe.layers.first().expect("PE has layers").input;
                scope.spawn(move || {
                    for _ in 0..batch {
                        let Some(input) = recv_tensor(&rx, in_shape) else {
                            return; // upstream closed early
                        };
                        let out = pe_forward(pe, net, &input);
                        for &v in out.as_slice() {
                            if tx.send(v).is_err() {
                                return;
                            }
                        }
                    }
                });
            }

            // Collector (this thread): assemble the batch outputs.
            let rx = receivers.remove(0);
            let mut outs = Vec::with_capacity(batch);
            for i in 0..batch {
                match recv_tensor(&rx, out_shape) {
                    Some(t) => outs.push(t),
                    None => {
                        result = Err(DataflowError::kinded(
                            DataflowErrorKind::Execution,
                            format!("pipeline terminated early at image {i}"),
                        ));
                        return;
                    }
                }
            }
            result = Ok(outs);
        });

        result
    }
}

/// Receives exactly one tensor's worth of elements, or `None` if the
/// channel closes first.
fn recv_tensor(rx: &Receiver<f32>, shape: Shape) -> Option<Tensor> {
    let mut data = Vec::with_capacity(shape.len());
    for _ in 0..shape.len() {
        data.push(rx.recv().ok()?);
    }
    Some(Tensor::from_vec(shape, data))
}

/// Applies a PE's fused layers to one input tensor, reusing the golden
/// arithmetic per operator (the PE hardware would compute the same values
/// through its filter chains; `crate::layersim` validates that
/// equivalence at the element level).
fn pe_forward(pe: &PePlan, net: &Network, input: &Tensor) -> Tensor {
    let mut current = input.clone();
    for layer in &pe.layers {
        // FC layers flatten their input implicitly.
        current = match layer.kind {
            LayerKind::Input => current,
            LayerKind::Convolution {
                num_output,
                kernel,
                stride,
                pad,
                bias,
            } => {
                let lw = net.weights_of(&layer.name).expect("fully weighted");
                golden::convolve(
                    &current,
                    &lw.weights,
                    lw.bias.as_ref(),
                    layer.output,
                    num_output,
                    kernel,
                    stride,
                    pad,
                    bias,
                )
            }
            LayerKind::Pooling {
                method,
                kernel,
                stride,
                pad,
            } => golden::pool(&current, layer.output, method, kernel, stride, pad),
            LayerKind::ReLU { negative_slope } => {
                let mut out = current.clone();
                out.map_inplace(|v| if v > 0.0 { v } else { negative_slope * v });
                out
            }
            LayerKind::Sigmoid => {
                let mut out = current.clone();
                out.map_inplace(|v| 1.0 / (1.0 + (-v).exp()));
                out
            }
            LayerKind::TanH => {
                let mut out = current.clone();
                out.map_inplace(f32::tanh);
                out
            }
            LayerKind::InnerProduct { bias, .. } => {
                let lw = net.weights_of(&layer.name).expect("fully weighted");
                golden::inner_product(&current, &lw.weights, lw.bias.as_ref(), layer.output, bias)
            }
            LayerKind::Softmax { log } => golden::softmax(&current, log),
        };
    }
    current
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::plan::{PeParallelism, PlanBuilder};
    use condor_nn::{dataset, zoo, GoldenEngine};
    use condor_tensor::AllClose;

    fn lenet_setup() -> (Network, AcceleratorPlan) {
        let net = zoo::lenet_weighted(21);
        let plan = PlanBuilder::new(&net).build().unwrap();
        (net, plan)
    }

    #[test]
    fn lenet_runtime_matches_golden_engine() {
        let (net, plan) = lenet_setup();
        let rt = ThreadedRuntime::new(&net, &plan).unwrap();
        let images: Vec<Tensor> = dataset::mnist_like(4, 5)
            .into_iter()
            .map(|s| s.image)
            .collect();
        let hw = rt.run_batch(&images).unwrap();
        let golden = GoldenEngine::new(&net)
            .unwrap()
            .infer_batch(&images)
            .unwrap();
        assert_eq!(hw.len(), 4);
        for (h, g) in hw.iter().zip(&golden) {
            assert!(h.all_close(g));
        }
    }

    #[test]
    fn tc1_runtime_matches_golden_engine() {
        let net = zoo::tc1_weighted(33);
        let plan = PlanBuilder::new(&net)
            .parallelism(PeParallelism {
                parallel_in: 1,
                parallel_out: 1,
                fc_simd: 2,
            })
            .build()
            .unwrap();
        let rt = ThreadedRuntime::new(&net, &plan).unwrap();
        let images: Vec<Tensor> = dataset::usps_like(6, 9)
            .into_iter()
            .map(|s| s.image)
            .collect();
        let hw = rt.run_batch(&images).unwrap();
        let golden = GoldenEngine::new(&net)
            .unwrap()
            .infer_batch(&images)
            .unwrap();
        for (h, g) in hw.iter().zip(&golden) {
            assert!(h.all_close(g));
        }
    }

    #[test]
    fn fused_plan_gives_same_answers_as_unfused() {
        let net = zoo::lenet_weighted(8);
        let unfused = PlanBuilder::new(&net).build().unwrap();
        let fused = PlanBuilder::new(&net).fusion(10).build().unwrap();
        assert!(fused.pes.len() < unfused.pes.len());
        let images: Vec<Tensor> = dataset::mnist_like(3, 2)
            .into_iter()
            .map(|s| s.image)
            .collect();
        let a = ThreadedRuntime::new(&net, &unfused)
            .unwrap()
            .run_batch(&images)
            .unwrap();
        let b = ThreadedRuntime::new(&net, &fused)
            .unwrap()
            .run_batch(&images)
            .unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!(x.all_close(y));
        }
    }

    #[test]
    fn tiny_channels_still_complete() {
        // Depth-1 channels maximise back-pressure but must not deadlock:
        // the pipeline is acyclic and every consumer drains its input.
        let net = zoo::tc1_weighted(3);
        let plan = PlanBuilder::new(&net).build().unwrap();
        let rt = ThreadedRuntime::new(&net, &plan)
            .unwrap()
            .with_channel_depth(1);
        let images: Vec<Tensor> = dataset::usps_like(2, 4)
            .into_iter()
            .map(|s| s.image)
            .collect();
        let out = rt.run_batch(&images).unwrap();
        let golden = GoldenEngine::new(&net)
            .unwrap()
            .infer_batch(&images)
            .unwrap();
        for (h, g) in out.iter().zip(&golden) {
            assert!(h.all_close(g));
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let (net, plan) = lenet_setup();
        let rt = ThreadedRuntime::new(&net, &plan).unwrap();
        assert!(rt.run_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let (net, plan) = lenet_setup();
        let rt = ThreadedRuntime::new(&net, &plan).unwrap();
        let bad = Tensor::zeros(Shape::chw(1, 16, 16));
        assert!(rt.run_batch(&[bad]).is_err());
    }

    #[test]
    fn unweighted_network_rejected() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        assert!(ThreadedRuntime::new(&net, &plan).is_err());
    }
}
