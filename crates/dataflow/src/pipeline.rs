//! Image-granularity pipeline timing model (paper Figure 5).
//!
//! "The PEs are arranged as a high-level pipeline where the output of a
//! PE is the input to the next one" — so while PE *k* processes image
//! *i*, PE *k−1* already works on image *i+1*. The paper observes that
//! "the mean time to process an image decreases as we increase the batch
//! size, until convergence is reached … approximately when the batch size
//! is bigger than the total number of layers of the network".
//!
//! This model reproduces that curve from the plan's per-stage cycle
//! counts with the classic pipeline recurrence generalised to a DAG of
//! stages, `finish[s][i] = max(max over preds p of finish[p][i],
//! finish[s][i−1]) + c_s`: the mean per-image time starts at the full
//! pipeline latency (batch 1) and converges to the initiation interval
//! (the slowest stage) as the batch grows. On fork/join plans the two
//! branches of a fork process the *same* image concurrently, so the
//! single-image latency is the critical path through the stage graph,
//! not the sum of all stages — while the initiation interval is still
//! set by the slowest stage alone.

use crate::plan::AcceleratorPlan;
use condor_faults::FaultHandle;

/// What timing faults did to one simulated run: fired events and the
/// cycles they injected, overall and per pipeline stage (stage 0 is the
/// datamover, stages 1… the PEs).
///
/// Deterministic per `(seed, plan)`: the DES advances single-threaded
/// and every perturbation is resolved by hashing `(seed, site, call)`,
/// so two runs — on any machine, under any thread count — report
/// identical perturbed cycle counts. Functional outputs are never
/// touched: timing faults stretch the clock, not the data.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimingFaultReport {
    /// Number of timing faults that fired.
    pub events: u64,
    /// Total extra cycles injected across all stages.
    pub extra_cycles: u64,
    /// Extra cycles injected per stage.
    pub per_stage_extra: Vec<u64>,
}

impl TimingFaultReport {
    /// True when no timing fault fired (the run was unperturbed).
    pub fn is_clean(&self) -> bool {
        self.events == 0
    }
}

/// Timing of one batched run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchTiming {
    /// Batch size.
    pub batch: usize,
    /// Cycles from first input to last output.
    pub total_cycles: u64,
    /// Mean cycles per image (`total / batch`).
    pub mean_cycles_per_image: f64,
    /// Mean time per image in microseconds at the plan clock.
    pub mean_us_per_image: f64,
    /// Sustained throughput in images per second.
    pub images_per_second: f64,
}

/// Pipeline timing model of an accelerator plan.
///
/// ```
/// use condor_dataflow::PipelineModel;
///
/// // Three stages at 100 MHz; the slowest (30 cycles) bounds throughput.
/// let m = PipelineModel::from_stage_cycles(vec![10, 30, 20], 100.0);
/// assert_eq!(m.batch(1).total_cycles, 60);            // full latency
/// assert_eq!(m.batch(100).total_cycles, 60 + 99 * 30); // latency + (B-1)·II
/// assert!(m.batch(100).mean_cycles_per_image < m.batch(1).mean_cycles_per_image);
/// ```
#[derive(Clone, Debug)]
pub struct PipelineModel {
    stage_cycles: Vec<u64>,
    /// Predecessor stages per stage. Stage 0 (the datamover) has none;
    /// a PE stage lists the stages whose output frames it consumes.
    /// Linear plans reduce to `[[], [0], [1], …]`.
    stage_inputs: Vec<Vec<usize>>,
    freq_mhz: f64,
}

impl PipelineModel {
    /// Builds the model from a plan: stage 0 is the datamover, stages
    /// 1… are the PEs (fill latencies folded into each PE's per-image
    /// cost).
    pub fn from_plan(plan: &AcceleratorPlan) -> Self {
        let mut stage_cycles = Vec::with_capacity(plan.pes.len() + 1);
        let mut stage_inputs = Vec::with_capacity(plan.pes.len() + 1);
        stage_cycles.push(plan.datamover_cycles_per_image().max(1));
        stage_inputs.push(Vec::new());
        for pe in &plan.pes {
            stage_cycles.push(pe.cycles_per_image() + pe.fill_latency());
            // PE indices shift by one: stage 0 is the datamover, which
            // also feeds any PE with no upstream PE.
            stage_inputs.push(if pe.inputs.is_empty() {
                vec![0]
            } else {
                pe.inputs.iter().map(|&i| i + 1).collect()
            });
        }
        PipelineModel {
            stage_cycles,
            stage_inputs,
            freq_mhz: plan.freq_mhz,
        }
    }

    /// Builds a linear model from raw stage cycles (for tests and
    /// ablations): stage `s` feeds stage `s + 1`.
    pub fn from_stage_cycles(stage_cycles: Vec<u64>, freq_mhz: f64) -> Self {
        let inputs = (0..stage_cycles.len())
            .map(|s| if s == 0 { Vec::new() } else { vec![s - 1] })
            .collect();
        Self::from_stage_graph(stage_cycles, inputs, freq_mhz)
    }

    /// Builds a model over an explicit stage graph (for tests and
    /// ablations): `stage_inputs[s]` lists the stages whose output
    /// stage `s` consumes; every predecessor must come earlier.
    pub fn from_stage_graph(
        stage_cycles: Vec<u64>,
        stage_inputs: Vec<Vec<usize>>,
        freq_mhz: f64,
    ) -> Self {
        assert!(!stage_cycles.is_empty(), "pipeline needs stages");
        assert_eq!(
            stage_cycles.len(),
            stage_inputs.len(),
            "one predecessor list per stage"
        );
        assert!(freq_mhz > 0.0, "clock must be positive");
        for (s, preds) in stage_inputs.iter().enumerate() {
            assert!(
                preds.iter().all(|&p| p < s),
                "stage {s} must only read earlier stages"
            );
        }
        PipelineModel {
            stage_cycles,
            stage_inputs,
            freq_mhz,
        }
    }

    /// Number of pipeline stages.
    pub fn stages(&self) -> usize {
        self.stage_cycles.len()
    }

    /// The steady-state initiation interval: the slowest stage.
    pub fn initiation_interval(&self) -> u64 {
        *self.stage_cycles.iter().max().expect("non-empty")
    }

    /// Single-image latency: the critical path through the stage graph
    /// (the plain sum of all stages on a linear pipeline).
    pub fn latency(&self) -> u64 {
        let mut done = Vec::with_capacity(self.stages());
        for (s, &c) in self.stage_cycles.iter().enumerate() {
            let upstream = self.stage_inputs[s]
                .iter()
                .map(|&p| done[p])
                .max()
                .unwrap_or(0);
            done.push(upstream + c);
        }
        done.into_iter().max().unwrap_or(0)
    }

    /// Simulates a batch through the pipeline.
    pub fn batch(&self, batch: usize) -> BatchTiming {
        self.batch_with_faults(batch, &FaultHandle::disabled()).0
    }

    /// Simulates a batch with timing-fault injection: per image and
    /// stage the handle is consulted at `dataflow.datamover` (stage 0)
    /// or `dataflow.pe{i}` (stage i+1), and any fired perturbation —
    /// slowdown, stall window, jitter — stretches that stage's cost for
    /// that image. Perturbations delay, they never drop: a plan whose
    /// FIFO sizing passed `condor check` cannot be deadlocked by them,
    /// because the recurrence always advances.
    pub fn batch_with_faults(
        &self,
        batch: usize,
        faults: &FaultHandle,
    ) -> (BatchTiming, TimingFaultReport) {
        assert!(batch >= 1, "batch must be at least 1");
        let sites: Vec<String> = (0..self.stages())
            .map(|s| {
                if s == 0 {
                    "dataflow.datamover".to_string()
                } else {
                    format!("dataflow.pe{}", s - 1)
                }
            })
            .collect();
        let mut report = TimingFaultReport {
            events: 0,
            extra_cycles: 0,
            per_stage_extra: vec![0; self.stages()],
        };
        // finish[s] holds the finish time of the previous image at stage
        // s while sweeping images; done[s] the current image's finish,
        // so a join can wait on every upstream branch of *this* image.
        let mut finish = vec![0u64; self.stages()];
        let mut done = vec![0u64; self.stages()];
        let active = faults.is_active();
        for _img in 0..batch {
            for (s, &c) in self.stage_cycles.iter().enumerate() {
                let mut cost = c;
                if active {
                    if let Some(p) = faults.timing(&sites[s]) {
                        let extra = p.extra_cycles(c);
                        cost += extra;
                        report.events += 1;
                        report.extra_cycles += extra;
                        report.per_stage_extra[s] += extra;
                    }
                }
                let upstream = self.stage_inputs[s]
                    .iter()
                    .map(|&p| done[p])
                    .max()
                    .unwrap_or(0);
                let start = upstream.max(finish[s]);
                done[s] = start + cost;
                finish[s] = done[s];
            }
        }
        let total_cycles = finish.into_iter().max().expect("non-empty");
        let mean_cycles = total_cycles as f64 / batch as f64;
        let cycle_us = 1.0 / self.freq_mhz; // µs per cycle = 1/MHz
        let timing = BatchTiming {
            batch,
            total_cycles,
            mean_cycles_per_image: mean_cycles,
            mean_us_per_image: mean_cycles * cycle_us,
            images_per_second: 1e6 / (mean_cycles * cycle_us),
        };
        (timing, report)
    }

    /// The Figure 5 sweep: mean time per image across batch sizes.
    pub fn batch_sweep(&self, batches: &[usize]) -> Vec<BatchTiming> {
        batches.iter().map(|&b| self.batch(b)).collect()
    }

    /// Sustained GFLOPS at a given batch size for a network performing
    /// `flops_per_image` floating-point operations per image.
    pub fn gflops(&self, flops_per_image: u64, batch: usize) -> f64 {
        let t = self.batch(batch);
        flops_per_image as f64 * t.images_per_second / 1e9
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::plan::PlanBuilder;
    use condor_nn::zoo;

    #[test]
    fn batch_one_pays_full_latency() {
        let m = PipelineModel::from_stage_cycles(vec![10, 30, 20], 100.0);
        let t = m.batch(1);
        assert_eq!(t.total_cycles, 60);
        assert_eq!(m.latency(), 60);
    }

    #[test]
    fn steady_state_converges_to_initiation_interval() {
        let m = PipelineModel::from_stage_cycles(vec![10, 30, 20], 100.0);
        assert_eq!(m.initiation_interval(), 30);
        // total(B) = latency + (B−1)·II for a simple linear pipeline.
        let t = m.batch(100);
        assert_eq!(t.total_cycles, 60 + 99 * 30);
        assert!((t.mean_cycles_per_image - 30.0).abs() < 1.0);
    }

    #[test]
    fn fork_join_latency_is_critical_path_not_sum() {
        // Diamond: dm → a, then b and c both read a, join d reads both.
        let m = PipelineModel::from_stage_graph(
            vec![10, 5, 30, 20, 7],
            vec![vec![], vec![0], vec![1], vec![1], vec![2, 3]],
            100.0,
        );
        // The same image runs both branches concurrently: only the
        // slower one (30) appears on the critical path.
        assert_eq!(m.latency(), 10 + 5 + 30 + 7);
        assert_eq!(m.batch(1).total_cycles, 52);
        // Steady state is still bounded by the slowest single stage.
        assert_eq!(m.initiation_interval(), 30);
        assert_eq!(m.batch(100).total_cycles, 52 + 99 * 30);
    }

    #[test]
    fn resnet_plan_des_matches_plan_latency() {
        for net in [zoo::lenet(), zoo::resnet_block()] {
            let plan = PlanBuilder::new(&net).build().unwrap();
            let m = PipelineModel::from_plan(&plan);
            assert_eq!(
                m.batch(1).total_cycles,
                plan.image_latency(),
                "{}: batch-1 DES must agree with the plan's path latency",
                net.name
            );
            // And batching may only help the mean.
            let sweep = m.batch_sweep(&[1, 4, 16, 64]);
            for pair in sweep.windows(2) {
                assert!(pair[1].mean_cycles_per_image <= pair[0].mean_cycles_per_image);
            }
        }
    }

    #[test]
    fn mean_time_is_monotone_decreasing_in_batch() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let m = PipelineModel::from_plan(&plan);
        let sweep = m.batch_sweep(&[1, 2, 4, 8, 16, 32, 64]);
        for pair in sweep.windows(2) {
            assert!(
                pair[1].mean_cycles_per_image <= pair[0].mean_cycles_per_image,
                "mean time must not increase with batch size"
            );
        }
    }

    #[test]
    fn convergence_knee_near_layer_count() {
        // The paper: "convergence is reached approximately when the batch
        // size is bigger than the total number of layers". TC1 has
        // balanced stages, making the knee visible.
        let net = zoo::tc1();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let m = PipelineModel::from_plan(&plan);
        let ii = m.initiation_interval() as f64;
        let layers = net.compute_layer_count();
        let at_knee = m.batch(2 * layers).mean_cycles_per_image;
        // Within 15 % of the asymptote shortly after the knee.
        assert!(at_knee <= ii * 1.15, "at_knee {at_knee} vs ii {ii}");
        // And far from converged at batch 1.
        let at_one = m.batch(1).mean_cycles_per_image;
        assert!(at_one > ii * 1.3, "at_one {at_one} vs ii {ii}");
    }

    #[test]
    fn microseconds_scale_with_clock() {
        let fast = PipelineModel::from_stage_cycles(vec![100], 200.0);
        let slow = PipelineModel::from_stage_cycles(vec![100], 100.0);
        assert!(
            (fast.batch(1).mean_us_per_image * 2.0 - slow.batch(1).mean_us_per_image).abs() < 1e-9
        );
        // 100 cycles at 100 MHz = 1 µs.
        assert!((slow.batch(1).mean_us_per_image - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gflops_accounting() {
        // 1000 FLOPs/image, 100 cycles/image at 100 MHz → 1 µs/image →
        // 1e6 img/s → 1 GFLOPS.
        let m = PipelineModel::from_stage_cycles(vec![100], 100.0);
        assert!((m.gflops(1000, 16) - 1.0).abs() < 0.05);
    }

    #[test]
    fn from_plan_includes_datamover_stage() {
        let net = zoo::tc1();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let m = PipelineModel::from_plan(&plan);
        assert_eq!(m.stages(), plan.pes.len() + 1);
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_rejected() {
        PipelineModel::from_stage_cycles(vec![1], 100.0).batch(0);
    }
}
