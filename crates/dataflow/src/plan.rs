//! Accelerator architecture description ("plan") and its cycle model.
//!
//! A [`PePlan`] records which logical network layers map onto one
//! hardware PE (the paper's layer fusion: "our methodology includes the
//! possibility to map multiple logical layers onto a single PE, so long
//! as they implement a similar computation") and the PE's parallelism
//! ("we can choose to implement a layer … as a single-input/single-output
//! port PE … or increase the level of parallelism reading and processing
//! multiple feature maps at once").
//!
//! The closed-form cycle model here is the contract between the
//! element-level simulation (which validates it), the pipeline timing
//! model (which consumes it for Figure 5) and the design-space
//! exploration in the core crate.

use condor_nn::{LayerKind, Network, NnError, NnErrorKind, NodeId, Stage};
use condor_tensor::Shape;
use std::fmt;

/// Machine-readable classification of a [`DataflowError`]. Mapped onto
/// stable diagnostic codes by `condor-check`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataflowErrorKind {
    /// Invalid mapping directives (zero parallelism, unknown layers).
    Plan,
    /// A propagated network error (see the wrapped [`NnErrorKind`]).
    Nn(NnErrorKind),
    /// Runtime misuse: unweighted network, wrong input shape, a worker
    /// aborting mid-batch.
    Execution,
    /// Element-level layer simulation got inconsistent inputs.
    Simulation,
}

/// Error raised while building or validating an accelerator plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataflowError {
    /// Machine-readable failure class.
    pub kind: DataflowErrorKind,
    /// Human-readable description.
    pub message: String,
    /// True when the failure is transient — an injected fault truncated
    /// the stream and re-running the batch may succeed. Plan/shape
    /// validation errors are never transient.
    pub transient: bool,
}

impl DataflowError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        DataflowError {
            kind: DataflowErrorKind::Plan,
            message: message.into(),
            transient: false,
        }
    }

    pub(crate) fn kinded(kind: DataflowErrorKind, message: impl Into<String>) -> Self {
        DataflowError {
            kind,
            message: message.into(),
            transient: false,
        }
    }

    pub(crate) fn mark_transient(mut self) -> Self {
        self.transient = true;
        self
    }
}

impl condor_faults::retry::Retryable for DataflowError {
    fn is_transient(&self) -> bool {
        self.transient
    }
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dataflow plan error: {}", self.message)
    }
}

impl std::error::Error for DataflowError {}

impl From<NnError> for DataflowError {
    fn from(e: NnError) -> Self {
        DataflowError::kinded(DataflowErrorKind::Nn(e.kind), e.to_string())
    }
}

/// Arithmetic precision of a PE's datapath.
///
/// The paper's flow synthesizes single-precision floating-point PEs;
/// narrowing a PE to INT8 (the scheme `condor-kernels`' quantized path
/// models in software) changes its resource profile: one DSP48E2 packs
/// two int8 MACs, and weight/stream buffers shrink to one byte per word
/// while bias and partial-sum buffers keep their 32-bit accumulators.
/// The DSE can therefore trade precision against the DSP budget per
/// layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// Single-precision floating point (the paper's baseline).
    #[default]
    F32,
    /// Symmetric 8-bit integers with 32-bit accumulation.
    Int8,
}

impl Precision {
    /// Bytes of one weight or activation word on streams and in
    /// weight buffers (accumulators always stay 4 bytes).
    pub fn bytes_per_word(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::Int8 => 1,
        }
    }

    /// Stable lower-case name (`"f32"` / `"int8"`), used by the plan
    /// serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        }
    }

    /// Parses the name produced by [`Precision::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(Precision::F32),
            "int8" => Some(Precision::Int8),
            _ => None,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Feature-map parallelism of a PE (paper Section 3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeParallelism {
    /// Input feature maps read concurrently (one filter pipeline each).
    pub parallel_in: usize,
    /// Output feature maps computed concurrently.
    pub parallel_out: usize,
    /// MACs per cycle of a fully-connected PE (vector width of its
    /// single-input/single-output stream).
    pub fc_simd: usize,
}

impl Default for PeParallelism {
    fn default() -> Self {
        // "single-input/single-output port PE, where input feature maps
        // are read sequentially and output feature maps are equally
        // serially computed".
        PeParallelism {
            parallel_in: 1,
            parallel_out: 1,
            fc_simd: 1,
        }
    }
}

/// One logical network layer as mapped into a PE.
#[derive(Clone, Debug, PartialEq)]
pub struct PlannedLayer {
    /// Stable identity of the layer's node in the source network graph.
    pub node: NodeId,
    /// Index into the source network's layer list.
    // Re-dated from the aspirational "0.6.0": `since` must name a
    // shipped release for the expiry audit (X031/X032) to be
    // meaningful. The field is removed in the release after 0.1.0.
    #[deprecated(since = "0.1.0", note = "use `node` (a stable `NodeId`) instead")]
    pub index: usize,
    /// Layer name.
    pub name: String,
    /// Operator snapshot.
    pub kind: LayerKind,
    /// Single-item input shape.
    pub input: Shape,
    /// Single-item output shape.
    pub output: Shape,
}

impl PlannedLayer {
    /// Square window extent the layer slides over its input (kernel for
    /// conv/pool, 1 for everything else — the paper implements FC as a
    /// 1×1 convolution).
    pub fn window(&self) -> usize {
        match self.kind {
            LayerKind::Convolution { kernel, .. } | LayerKind::Pooling { kernel, .. } => kernel,
            _ => 1,
        }
    }

    /// True for layers whose memory subsystem is a filter chain
    /// (feature-extraction sliding windows).
    pub fn needs_filter_chain(&self) -> bool {
        self.window() > 1
    }
}

/// One hardware PE with its fused layers and memory subsystem summary.
#[derive(Clone, Debug, PartialEq)]
pub struct PePlan {
    /// PE instance name (`pe0`, `pe1`, …).
    pub name: String,
    /// The consecutive logical layers this PE implements. Activation
    /// layers fuse into the preceding weighted/pooling layer at zero
    /// cycle cost, as the accelerator applies them on the output stream.
    pub layers: Vec<PlannedLayer>,
    /// Stage the PE belongs to.
    pub stage: Stage,
    /// Indices of the PEs whose output streams feed this PE (distinct,
    /// in first-use order over its layers' graph inputs). Empty means
    /// the PE is fed by the datamover (it reads the network input or an
    /// `Input` node). Linear chains get `[previous PE]` everywhere
    /// except the first PE; fork/join topologies carry the real graph
    /// edges, which the DES and the threaded runtime wire up.
    pub inputs: Vec<usize>,
    /// Feature-map parallelism.
    pub parallelism: PeParallelism,
    /// Datapath precision (f32 by default; int8 halves the DSP cost per
    /// MAC and narrows weight/stream buffers).
    pub precision: Precision,
    /// Explicit FIFO depths between consecutive filters, overriding the
    /// spatial-distance rule. `PlanBuilder` always leaves this `None`
    /// (the rule is exact); hand-tuned or mutated plans may set it, and
    /// `condor-check` statically verifies it against the rule.
    pub fifo_depth_override: Option<Vec<usize>>,
}

impl PePlan {
    /// The largest sliding-window extent among fused layers — the paper:
    /// "When multiple layers are fused together, the memory pipeline is
    /// created considering the layer with the biggest window size".
    pub fn max_window(&self) -> usize {
        self.layers
            .iter()
            .map(PlannedLayer::window)
            .max()
            .unwrap_or(1)
    }

    /// The widest input row among fused layers — "The FIFOs size is
    /// instead determined considering the layer with the greatest input
    /// feature maps size".
    pub fn max_input_width(&self) -> usize {
        self.layers.iter().map(|l| l.input.w).max().unwrap_or(1)
    }

    /// Number of filter processes per parallel input map: one per point
    /// of the sliding window (`K²` accesses).
    pub fn filters_per_pipeline(&self) -> usize {
        let k = self.max_window();
        k * k
    }

    /// FIFO depths between consecutive filters of one pipeline, in
    /// filter order, sized by the paper's rule: "their size is equal to
    /// the spatial distance between the two accesses that the filters at
    /// each end of the FIFO represent". For a K×K window on a W-wide
    /// image that distance is 1 within a row and `W − K + 1` across row
    /// boundaries.
    pub fn fifo_depths(&self) -> Vec<usize> {
        if let Some(depths) = &self.fifo_depth_override {
            return depths.clone();
        }
        self.required_fifo_depths()
    }

    /// FIFO depths mandated by the spatial-distance rule, ignoring any
    /// [`PePlan::fifo_depth_override`] — the reference `condor-check`
    /// verifies declared depths against.
    pub fn required_fifo_depths(&self) -> Vec<usize> {
        let k = self.max_window();
        let w = self.max_input_width();
        let mut depths = Vec::with_capacity(k * k - 1);
        for tap in 1..(k * k) {
            let crosses_row = tap % k == 0;
            depths.push(if crosses_row { w - k + 1 } else { 1 });
        }
        depths
    }

    /// Total elements buffered on chip per pipeline — "only the elements
    /// that are spatially located in between the first and the last
    /// access are buffered on-chip": `(K−1)·W + K` for a K×K window.
    pub fn onchip_window_elems(&self) -> usize {
        let k = self.max_window();
        if k <= 1 {
            return 0;
        }
        (k - 1) * self.max_input_width() + k
    }

    /// Cycles this PE needs per image — the shared cycle model.
    ///
    /// * convolution: `max(⌈F/P_out⌉·⌈C/P_in⌉·H_out·W_out,
    ///   ⌈C/P_in⌉·H_pad·W_pad)`. The first term is compute: the filter
    ///   chain presents a full window and the PE spends one cycle per
    ///   output-map group per window (the `K²` MACs are spatially
    ///   unrolled). The second is the stream bound: each input map group
    ///   enters at one element per port per cycle;
    /// * pooling: `⌈C/P_in⌉ · H_pad · W_pad` — one comparison window per
    ///   output, but the input stream dominates;
    /// * fully-connected: `⌈(C_in · F) / fc_simd⌉` (a 1×1 convolution on
    ///   a single-input/single-output PE);
    /// * activations / softmax: fused, zero additional cycles except a
    ///   `C`-cycle drain for softmax.
    ///
    /// Fused layers execute back-to-back within the PE ("an additional
    /// outer loop that iterates through the implemented layers"), so
    /// their cycle counts add. The element-level simulation in
    /// [`crate::layersim`] validates these formulas.
    pub fn cycles_per_image(&self) -> u64 {
        let p = &self.parallelism;
        self.layers
            .iter()
            .map(|l| match l.kind {
                LayerKind::Convolution {
                    num_output, pad, ..
                } => {
                    let f_groups = num_output.div_ceil(p.parallel_out) as u64;
                    let c_groups = l.input.c.div_ceil(p.parallel_in) as u64;
                    let compute = f_groups * c_groups * (l.output.h * l.output.w) as u64;
                    let stream = c_groups * ((l.input.h + 2 * pad) * (l.input.w + 2 * pad)) as u64;
                    compute.max(stream)
                }
                LayerKind::Pooling { pad, .. } => {
                    let c_groups = l.input.c.div_ceil(p.parallel_in) as u64;
                    c_groups * ((l.input.h + 2 * pad) * (l.input.w + 2 * pad)) as u64
                }
                LayerKind::InnerProduct { num_output, .. } => {
                    ((l.input.item_len() * num_output) as u64).div_ceil(p.fc_simd as u64)
                }
                LayerKind::Softmax { .. } => l.input.c as u64,
                LayerKind::ReLU { .. } | LayerKind::Sigmoid | LayerKind::TanH => 0,
                LayerKind::Input => 0,
                // Merges are pure stream plumbing: one output element per
                // cycle while the joined branch streams drain in lockstep.
                LayerKind::Concat | LayerKind::Eltwise { .. } => l.output.item_len() as u64,
            })
            .sum()
    }

    /// Pipeline fill latency of the PE's memory subsystem: the filter
    /// chain must buffer `(K−1)·W + K` elements before the first window
    /// is complete.
    pub fn fill_latency(&self) -> u64 {
        self.onchip_window_elems() as u64
    }
}

/// The whole accelerator: an ordered pipeline of PEs plus the datamover.
#[derive(Clone, Debug, PartialEq)]
pub struct AcceleratorPlan {
    /// Source network name.
    pub network: String,
    /// Target board name (resolved against the `condor-fpga` catalog by
    /// the framework).
    pub board: String,
    /// Requested clock in MHz (from the network representation).
    pub freq_mhz: f64,
    /// PEs in pipeline order.
    pub pes: Vec<PePlan>,
    /// Words per cycle the datamover moves between on-board memory and
    /// the accelerator streams.
    pub datamover_words_per_cycle: usize,
    /// Words the datamover must stream in per image (input feature maps,
    /// re-read once per output-map group for every conv PE that requests
    /// them — see `PlanBuilder`).
    pub input_words_per_image: u64,
}

impl AcceleratorPlan {
    /// Cycles the datamover needs per image.
    pub fn datamover_cycles_per_image(&self) -> u64 {
        self.input_words_per_image
            .div_ceil(self.datamover_words_per_cycle as u64)
    }

    /// Initiation interval of the accelerator: the slowest stage bounds
    /// steady-state throughput.
    pub fn initiation_interval(&self) -> u64 {
        self.pes
            .iter()
            .map(PePlan::cycles_per_image)
            .chain([self.datamover_cycles_per_image()])
            .max()
            .unwrap_or(0)
    }

    /// Single-image latency: the critical path through the PE graph
    /// (datamover plus the slowest chain of dependent stages, fills
    /// included). For a linear pipeline every PE is on the one path, so
    /// this is the historical sum of all stage cycles; fork/join plans
    /// only pay the slower branch.
    pub fn image_latency(&self) -> u64 {
        let dm = self.datamover_cycles_per_image();
        let mut done: Vec<u64> = Vec::with_capacity(self.pes.len());
        for pe in &self.pes {
            let upstream = pe.inputs.iter().map(|&i| done[i]).fold(dm, u64::max);
            done.push(upstream + pe.cycles_per_image() + pe.fill_latency());
        }
        done.into_iter().max().unwrap_or(dm)
    }

    /// Number of pipeline stages (datamover + PEs).
    pub fn stage_count(&self) -> usize {
        self.pes.len() + 1
    }

    /// The bottleneck stage: `(name, cycles_per_image)` of the slowest
    /// pipeline stage — what the DSE must attack to raise throughput.
    pub fn bottleneck(&self) -> (String, u64) {
        let mut best = ("datamover".to_string(), self.datamover_cycles_per_image());
        for pe in &self.pes {
            let cycles = pe.cycles_per_image();
            if cycles > best.1 {
                let layers = pe
                    .layers
                    .iter()
                    .map(|l| l.name.as_str())
                    .collect::<Vec<_>>()
                    .join("+");
                best = (format!("{} ({layers})", pe.name), cycles);
            }
        }
        best
    }
}

/// Builds an [`AcceleratorPlan`] from a network and mapping directives.
pub struct PlanBuilder<'a> {
    net: &'a Network,
    board: String,
    freq_mhz: f64,
    /// Fusion factor: how many *computational* layers share one PE
    /// within a stage (1 = full spatial unfold, the paper's 1:1 mapping).
    fusion: usize,
    parallelism: PeParallelism,
    /// Per-layer parallelism overrides — the paper's network
    /// representation carries the "desired level of parallelism of each
    /// layer". Keyed by layer name; applies to the PE hosting the layer.
    layer_overrides: std::collections::BTreeMap<String, PeParallelism>,
    precision: Precision,
    /// Per-layer precision overrides, mirroring the parallelism ones.
    layer_precisions: std::collections::BTreeMap<String, Precision>,
    datamover_words_per_cycle: usize,
}

impl<'a> PlanBuilder<'a> {
    /// Starts a builder with the paper's defaults: full spatial unfold,
    /// single-input/single-output PEs, a 16-word datamover.
    pub fn new(net: &'a Network) -> Self {
        PlanBuilder {
            net,
            board: "aws-f1".to_string(),
            freq_mhz: 100.0,
            fusion: 1,
            parallelism: PeParallelism::default(),
            layer_overrides: std::collections::BTreeMap::new(),
            precision: Precision::default(),
            layer_precisions: std::collections::BTreeMap::new(),
            datamover_words_per_cycle: 16,
        }
    }

    /// Sets the target board name.
    pub fn board(mut self, board: impl Into<String>) -> Self {
        self.board = board.into();
        self
    }

    /// Sets the requested clock.
    pub fn freq_mhz(mut self, f: f64) -> Self {
        self.freq_mhz = f;
        self
    }

    /// Sets how many computational layers fuse into each PE.
    pub fn fusion(mut self, k: usize) -> Self {
        self.fusion = k.max(1);
        self
    }

    /// Sets the feature-map parallelism applied to every PE.
    pub fn parallelism(mut self, p: PeParallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Overrides the parallelism of the PE hosting `layer` (the paper's
    /// per-layer "desired level of parallelism"). When fused layers
    /// carry conflicting overrides, the first override in layer order
    /// wins.
    pub fn layer_parallelism(mut self, layer: impl Into<String>, p: PeParallelism) -> Self {
        self.layer_overrides.insert(layer.into(), p);
        self
    }

    /// Sets the datapath precision applied to every PE.
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }

    /// Overrides the precision of the PE hosting `layer`. When fused
    /// layers carry conflicting overrides, the first override in layer
    /// order wins (as with [`PlanBuilder::layer_parallelism`]).
    pub fn layer_precision(mut self, layer: impl Into<String>, p: Precision) -> Self {
        self.layer_precisions.insert(layer.into(), p);
        self
    }

    /// Sets the datamover stream width in 32-bit words per cycle.
    pub fn datamover_words_per_cycle(mut self, w: usize) -> Self {
        self.datamover_words_per_cycle = w.max(1);
        self
    }

    /// Builds and validates the plan.
    ///
    /// Grouping rules follow the paper: activation layers fuse into the
    /// PE of the layer that produces their input; fusion clusters only
    /// layers of the same stage ("we cluster together in a single PE
    /// either layers from the features extraction part or
    /// fully-connected layers").
    pub fn build(self) -> Result<AcceleratorPlan, DataflowError> {
        if self.parallelism.parallel_in == 0
            || self.parallelism.parallel_out == 0
            || self.parallelism.fc_simd == 0
        {
            return Err(DataflowError::new("parallelism degrees must be positive"));
        }
        for (name, p) in &self.layer_overrides {
            if !self.net.layers.iter().any(|l| &l.name == name) {
                return Err(DataflowError::new(format!(
                    "parallelism override references unknown layer '{name}'"
                )));
            }
            if p.parallel_in == 0 || p.parallel_out == 0 || p.fc_simd == 0 {
                return Err(DataflowError::new(format!(
                    "parallelism override for '{name}' must be positive"
                )));
            }
        }
        for name in self.layer_precisions.keys() {
            if !self.net.layers.iter().any(|l| &l.name == name) {
                return Err(DataflowError::new(format!(
                    "precision override references unknown layer '{name}'"
                )));
            }
        }
        let ins = self.net.input_shapes()?;
        let outs = self.net.output_shapes()?;
        let stages = self.net.stages();

        // Collect the "anchor" layers (those that own a PE slot) and the
        // trailing operators fused onto them. On a graph, an activation
        // rides along only when it is the sole consumer of the group's
        // last layer — an activation whose input also feeds a skip edge
        // must keep its own stream. On a linear chain the condition
        // always holds, reproducing the historical grouping exactly.
        let mut groups: Vec<(Stage, Vec<PlannedLayer>)> = Vec::new();
        for (i, layer) in self.net.layers.iter().enumerate() {
            let id = NodeId::from_index(i);
            #[allow(deprecated)] // populate the `index` shim for one release
            let planned = PlannedLayer {
                node: id,
                index: i,
                name: layer.name.clone(),
                kind: layer.kind.clone(),
                input: ins[i],
                output: outs[i],
            };
            match layer.kind {
                LayerKind::Input => continue,
                LayerKind::ReLU { .. }
                | LayerKind::Sigmoid
                | LayerKind::TanH
                | LayerKind::Softmax { .. } => {
                    let preds = self.net.inputs_of(id);
                    let fusable = match (preds.as_slice(), groups.last()) {
                        ([p], Some((_, layers))) => {
                            layers.last().map(|l| l.node) == Some(*p)
                                && self.net.consumers_of(*p) == [id]
                        }
                        _ => false,
                    };
                    match groups.last_mut() {
                        Some((_, layers)) if fusable => layers.push(planned),
                        _ => groups.push((stages[i], vec![planned])),
                    }
                }
                _ => groups.push((stages[i], vec![planned])),
            }
        }
        if groups.is_empty() {
            return Err(DataflowError::new("network has no mappable layers"));
        }

        // Apply the fusion factor: consecutive groups share a PE only
        // within one stage AND along a purely linear segment — the next
        // group's first layer must be the sole consumer of the current
        // cluster's last layer. Merge nodes (fan-in > 1) therefore start
        // a fresh PE and branch points (fan-out > 1) end one, keeping
        // every fork/join boundary visible to the DES and the runtime.
        let mut pes: Vec<PePlan> = Vec::new();
        let mut current: Option<(Stage, Vec<PlannedLayer>, usize)> = None;
        for (stage, layers) in groups {
            let linear_link = match (&current, layers.first()) {
                (Some((_, cur_layers, _)), Some(first)) => {
                    let last = cur_layers.last().expect("cluster has layers");
                    self.net.inputs_of(first.node) == [last.node]
                        && self.net.consumers_of(last.node) == [first.node]
                }
                _ => false,
            };
            match current.as_mut() {
                Some((cur_stage, cur_layers, anchors))
                    if *cur_stage == stage && *anchors < self.fusion && linear_link =>
                {
                    cur_layers.extend(layers);
                    *anchors += 1;
                }
                _ => {
                    if let Some((stage, layers, _)) = current.take() {
                        pes.push(self.make_pe(pes.len(), stage, layers));
                    }
                    current = Some((stage, layers, 1));
                }
            }
        }
        if let Some((stage, layers, _)) = current.take() {
            pes.push(self.make_pe(pes.len(), stage, layers));
        }

        // Wire the PE-level dataflow edges off the network graph: PE j
        // feeds PE i when any layer of i reads a node mapped into j.
        // Nodes outside every PE (`Input` nodes, the network input) are
        // the datamover's job and contribute no edge.
        let mut pe_of_node = vec![usize::MAX; self.net.node_count()];
        for (pi, pe) in pes.iter().enumerate() {
            for l in &pe.layers {
                pe_of_node[l.node.index()] = pi;
            }
        }
        let inputs_list: Vec<Vec<usize>> = pes
            .iter()
            .enumerate()
            .map(|(pi, pe)| {
                let mut ins_pe: Vec<usize> = Vec::new();
                for l in &pe.layers {
                    for p in self.net.inputs_of(l.node) {
                        let src = pe_of_node[p.index()];
                        if src != usize::MAX && src != pi && !ins_pe.contains(&src) {
                            ins_pe.push(src);
                        }
                    }
                }
                ins_pe
            })
            .collect();
        for (pe, ins_pe) in pes.iter_mut().zip(inputs_list) {
            pe.inputs = ins_pe;
        }

        // Clamp parallelism per PE to the feature-map counts it can use:
        // a layer with C input maps cannot read more than C in parallel
        // (the DSE sweeps global degrees; layers saturate individually).
        for pe in &mut pes {
            let max_in = pe
                .layers
                .iter()
                .map(|l| l.input.c)
                .max()
                .unwrap_or(1)
                .max(1);
            let max_out = pe
                .layers
                .iter()
                .filter_map(|l| match l.kind {
                    LayerKind::Convolution { num_output, .. } => Some(num_output),
                    _ => None,
                })
                .max()
                .unwrap_or(1)
                .max(1);
            pe.parallelism.parallel_in = pe.parallelism.parallel_in.min(max_in);
            pe.parallelism.parallel_out = pe.parallelism.parallel_out.min(max_out);
        }

        // Input stream volume per image: the raw input feature maps.
        // Convolutional PEs with sequential output maps re-request their
        // input once per output-map group; the datamover therefore
        // streams layer-0 input once and inter-PE traffic stays on-chip,
        // while weights stream in parallel on a dedicated port (modelled
        // as non-blocking at steady state).
        let input_words = self.net.input_shape.item_len() as u64;

        Ok(AcceleratorPlan {
            network: self.net.name.clone(),
            board: self.board,
            freq_mhz: self.freq_mhz,
            pes,
            datamover_words_per_cycle: self.datamover_words_per_cycle,
            input_words_per_image: input_words,
        })
    }

    fn make_pe(&self, index: usize, stage: Stage, layers: Vec<PlannedLayer>) -> PePlan {
        // A per-layer override (first in layer order) beats the global
        // directive for the PE hosting that layer.
        let base = layers
            .iter()
            .find_map(|l| self.layer_overrides.get(&l.name).copied())
            .unwrap_or(self.parallelism);
        let precision = layers
            .iter()
            .find_map(|l| self.layer_precisions.get(&l.name).copied())
            .unwrap_or(self.precision);
        PePlan {
            name: format!("pe{index}"),
            layers,
            stage,
            inputs: Vec::new(), // wired from the graph after clustering
            fifo_depth_override: None,
            precision,
            parallelism: match stage {
                Stage::FeatureExtraction => PeParallelism { fc_simd: 1, ..base },
                // The paper implements FC layers as single-input/
                // single-output PEs; only the MAC vector width applies.
                Stage::Classification => PeParallelism {
                    parallel_in: 1,
                    parallel_out: 1,
                    fc_simd: base.fc_simd,
                },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_nn::zoo;

    #[test]
    fn lenet_unfused_plan_has_one_pe_per_anchor_layer() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        // Anchors: conv1, pool1, conv2, pool2, ip1, ip2 (relu1 fuses into
        // ip1, prob fuses into ip2, data is not mapped).
        assert_eq!(plan.pes.len(), 6);
        assert_eq!(plan.pes[0].layers[0].name, "conv1");
        assert_eq!(plan.pes[4].layers.len(), 2); // ip1 + relu1
        assert_eq!(plan.pes[5].layers.len(), 2); // ip2 + prob
    }

    #[test]
    fn stages_are_not_mixed_under_fusion() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).fusion(10).build().unwrap();
        // All 4 feature-extraction anchors in one PE, both FC anchors in
        // another.
        assert_eq!(plan.pes.len(), 2);
        assert_eq!(plan.pes[0].stage, Stage::FeatureExtraction);
        assert_eq!(plan.pes[1].stage, Stage::Classification);
    }

    #[test]
    fn fusion_factor_two_groups_pairs() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).fusion(2).build().unwrap();
        // FE anchors conv1+pool1, conv2+pool2; FC anchors ip1+ip2.
        assert_eq!(plan.pes.len(), 3);
        assert_eq!(plan.pes[0].layers.len(), 2);
        assert_eq!(plan.pes[2].layers.len(), 4); // ip1 relu1 ip2 prob
    }

    #[test]
    fn cycle_model_lenet_sequential() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let cycles: Vec<u64> = plan.pes.iter().map(PePlan::cycles_per_image).collect();
        assert_eq!(cycles[0], 20 * 24 * 24); // conv1: compute-bound, F·C·H_out·W_out
        assert_eq!(cycles[1], 20 * 24 * 24); // pool1: stream-bound, C·H_in·W_in
        assert_eq!(cycles[2], 50 * 20 * 8 * 8); // conv2
        assert_eq!(cycles[3], 50 * 8 * 8); // pool2: stream-bound
        assert_eq!(cycles[4], 800 * 500); // ip1 (relu fused free)
        assert_eq!(cycles[5], 500 * 10 + 10); // ip2 + softmax drain
                                              // ip1 dominates the initiation interval.
        assert_eq!(plan.initiation_interval(), 400_000);
    }

    #[test]
    fn parallelism_divides_cycles() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net)
            .parallelism(PeParallelism {
                parallel_in: 2,
                parallel_out: 5,
                fc_simd: 4,
            })
            .build()
            .unwrap();
        // conv2: ceil(50/5)·ceil(20/2)·64 = 10·10·64.
        assert_eq!(plan.pes[2].cycles_per_image(), 6_400);
        // conv1: C=1 → ceil(1/2)=1 group.
        assert_eq!(plan.pes[0].cycles_per_image(), 4 * 576);
        // ip1: 400000/4.
        assert_eq!(plan.pes[4].cycles_per_image(), 100_000);
    }

    #[test]
    fn excessive_parallelism_clamps_to_feature_map_counts() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net)
            .parallelism(PeParallelism {
                parallel_in: 64,
                parallel_out: 64, // conv1 has only 20 outputs
                fc_simd: 1,
            })
            .build()
            .unwrap();
        // conv1 PE: C=1 input map, 20 output maps.
        assert_eq!(plan.pes[0].parallelism.parallel_in, 1);
        assert_eq!(plan.pes[0].parallelism.parallel_out, 20);
        // conv2 PE: 20 input maps, 50 outputs.
        assert_eq!(plan.pes[2].parallelism.parallel_in, 20);
        assert_eq!(plan.pes[2].parallelism.parallel_out, 50);
    }

    #[test]
    fn fifo_depths_follow_spatial_distance_rule() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let conv1 = &plan.pes[0];
        assert_eq!(conv1.max_window(), 5);
        assert_eq!(conv1.filters_per_pipeline(), 25);
        let depths = conv1.fifo_depths();
        assert_eq!(depths.len(), 24);
        // Within a row: distance 1; across rows on a 28-wide image:
        // 28 − 5 + 1 = 24.
        assert_eq!(depths[0], 1);
        assert_eq!(depths[4], 24); // tap 5 crosses the first row boundary
        assert_eq!(depths.iter().filter(|&&d| d == 24).count(), 4);
        assert_eq!(depths.iter().filter(|&&d| d == 1).count(), 20);
        // Total on-chip buffering: (K−1)·W + K = 4·28 + 5.
        assert_eq!(conv1.onchip_window_elems(), 117);
    }

    #[test]
    fn fused_pe_uses_biggest_window_and_widest_input() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).fusion(10).build().unwrap();
        let fe = &plan.pes[0];
        assert_eq!(fe.max_window(), 5);
        assert_eq!(fe.max_input_width(), 28);
        // Fused cycles are the sum of member layer cycles.
        let unfused = PlanBuilder::new(&net).build().unwrap();
        let sum: u64 = unfused.pes[..4].iter().map(PePlan::cycles_per_image).sum();
        assert_eq!(fe.cycles_per_image(), sum);
    }

    #[test]
    fn fc_pe_ignores_feature_map_parallelism() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net)
            .parallelism(PeParallelism {
                parallel_in: 2,
                parallel_out: 2,
                fc_simd: 1,
            })
            .build()
            .unwrap();
        assert_eq!(plan.pes[4].parallelism.parallel_in, 1);
        assert_eq!(plan.pes[4].parallelism.parallel_out, 1);
    }

    #[test]
    fn datamover_cycles_and_latency() {
        let net = zoo::tc1();
        let plan = PlanBuilder::new(&net).build().unwrap();
        assert_eq!(plan.input_words_per_image, 256);
        assert_eq!(plan.datamover_cycles_per_image(), 16);
        assert!(plan.image_latency() > plan.initiation_interval());
        assert_eq!(plan.stage_count(), plan.pes.len() + 1);
    }

    #[test]
    fn tc1_initiation_interval_regime() {
        // With the reconstructed TC1 and fc_simd=2, conv1 should be the
        // bottleneck stage (the Table 1 calibration point).
        let net = zoo::tc1();
        let plan = PlanBuilder::new(&net)
            .parallelism(PeParallelism {
                parallel_in: 1,
                parallel_out: 1,
                fc_simd: 2,
            })
            .build()
            .unwrap();
        assert_eq!(plan.initiation_interval(), 8 * 12 * 12);
    }

    #[test]
    fn chain_plans_keep_linear_pe_edges() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        for (i, pe) in plan.pes.iter().enumerate() {
            if i == 0 {
                assert!(pe.inputs.is_empty(), "first PE is datamover-fed");
            } else {
                assert_eq!(pe.inputs, vec![i - 1]);
            }
        }
    }

    #[test]
    fn resnet_block_plan_has_fork_join_edges() {
        let net = zoo::resnet_block();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let anchors: Vec<&str> = plan
            .pes
            .iter()
            .map(|pe| pe.layers[0].name.as_str())
            .collect();
        assert_eq!(anchors, ["conv1", "conv2", "join", "ip1"]);
        // The trailing ReLU is the join's sole consumer, so it fuses into
        // the join PE; prob fuses into ip1 as on any chain.
        assert_eq!(plan.pes[2].layers.len(), 2);
        assert_eq!(plan.pes[3].layers.len(), 2);
        assert_eq!(plan.pes[0].inputs, Vec::<usize>::new());
        assert_eq!(plan.pes[1].inputs, vec![0]);
        assert_eq!(plan.pes[2].inputs, vec![0, 1]); // join reads both convs
        assert_eq!(plan.pes[3].inputs, vec![2]);
        // Merge cycle model: one output element per cycle.
        let join = &plan.pes[2].layers[0];
        assert_eq!(join.output.item_len(), 8 * 8 * 8);
    }

    #[test]
    fn fusion_never_crosses_fork_join_boundaries() {
        let net = zoo::resnet_block();
        let plan = PlanBuilder::new(&net).fusion(10).build().unwrap();
        // conv1 feeds both conv2 and the join (a branch point), and the
        // join has fan-in 2 — no grouping may erase those boundaries even
        // with an unlimited fusion budget.
        assert_eq!(plan.pes.len(), 4);
    }

    #[test]
    fn parallel_branches_overlap_in_latency() {
        use condor_nn::{EltwiseOp, Layer, NetworkBuilder};
        let mut b = NetworkBuilder::new("fork", condor_tensor::Shape::chw(3, 8, 8));
        let data = b.add(Layer::new("data", LayerKind::Input), &[]).unwrap();
        let conv = |name: &str| {
            Layer::new(
                name,
                LayerKind::Convolution {
                    num_output: 4,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    bias: true,
                },
            )
        };
        let c1 = b.add(conv("conv1"), &[data]).unwrap();
        let c2 = b.add(conv("conv2"), &[data]).unwrap();
        b.add(
            Layer::new("join", LayerKind::Eltwise { op: EltwiseOp::Sum }),
            &[c1, c2],
        )
        .unwrap();
        let net = b.build().unwrap();
        let plan = PlanBuilder::new(&net).build().unwrap();
        assert_eq!(plan.pes[0].inputs, Vec::<usize>::new());
        assert_eq!(plan.pes[1].inputs, Vec::<usize>::new());
        assert_eq!(plan.pes[2].inputs, vec![0, 1]);
        // Latency pays the slower branch once, not both branches.
        let dm = plan.datamover_cycles_per_image();
        let c = |i: usize| plan.pes[i].cycles_per_image() + plan.pes[i].fill_latency();
        assert_eq!(plan.image_latency(), dm + c(0).max(c(1)) + c(2));
        assert!(plan.image_latency() < dm + c(0) + c(1) + c(2));
    }

    #[test]
    fn zero_parallelism_rejected() {
        let net = zoo::tc1();
        assert!(PlanBuilder::new(&net)
            .parallelism(PeParallelism {
                parallel_in: 0,
                parallel_out: 1,
                fc_simd: 1
            })
            .build()
            .is_err());
    }
}

#[cfg(test)]
mod bottleneck_tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_nn::zoo;

    #[test]
    fn lenet_bottleneck_is_ip1() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let (name, cycles) = plan.bottleneck();
        assert!(name.contains("ip1"), "{name}");
        assert_eq!(cycles, 400_000);
    }

    #[test]
    fn bottleneck_equals_initiation_interval() {
        for seed in 0..20u64 {
            let net = condor_nn::arbitrary::random_chain(seed);
            let plan = PlanBuilder::new(&net).build().unwrap();
            assert_eq!(plan.bottleneck().1, plan.initiation_interval());
        }
    }
}

#[cfg(test)]
mod layer_override_tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_nn::zoo;

    #[test]
    fn per_layer_override_beats_global_directive() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net)
            .parallelism(PeParallelism {
                parallel_in: 1,
                parallel_out: 1,
                fc_simd: 1,
            })
            .layer_parallelism(
                "conv2",
                PeParallelism {
                    parallel_in: 4,
                    parallel_out: 10,
                    fc_simd: 1,
                },
            )
            .build()
            .unwrap();
        // conv1's PE keeps the global sequential setting…
        assert_eq!(plan.pes[0].parallelism.parallel_out, 1);
        // …while conv2's PE takes the override (clamped to its maps).
        assert_eq!(plan.pes[2].parallelism.parallel_in, 4);
        assert_eq!(plan.pes[2].parallelism.parallel_out, 10);
        assert_eq!(plan.pes[2].cycles_per_image(), 5 * 5 * 64);
    }

    #[test]
    fn override_on_fused_member_applies_to_whole_pe() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net)
            .fusion(10)
            .layer_parallelism(
                "pool1",
                PeParallelism {
                    parallel_in: 2,
                    parallel_out: 2,
                    fc_simd: 1,
                },
            )
            .build()
            .unwrap();
        // conv1 is first in the fused FE PE and has no override; pool1's
        // applies because conv1 carries none.
        assert_eq!(plan.pes[0].parallelism.parallel_in, 2);
    }

    #[test]
    fn precision_defaults_to_f32_and_threads_through() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        assert!(plan.pes.iter().all(|pe| pe.precision == Precision::F32));
        let plan = PlanBuilder::new(&net)
            .precision(Precision::Int8)
            .layer_precision("conv1", Precision::F32)
            .build()
            .unwrap();
        assert_eq!(plan.pes[0].precision, Precision::F32);
        assert!(plan.pes[1..]
            .iter()
            .all(|pe| pe.precision == Precision::Int8));
        // The cycle model is precision-independent: narrowing the
        // datapath changes resources, not the schedule.
        let f32_plan = PlanBuilder::new(&net).build().unwrap();
        assert_eq!(plan.initiation_interval(), f32_plan.initiation_interval());
    }

    #[test]
    fn precision_names_roundtrip() {
        for p in [Precision::F32, Precision::Int8] {
            assert_eq!(Precision::parse(p.as_str()), Some(p));
        }
        assert_eq!(Precision::parse("fp16"), None);
        assert_eq!(Precision::F32.bytes_per_word(), 4);
        assert_eq!(Precision::Int8.bytes_per_word(), 1);
    }

    #[test]
    fn unknown_precision_override_rejected() {
        let net = zoo::lenet();
        let err = PlanBuilder::new(&net)
            .layer_precision("conv99", Precision::Int8)
            .build()
            .unwrap_err();
        assert!(err.message.contains("conv99"));
    }

    #[test]
    fn unknown_override_layer_rejected() {
        let net = zoo::lenet();
        let err = PlanBuilder::new(&net)
            .layer_parallelism("conv99", PeParallelism::default())
            .build()
            .unwrap_err();
        assert!(err.message.contains("conv99"));
    }

    #[test]
    fn zero_override_rejected() {
        let net = zoo::lenet();
        let err = PlanBuilder::new(&net)
            .layer_parallelism(
                "conv1",
                PeParallelism {
                    parallel_in: 0,
                    parallel_out: 1,
                    fc_simd: 1,
                },
            )
            .build()
            .unwrap_err();
        assert!(err.message.contains("positive"));
    }

    #[test]
    fn fc_override_controls_simd() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net)
            .layer_parallelism(
                "ip1",
                PeParallelism {
                    parallel_in: 1,
                    parallel_out: 1,
                    fc_simd: 8,
                },
            )
            .build()
            .unwrap();
        assert_eq!(plan.pes[4].parallelism.fc_simd, 8);
        assert_eq!(plan.pes[4].cycles_per_image(), 50_000);
        // ip2 keeps the default.
        assert_eq!(plan.pes[5].parallelism.fc_simd, 1);
    }
}
