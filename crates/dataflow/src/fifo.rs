//! Bounded FIFO channel model.
//!
//! The hardware communicates exclusively over FIFOs "using blocking reads
//! and writes" (paper Section 3.2). In the cycle-level simulation a full
//! FIFO back-pressures its producer and an empty FIFO stalls its
//! consumer; this type records both so the FIFO-sizing ablation can
//! measure them. Occupancy statistics (high-water mark) verify the
//! paper's sizing rule is tight.

use std::collections::VecDeque;

/// A bounded single-producer/single-consumer FIFO of `f32` elements with
/// occupancy and stall statistics.
#[derive(Clone, Debug)]
pub struct Fifo {
    name: String,
    capacity: usize,
    buf: VecDeque<f32>,
    pushes: u64,
    pops: u64,
    high_water: usize,
    write_stalls: u64,
    read_stalls: u64,
}

impl Fifo {
    /// Creates a FIFO with the given capacity (depth ≥ 1).
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity >= 1, "FIFO depth must be at least 1");
        Fifo {
            name: name.into(),
            capacity,
            buf: VecDeque::with_capacity(capacity),
            pushes: 0,
            pops: 0,
            high_water: 0,
            write_stalls: 0,
            read_stalls: 0,
        }
    }

    /// The FIFO's name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True when at capacity (writes would block).
    pub fn is_full(&self) -> bool {
        self.buf.len() >= self.capacity
    }

    /// Attempts a non-blocking write; returns `false` (and counts a
    /// write stall) when full.
    pub fn try_push(&mut self, v: f32) -> bool {
        if self.is_full() {
            self.write_stalls += 1;
            return false;
        }
        self.buf.push_back(v);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.buf.len());
        true
    }

    /// Attempts a non-blocking read; returns `None` (and counts a read
    /// stall) when empty.
    pub fn try_pop(&mut self) -> Option<f32> {
        match self.buf.pop_front() {
            Some(v) => {
                self.pops += 1;
                Some(v)
            }
            None => {
                self.read_stalls += 1;
                None
            }
        }
    }

    /// Peeks at the head without consuming it (no stall accounting).
    pub fn peek(&self) -> Option<f32> {
        self.buf.front().copied()
    }

    /// Total successful writes.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total successful reads.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Highest occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Writes refused because the FIFO was full.
    pub fn write_stalls(&self) -> u64 {
        self.write_stalls
    }

    /// Reads refused because the FIFO was empty.
    pub fn read_stalls(&self) -> u64 {
        self.read_stalls
    }

    /// Conservation check: everything written was either read or is
    /// still buffered.
    pub fn conserved(&self) -> bool {
        self.pushes == self.pops + self.buf.len() as u64
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn push_pop_preserves_order() {
        let mut f = Fifo::new("t", 4);
        for v in [1.0, 2.0, 3.0] {
            assert!(f.try_push(v));
        }
        assert_eq!(f.try_pop(), Some(1.0));
        assert_eq!(f.try_pop(), Some(2.0));
        assert_eq!(f.try_pop(), Some(3.0));
        assert_eq!(f.try_pop(), None);
    }

    #[test]
    fn capacity_enforced_and_stalls_counted() {
        let mut f = Fifo::new("t", 2);
        assert!(f.try_push(1.0));
        assert!(f.try_push(2.0));
        assert!(!f.try_push(3.0));
        assert!(!f.try_push(3.0));
        assert_eq!(f.write_stalls(), 2);
        f.try_pop();
        assert!(f.try_push(3.0));
        assert_eq!(f.pushes(), 3);
    }

    #[test]
    fn read_stalls_counted() {
        let mut f = Fifo::new("t", 2);
        assert!(f.try_pop().is_none());
        assert_eq!(f.read_stalls(), 1);
        f.try_push(1.0);
        assert!(f.try_pop().is_some());
        assert_eq!(f.read_stalls(), 1);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = Fifo::new("t", 8);
        for v in 0..5 {
            f.try_push(v as f32);
        }
        for _ in 0..5 {
            f.try_pop();
        }
        f.try_push(9.0);
        assert_eq!(f.high_water(), 5);
    }

    #[test]
    fn conservation_invariant() {
        let mut f = Fifo::new("t", 3);
        for i in 0..10 {
            f.try_push(i as f32);
            if i % 2 == 0 {
                f.try_pop();
            }
            assert!(f.conserved());
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut f = Fifo::new("t", 2);
        f.try_push(7.0);
        assert_eq!(f.peek(), Some(7.0));
        assert_eq!(f.len(), 1);
        assert_eq!(f.try_pop(), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_rejected() {
        Fifo::new("t", 0);
    }
}
