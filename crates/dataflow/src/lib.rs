//! # condor-dataflow
//!
//! Simulator substrate for the Condor hardware accelerator (paper
//! Section 3.2, Figure 4): "a composition of a set of building blocks ...
//! *PEs*, that implement the actual computation performed by the various
//! CNN layers, *filters*, that feed the PEs and implement on-chip
//! buffering ... and *FIFOs*, that are used to implement the communication
//! channels", fed by a custom *datamover*.
//!
//! Because no physical FPGA exists in this environment, the accelerator
//! is reproduced at three complementary levels of abstraction:
//!
//! * [`plan`] — the architecture description: how network layers map onto
//!   PEs (including layer fusion), the parallelism of each PE, FIFO
//!   sizing by the paper's spatial-distance rule, and the closed-form
//!   cycle model each higher level shares;
//! * [`window`] + [`layersim`] — an element-granularity, cycle-level
//!   simulation of one feature-extraction layer's memory subsystem (the
//!   filter pipeline implementing non-uniform memory partitioning
//!   [Cong et al., DAC'14]) and PE, used to validate streaming order,
//!   FIFO sizing and the analytic initiation interval, and to measure
//!   stalls under mis-sized FIFOs;
//! * [`runtime`] — a functional threaded runtime: one OS thread per
//!   hardware process, communicating over bounded blocking channels
//!   exactly as the hardware blocks communicate over FIFOs, computing
//!   real values that are cross-checked against the golden engine;
//! * [`pipeline`] — the image-granularity pipeline timing model that
//!   yields batch latency/throughput (the paper's Figure 5).

#![forbid(unsafe_code)]

pub mod fifo;
pub mod layersim;
pub mod pipeline;
pub mod plan;
pub mod runtime;
pub mod window;

pub use fifo::Fifo;
pub use layersim::{LayerSimConfig, LayerSimReport};
pub use pipeline::{BatchTiming, PipelineModel, TimingFaultReport};
pub use plan::{
    AcceleratorPlan, DataflowError, DataflowErrorKind, PeParallelism, PePlan, PlanBuilder,
    PlannedLayer, Precision,
};
pub use window::{FilterChain, FilterSpec};
