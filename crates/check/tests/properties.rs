//! Property tests for the static verifier.
//!
//! Two contracts anchor `condor-check`:
//!
//! 1. **No false positives**: any plan the builder accepts for a valid
//!    network passes verification with zero errors — the checker never
//!    rejects what the flow would happily build.
//! 2. **No false negatives on the corpus**: every seeded defect is
//!    rejected with its expected stable code.
//!
//! Plus the pre-filter soundness bound, exercised over random networks
//! rather than just the zoo.

#![allow(clippy::unwrap_used)] // test code: unwrap is the assertion

use condor_check::{check, check_defect, corpus, PlanBounds, Severity};
use condor_dataflow::{PeParallelism, PlanBuilder, Precision};
use condor_hls::{synthesize_plan, SynthModel};
use condor_nn::arbitrary::{random_chain, random_weighted_chain};
use proptest::prelude::*;

/// Derives a parallelism directive from the seed, covering degenerate
/// (1,1,1) through aggressive (8,8,8) corners.
fn parallelism_from(seed: u64) -> PeParallelism {
    let pick = |s: u64| 1usize << (s % 4); // 1, 2, 4, 8
    PeParallelism {
        parallel_in: pick(seed),
        parallel_out: pick(seed / 4),
        fc_simd: pick(seed / 16),
    }
}

proptest! {
    /// Builder-accepted plans verify clean: no errors, and for fully
    /// weighted networks no warnings either.
    #[test]
    fn accepted_plans_pass_verification(seed in 0u64..512) {
        let net = random_weighted_chain(seed);
        let fusion = 1 + (seed % 3) as usize;
        let plan = PlanBuilder::new(&net)
            .fusion(fusion)
            .parallelism(parallelism_from(seed))
            .build()
            .unwrap();
        let report = check(&net, &plan);
        prop_assert_eq!(
            report.diagnostics.error_count(), 0,
            "seed {}: {}", seed, report.render()
        );
        prop_assert!(
            report.diagnostics.iter().all(|d| d.severity != Severity::Error)
        );
    }

    /// Unweighted networks add only missing-weight warnings — the plan
    /// itself still verifies.
    #[test]
    fn unweighted_plans_only_warn(seed in 0u64..256) {
        let net = random_chain(seed);
        let plan = PlanBuilder::new(&net).build().unwrap();
        let report = check(&net, &plan);
        prop_assert!(report.passed(), "seed {}: {}", seed, report.render());
    }

    /// The DSE pre-filter bound never exceeds the true synthesis
    /// estimate, whatever the network, fusion or parallelism.
    #[test]
    fn prefilter_bound_is_sound(seed in 0u64..256) {
        let net = random_chain(seed);
        let bounds = PlanBounds::analyze(&net).unwrap();
        let p = parallelism_from(seed);
        let fusion = 1 + (seed % 4) as usize;
        let precision = if seed % 2 == 0 { Precision::F32 } else { Precision::Int8 };
        let plan = PlanBuilder::new(&net)
            .fusion(fusion)
            .parallelism(p)
            .precision(precision)
            .build()
            .unwrap();
        let device = condor_fpga::board("aws-f1").unwrap().device();
        let real = synthesize_plan(&plan, device).total;
        let lb = bounds.lower_bound(p, precision, &SynthModel::default());
        prop_assert!(
            lb.fits_in(&real),
            "seed {}: bound {} exceeds real {}", seed, lb, real
        );
    }
}

/// Every entry of the seeded-defect corpus is rejected with its
/// expected stable code (the checker's false-negative guard).
#[test]
fn defect_corpus_is_rejected_with_expected_codes() {
    let corpus = corpus();
    assert!(corpus.len() >= 9, "corpus shrank to {}", corpus.len());
    for d in corpus {
        let report = check_defect(&d);
        assert!(!report.passed(), "{} must fail verification", d.name);
        assert!(
            report.diagnostics.has_code(d.expected),
            "{}: expected {}, diagnostics were [{}]",
            d.name,
            d.expected,
            report.diagnostics.codes().join(", ")
        );
    }
}
