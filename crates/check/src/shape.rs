//! Shape and stream-type inference over a network (pass 1).
//!
//! Unlike `Network::validate`, which stops at the first failure, this
//! pass walks the whole network and *collects* every finding it can
//! still reason about: structural problems (C001–C004, plus C040 for
//! dangling DAG branches), shape-inference failures (C010–C012, C041,
//! C042) and weight mismatches (C013–C015). Shapes propagate along the
//! graph edges; a node is only diagnosed when *all* of its input shapes
//! were established — downstream of a failure the shapes are
//! unknowable, not separately broken. Weight checks keep running for
//! every layer whose input shape was established.

use crate::diag::{Code, Diagnostic, Diagnostics};
use condor_nn::{LayerKind, Network, NodeId};
use condor_tensor::Shape;
use std::collections::BTreeSet;

/// Runs the shape/stream pass, appending findings to `diags`.
///
/// Returns the per-layer input shapes established before the first
/// shape failure (one entry per layer, in order), which the SDF pass
/// reuses to cross-check the plan topology.
pub fn check_network(net: &Network, diags: &mut Diagnostics) -> Vec<Option<Shape>> {
    check_structure(net, diags);
    let ins = propagate_shapes(net, diags);
    check_weights(net, &ins, diags);
    ins
}

/// Structural checks (the C00x group), collected exhaustively.
fn check_structure(net: &Network, diags: &mut Diagnostics) {
    if !net.layers.iter().any(|l| l.kind.is_compute()) {
        diags.push(
            Diagnostic::new(Code::C001, "network has no computational layers")
                .hint("add at least one convolution, pooling or inner-product layer"),
        );
    }
    let mut seen = BTreeSet::new();
    for (i, layer) in net.layers.iter().enumerate() {
        if layer.name.is_empty() {
            diags.push(
                Diagnostic::new(
                    Code::C002,
                    format!("layer at position {i} has an empty name"),
                )
                .hint("every layer needs a unique Caffe-style name"),
            );
        } else if !seen.insert(layer.name.as_str()) {
            diags.push(
                Diagnostic::new(Code::C003, format!("duplicate layer name '{}'", layer.name))
                    .at(layer.name.clone())
                    .hint("rename one of the layers; weights are keyed by name"),
            );
        }
        if matches!(layer.kind, LayerKind::Input) && i != 0 {
            diags.push(
                Diagnostic::new(
                    Code::C004,
                    format!("Input layer at position {i}, expected 0"),
                )
                .at(layer.name.clone())
                .hint("move the Input layer to the front of the chain"),
            );
        }
    }
    // Dangling branches (C040): every node except the network output
    // must be consumed by someone, or its compute would be synthesised
    // and thrown away. Trivially satisfied on linear chains.
    let last = net.node_count().checked_sub(1).map(NodeId::from_index);
    for id in net.node_ids() {
        if Some(id) != last && net.consumers_of(id).is_empty() {
            let name = net.node(id).map(|l| l.name.clone()).unwrap_or_default();
            diags.push(
                Diagnostic::new(
                    Code::C040,
                    format!("node {id} ('{name}') is consumed by no other node"),
                )
                .at(name)
                .hint("route the branch into a Concat/Eltwise join or remove it"),
            );
        }
    }
}

/// Propagates shape inference along the graph edges, reporting every
/// failure whose input shapes are all known and leaving shapes
/// downstream of a failure unknown. On a linear chain this degenerates
/// to the historical walk: one report, then silence.
fn propagate_shapes(net: &Network, diags: &mut Diagnostics) -> Vec<Option<Shape>> {
    let mut outs: Vec<Option<Shape>> = Vec::with_capacity(net.layers.len());
    let mut ins: Vec<Option<Shape>> = Vec::with_capacity(net.layers.len());
    for (i, layer) in net.layers.iter().enumerate() {
        let preds = net.inputs_of(NodeId::from_index(i));
        let in_shapes: Option<Vec<Shape>> = if preds.is_empty() {
            Some(vec![net.input_shape])
        } else {
            preds
                .iter()
                .map(|p| outs.get(p.index()).copied().flatten())
                .collect()
        };
        // The SDF pass cross-checks against the *primary* (first) input.
        ins.push(
            in_shapes
                .as_ref()
                .and_then(|v| v.first().copied())
                .or(in_shapes.as_ref().map(|_| net.input_shape)),
        );
        let out = match &in_shapes {
            None => None, // upstream already failed; unknowable here
            Some(shapes) => match layer.kind.output_shape_multi(shapes) {
                Ok(out) => Some(out),
                Err(e) => {
                    let code = Code::from_nn_kind(condor_nn::NnErrorKind::Shape(e.kind));
                    diags.push(
                        Diagnostic::new(code, e.message.clone())
                            .at(layer.name.clone())
                            .hint(shape_hint(
                                &layer.kind,
                                shapes.first().copied().unwrap_or(net.input_shape),
                            )),
                    );
                    None
                }
            },
        };
        outs.push(out);
    }
    ins
}

/// A fix hint tailored to the failing layer kind.
fn shape_hint(kind: &LayerKind, input: Shape) -> String {
    match kind {
        LayerKind::Convolution { pad, .. } | LayerKind::Pooling { pad, .. } => {
            format!(
                "input is {}x{} (pad {pad}); shrink the kernel below \
                 {} or pad the input",
                input.h,
                input.w,
                input.h.min(input.w) + 2 * pad + 1
            )
        }
        LayerKind::Softmax { .. } => format!(
            "insert an InnerProduct (or flatten) before softmax; \
             input still has a {}x{} spatial extent",
            input.h, input.w
        ),
        _ => "check the layer hyper-parameters".to_string(),
    }
}

/// Weight checks for every layer whose input shape is known: fan-in
/// mismatches (C015), other shape mismatches (C013), missing weights
/// (C014, warning) and weights keyed to no layer (C013).
fn check_weights(net: &Network, ins: &[Option<Shape>], diags: &mut Diagnostics) {
    for (layer, input) in net.layers.iter().zip(ins) {
        let Some(input) = *input else { continue };
        let expected = match layer.kind {
            LayerKind::Convolution {
                num_output,
                kernel,
                bias,
                ..
            } => Some((
                Shape::new(num_output, input.c, kernel, kernel),
                bias.then(|| Shape::vector(num_output)),
            )),
            LayerKind::InnerProduct { num_output, bias } => Some((
                Shape::new(num_output, input.item_len(), 1, 1),
                bias.then(|| Shape::vector(num_output)),
            )),
            _ => None,
        };
        let Some((want_w, want_b)) = expected else {
            continue;
        };
        let Some(installed) = net.weights_of(&layer.name) else {
            diags.push(
                Diagnostic::new(
                    Code::C014,
                    format!("no weights installed (expected {want_w})"),
                )
                .at(layer.name.clone())
                .hint("install trained weights or call attach_random_weights"),
            );
            continue;
        };
        let got = installed.weights.shape();
        if got != want_w {
            // Distinguish a wrong fan-in (the classic "previous layer
            // changed" bug) from any other dimension disagreement.
            let fan_in_only =
                got.n == want_w.n && got.h == want_w.h && got.w == want_w.w && got.c != want_w.c;
            let (code, hint) = if fan_in_only {
                (
                    Code::C015,
                    format!(
                        "weights expect {} input channels but the layer receives {}",
                        got.c, want_w.c
                    ),
                )
            } else {
                (
                    Code::C013,
                    "re-export weights for the current topology".to_string(),
                )
            };
            diags.push(
                Diagnostic::new(
                    code,
                    format!("weight shape {got} does not match expected {want_w}"),
                )
                .at(layer.name.clone())
                .hint(hint),
            );
        }
        match (&installed.bias, want_b) {
            (Some(b), Some(want)) if b.shape() != want => {
                diags.push(
                    Diagnostic::new(
                        Code::C013,
                        format!("bias shape {} does not match expected {want}", b.shape()),
                    )
                    .at(layer.name.clone()),
                );
            }
            (Some(_), None) => {
                diags.push(
                    Diagnostic::new(Code::C013, "bias installed but layer has bias_term: false")
                        .at(layer.name.clone()),
                );
            }
            (None, Some(want)) => {
                diags.push(
                    Diagnostic::new(Code::C013, format!("missing bias tensor (expected {want})"))
                        .at(layer.name.clone()),
                );
            }
            _ => {}
        }
    }
    for name in net.weights.keys() {
        if !net.layers.iter().any(|l| &l.name == name) {
            diags.push(
                Diagnostic::new(
                    Code::C013,
                    format!("weights keyed to unknown layer '{name}'"),
                )
                .hint("remove the stale entry or rename the layer"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_nn::{zoo, Layer};
    use condor_tensor::Tensor;

    fn run(net: &Network) -> Diagnostics {
        let mut d = Diagnostics::new();
        check_network(net, &mut d);
        d
    }

    #[test]
    fn clean_networks_have_no_errors() {
        for net in [zoo::tc1(), zoo::lenet(), zoo::vgg16(), zoo::resnet_block()] {
            let d = run(&net);
            assert!(!d.has_errors(), "{}: {}", net.name, d.render());
        }
    }

    #[test]
    fn dangling_branch_reports_c040() {
        use condor_nn::NetworkBuilder;
        let mut b = NetworkBuilder::new("dangling", Shape::chw(3, 8, 8));
        let data = b.add(Layer::new("data", LayerKind::Input), &[]).unwrap();
        let conv = |name: &str| {
            Layer::new(
                name,
                LayerKind::Convolution {
                    num_output: 4,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    bias: true,
                },
            )
        };
        // conv1 branches off data but nothing ever reads it back.
        b.add(conv("conv1"), &[data]).unwrap();
        b.add(conv("conv2"), &[data]).unwrap();
        let net = b.build().unwrap();
        let d = run(&net);
        assert!(d.has_code(Code::C040), "{}", d.render());
    }

    #[test]
    fn mismatched_merge_inputs_report_c041() {
        let mut net = zoo::resnet_block();
        // Shrink conv2's output maps behind the builder's back: the
        // eltwise join now sees 8-channel vs 4-channel operands.
        if let Some(l) = net.layers.iter_mut().find(|l| l.name == "conv2") {
            if let LayerKind::Convolution { num_output, .. } = &mut l.kind {
                *num_output = 4;
            }
        }
        let d = run(&net);
        assert!(d.has_code(Code::C041), "{}", d.render());
    }

    #[test]
    fn unary_layer_with_two_inputs_reports_c042() {
        let mut net = zoo::resnet_block();
        // Rewrite the two-input join into a unary ReLU behind the
        // builder's back: fan-in 2 is impossible for that kind.
        if let Some(l) = net.layers.iter_mut().find(|l| l.name == "join") {
            l.kind = LayerKind::ReLU {
                negative_slope: 0.0,
            };
        }
        let d = run(&net);
        assert!(d.has_code(Code::C042), "{}", d.render());
    }

    #[test]
    fn unweighted_networks_only_warn_about_weights() {
        let d = run(&zoo::lenet());
        assert!(d.iter().all(|x| x.code == Code::C014), "{}", d.render());
        // Weighted variant is fully clean.
        let d = run(&zoo::lenet_weighted(1));
        assert!(d.is_empty(), "{}", d.render());
    }

    #[test]
    fn oversized_kernel_reports_c011_once_then_stops() {
        let mut net = zoo::lenet();
        if let Some(l) = net.layers.iter_mut().find(|l| l.name == "conv1") {
            if let LayerKind::Convolution { kernel, .. } = &mut l.kind {
                *kernel = 40;
            }
        }
        let d = run(&net);
        assert!(d.has_code(Code::C011), "{}", d.render());
        // Downstream layers are unknowable, not separately broken.
        assert_eq!(d.error_count(), 1, "{}", d.render());
    }

    #[test]
    fn early_softmax_reports_c012() {
        let mut net = zoo::lenet();
        net.layers
            .insert(2, Layer::new("bad_prob", LayerKind::Softmax { log: false }));
        let d = run(&net);
        assert!(d.has_code(Code::C012), "{}", d.render());
    }

    #[test]
    fn duplicate_and_empty_names_collected_together() {
        let mut net = zoo::lenet();
        if let Some(l) = net.layers.iter_mut().find(|l| l.name == "pool1") {
            l.name = "conv1".to_string();
        }
        if let Some(l) = net.layers.iter_mut().find(|l| l.name == "relu1") {
            l.name = String::new();
        }
        let d = run(&net);
        assert!(d.has_code(Code::C003), "{}", d.render());
        assert!(d.has_code(Code::C002), "{}", d.render());
    }

    #[test]
    fn wrong_fanin_weights_report_c015() {
        let mut net = zoo::lenet_weighted(3);
        // conv2 expects 50×20×5×5; install 50×10×5×5 behind the API's back.
        let w = net.weights.get_mut("conv2").unwrap();
        w.weights = Tensor::zeros(Shape::new(50, 10, 5, 5));
        let d = run(&net);
        assert!(d.has_code(Code::C015), "{}", d.render());
    }

    #[test]
    fn other_weight_mismatch_reports_c013() {
        let mut net = zoo::lenet_weighted(3);
        let w = net.weights.get_mut("conv2").unwrap();
        w.weights = Tensor::zeros(Shape::new(50, 20, 3, 3));
        let d = run(&net);
        assert!(d.has_code(Code::C013), "{}", d.render());
        assert!(!d.has_code(Code::C015), "{}", d.render());
    }

    #[test]
    fn orphaned_weights_report_c013() {
        let mut net = zoo::lenet_weighted(3);
        let w = net.weights.get("conv1").unwrap().clone();
        net.weights.insert("ghost".to_string(), w);
        let d = run(&net);
        assert!(d.has_code(Code::C013), "{}", d.render());
    }

    #[test]
    fn returned_shapes_match_network_inference() {
        let net = zoo::lenet();
        let mut d = Diagnostics::new();
        let ins = check_network(&net, &mut d);
        let want = net.input_shapes().unwrap();
        let got: Vec<Shape> = ins.into_iter().map(Option::unwrap).collect();
        assert_eq!(got, want);
    }
}
