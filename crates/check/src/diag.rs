//! Structured diagnostics: stable codes, severities and rendering.
//!
//! Every condition `condor check` can report carries a stable `C0xx`
//! code (the compatibility surface scripts and CI may match on), a
//! severity, the offending layer or module when known, and a fix hint.
//! Codes are never renumbered or repurposed — new conditions get new
//! codes (see DESIGN.md, "Static verification").

use condor_cjson::Value;
use condor_dataflow::{DataflowError, DataflowErrorKind};
use condor_nn::{NnError, NnErrorKind, ShapeErrorKind};
use std::fmt;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never blocks a build.
    Note,
    /// Suspicious but buildable; recorded in the build report.
    Warning,
    /// The plan cannot work; the build flow aborts before HLS codegen.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered output and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Stable diagnostic codes.
///
/// Grouped by pass: `C00x` network structure, `C01x` shape/stream
/// typing, `C02x` SDF/FIFO analysis, `C03x` resource budgets, `C04x`
/// dataflow-graph (DAG) structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// Network has no computational layers.
    C001,
    /// A layer has an empty name.
    C002,
    /// Two layers share a name.
    C003,
    /// An `Input` layer appears after position 0.
    C004,
    /// A hyper-parameter makes a layer meaningless (zero kernel, ...).
    C010,
    /// A sliding window exceeds the (padded) input extent.
    C011,
    /// A layer needs a flat `1×1` stream but receives a feature map.
    C012,
    /// Installed weights disagree with the declared layer shape.
    C013,
    /// A weight-bearing layer has no weights installed.
    C014,
    /// Weight fan-in does not match the layer's input channels.
    C015,
    /// Unclassified error propagated from a lower layer.
    C016,
    /// The plan maps no PEs.
    C020,
    /// A parallelism degree or stream width is zero.
    C021,
    /// Parallelism exceeds the available feature maps (will be clamped).
    C022,
    /// A filter-chain FIFO is shallower than the spatial-distance rule
    /// requires.
    C023,
    /// The filter chain cannot hold one full window: static deadlock.
    C024,
    /// The plan's layer topology disagrees with the network.
    C025,
    /// The datamover bounds the initiation interval.
    C026,
    /// A filter-chain FIFO is deeper than required (wasted BRAM).
    C027,
    /// An inter-PE stream crosses a precision boundary (int8 PE feeding
    /// an f32 PE or vice versa): a format converter is synthesised on
    /// the edge, costing resources and one pipeline stage.
    C028,
    /// The design exceeds the board's usable resources.
    C030,
    /// A single module alone exceeds the whole board budget.
    C031,
    /// Utilisation above 90 % — placement/routing risk.
    C032,
    /// The requested clock is not achievable for this design size.
    C033,
    /// The plan names a board missing from the catalog.
    C034,
    /// A non-output node's result is consumed by no one (dangling
    /// branch — its compute would be synthesised and thrown away).
    C040,
    /// A merge layer's input shapes disagree (concat spatial extents,
    /// eltwise operand shapes).
    C041,
    /// A node's fan-in is impossible for its kind (merge with one
    /// input, unary layer with two, `Input` with any).
    C042,
    /// The two sides of a fork/join produce tokens at different rates,
    /// forcing the join to stall and buffer (SDF rate imbalance).
    C043,
}

impl Code {
    /// Every defined code, in numeric order.
    pub const ALL: &'static [Code] = &[
        Code::C001,
        Code::C002,
        Code::C003,
        Code::C004,
        Code::C010,
        Code::C011,
        Code::C012,
        Code::C013,
        Code::C014,
        Code::C015,
        Code::C016,
        Code::C020,
        Code::C021,
        Code::C022,
        Code::C023,
        Code::C024,
        Code::C025,
        Code::C026,
        Code::C027,
        Code::C028,
        Code::C030,
        Code::C031,
        Code::C032,
        Code::C033,
        Code::C034,
        Code::C040,
        Code::C041,
        Code::C042,
        Code::C043,
    ];

    /// The stable code string (`"C011"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::C001 => "C001",
            Code::C002 => "C002",
            Code::C003 => "C003",
            Code::C004 => "C004",
            Code::C010 => "C010",
            Code::C011 => "C011",
            Code::C012 => "C012",
            Code::C013 => "C013",
            Code::C014 => "C014",
            Code::C015 => "C015",
            Code::C016 => "C016",
            Code::C020 => "C020",
            Code::C021 => "C021",
            Code::C022 => "C022",
            Code::C023 => "C023",
            Code::C024 => "C024",
            Code::C025 => "C025",
            Code::C026 => "C026",
            Code::C027 => "C027",
            Code::C028 => "C028",
            Code::C030 => "C030",
            Code::C031 => "C031",
            Code::C032 => "C032",
            Code::C033 => "C033",
            Code::C034 => "C034",
            Code::C040 => "C040",
            Code::C041 => "C041",
            Code::C042 => "C042",
            Code::C043 => "C043",
        }
    }

    /// One-line meaning, used by `condor check --explain` style output
    /// and the documentation table.
    pub fn summary(self) -> &'static str {
        match self {
            Code::C001 => "network has no computational layers",
            Code::C002 => "layer with empty name",
            Code::C003 => "duplicate layer name",
            Code::C004 => "Input layer not first",
            Code::C010 => "invalid layer hyper-parameter",
            Code::C011 => "window exceeds input extent",
            Code::C012 => "non-flat stream into flat-only layer",
            Code::C013 => "weight shape mismatch",
            Code::C014 => "missing weights",
            Code::C015 => "weight fan-in / channel mismatch",
            Code::C016 => "unclassified error",
            Code::C020 => "plan maps no PEs",
            Code::C021 => "zero parallelism or stream width",
            Code::C022 => "parallelism exceeds feature maps",
            Code::C023 => "FIFO undersized for spatial distance",
            Code::C024 => "filter chain deadlock (window does not fit)",
            Code::C025 => "plan topology disagrees with network",
            Code::C026 => "datamover bounds initiation interval",
            Code::C027 => "FIFO deeper than required",
            Code::C028 => "mixed-precision stream needs a converter",
            Code::C030 => "design exceeds board resource budget",
            Code::C031 => "single module exceeds board budget",
            Code::C032 => "utilisation above 90%",
            Code::C033 => "requested clock not achievable",
            Code::C034 => "unknown board",
            Code::C040 => "dangling node (result never consumed)",
            Code::C041 => "merge input shapes disagree",
            Code::C042 => "impossible fan-in for layer kind",
            Code::C043 => "unbalanced fork/join token rates",
        }
    }

    /// The severity this code reports at.
    pub fn severity(self) -> Severity {
        match self {
            Code::C014
            | Code::C022
            | Code::C027
            | Code::C028
            | Code::C032
            | Code::C033
            | Code::C043 => Severity::Warning,
            Code::C026 => Severity::Note,
            _ => Severity::Error,
        }
    }

    /// Maps a typed network error onto its diagnostic code.
    pub fn from_nn_kind(kind: NnErrorKind) -> Code {
        match kind {
            NnErrorKind::NoComputeLayers => Code::C001,
            NnErrorKind::EmptyLayerName => Code::C002,
            NnErrorKind::DuplicateLayerName => Code::C003,
            NnErrorKind::InputNotFirst => Code::C004,
            NnErrorKind::Shape(ShapeErrorKind::BadHyperParam) => Code::C010,
            NnErrorKind::Shape(ShapeErrorKind::WindowExceedsInput) => Code::C011,
            NnErrorKind::Shape(ShapeErrorKind::NonFlatStream) => Code::C012,
            NnErrorKind::Shape(ShapeErrorKind::MergeMismatch) => Code::C041,
            NnErrorKind::Shape(ShapeErrorKind::WrongArity) | NnErrorKind::BadFanIn => Code::C042,
            NnErrorKind::WeightShape => Code::C013,
            NnErrorKind::MissingWeights => Code::C014,
            NnErrorKind::InputMismatch => Code::C015,
            NnErrorKind::UnknownLayer => Code::C025,
            NnErrorKind::Other => Code::C016,
        }
    }

    /// Maps a typed dataflow error onto its diagnostic code.
    pub fn from_dataflow_kind(kind: DataflowErrorKind) -> Code {
        match kind {
            DataflowErrorKind::Plan => Code::C021,
            DataflowErrorKind::Nn(k) => Code::from_nn_kind(k),
            DataflowErrorKind::Execution | DataflowErrorKind::Simulation => Code::C016,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (defaults to the code's severity).
    pub severity: Severity,
    /// Offending layer, PE or module, when known.
    pub site: Option<String>,
    /// Human-readable description.
    pub message: String,
    /// Suggested fix, when one exists.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// A finding at the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            site: None,
            message: message.into(),
            hint: None,
        }
    }

    /// Attaches the offending layer/PE/module name.
    #[must_use]
    pub fn at(mut self, site: impl Into<String>) -> Self {
        self.site = Some(site.into());
        self
    }

    /// Attaches a fix hint.
    #[must_use]
    pub fn hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// Wraps a typed network error.
    pub fn from_nn_error(e: &NnError) -> Self {
        Diagnostic {
            code: Code::from_nn_kind(e.kind),
            severity: Code::from_nn_kind(e.kind).severity(),
            site: e.layer.clone(),
            message: e.message.clone(),
            hint: None,
        }
    }

    /// Wraps a typed dataflow error.
    pub fn from_dataflow_error(e: &DataflowError) -> Self {
        let code = Code::from_dataflow_kind(e.kind);
        Diagnostic {
            code,
            severity: code.severity(),
            site: None,
            message: e.message.clone(),
            hint: None,
        }
    }

    /// Renders the finding as one (or two, with a hint) lines.
    pub fn render(&self) -> String {
        let site = self
            .site
            .as_deref()
            .map(|s| format!(" [{s}]"))
            .unwrap_or_default();
        let mut out = format!("{} {}{}: {}", self.severity, self.code, site, self.message);
        if let Some(h) = &self.hint {
            out.push_str(&format!("\n    hint: {h}"));
        }
        out
    }

    /// JSON form of the finding.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("code".to_string(), Value::str(self.code.as_str())),
            ("severity".to_string(), Value::str(self.severity.label())),
            ("message".to_string(), Value::str(self.message.clone())),
        ];
        if let Some(site) = &self.site {
            pairs.push(("site".to_string(), Value::str(site.clone())));
        }
        if let Some(hint) = &self.hint {
            pairs.push(("hint".to_string(), Value::str(hint.clone())));
        }
        Value::object(pairs)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// An ordered collection of findings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Records a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Appends every finding from another collection.
    pub fn merge(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// All findings in discovery order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing was found.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when at least one error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Stable code strings of every finding, in discovery order.
    pub fn codes(&self) -> Vec<&'static str> {
        self.items.iter().map(|d| d.code.as_str()).collect()
    }

    /// True when some finding carries the given code.
    pub fn has_code(&self, code: Code) -> bool {
        self.items.iter().any(|d| d.code == code)
    }

    /// Human-readable rendering, one finding per line (plus hints).
    pub fn render(&self) -> String {
        self.items
            .iter()
            .map(|d| format!("  {}", d.render()))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// JSON array of findings.
    pub fn to_json(&self) -> Value {
        Value::Array(self.items.iter().map(Diagnostic::to_json).collect())
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut strs: Vec<_> = Code::ALL.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), Code::ALL.len());
        assert_eq!(Code::C011.as_str(), "C011");
        assert_eq!(Code::C030.as_str(), "C030");
    }

    #[test]
    fn severities_by_group() {
        assert_eq!(Code::C011.severity(), Severity::Error);
        assert_eq!(Code::C014.severity(), Severity::Warning);
        assert_eq!(Code::C026.severity(), Severity::Note);
        assert_eq!(Code::C030.severity(), Severity::Error);
    }

    #[test]
    fn nn_kind_mapping_covers_shape_kinds() {
        assert_eq!(
            Code::from_nn_kind(NnErrorKind::Shape(ShapeErrorKind::WindowExceedsInput)),
            Code::C011
        );
        assert_eq!(Code::from_nn_kind(NnErrorKind::MissingWeights), Code::C014);
        assert_eq!(
            Code::from_dataflow_kind(DataflowErrorKind::Nn(NnErrorKind::DuplicateLayerName)),
            Code::C003
        );
        assert_eq!(
            Code::from_dataflow_kind(DataflowErrorKind::Plan),
            Code::C021
        );
    }

    #[test]
    fn dag_codes_map_from_graph_errors() {
        assert_eq!(
            Code::from_nn_kind(NnErrorKind::Shape(ShapeErrorKind::MergeMismatch)),
            Code::C041
        );
        assert_eq!(
            Code::from_nn_kind(NnErrorKind::Shape(ShapeErrorKind::WrongArity)),
            Code::C042
        );
        assert_eq!(Code::from_nn_kind(NnErrorKind::BadFanIn), Code::C042);
        assert_eq!(Code::C040.severity(), Severity::Error);
        assert_eq!(Code::C043.severity(), Severity::Warning);
    }

    #[test]
    fn render_includes_code_site_and_hint() {
        let d = Diagnostic::new(Code::C023, "depth 1 < required 24")
            .at("pe0")
            .hint("use the spatial-distance rule");
        let text = d.render();
        assert!(text.contains("error C023 [pe0]"));
        assert!(text.contains("hint: use the spatial-distance rule"));
    }

    #[test]
    fn diagnostics_counting_and_codes() {
        let mut ds = Diagnostics::new();
        assert!(ds.is_empty());
        ds.push(Diagnostic::new(Code::C011, "a"));
        ds.push(Diagnostic::new(Code::C014, "b"));
        ds.push(Diagnostic::new(Code::C026, "c"));
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.error_count(), 1);
        assert_eq!(ds.warning_count(), 1);
        assert!(ds.has_errors());
        assert!(ds.has_code(Code::C026));
        assert_eq!(ds.codes(), vec!["C011", "C014", "C026"]);
    }

    #[test]
    fn json_roundtrip_shape() {
        let d = Diagnostic::new(Code::C030, "over budget").at("total");
        let v = d.to_json();
        assert_eq!(v.get("code").and_then(Value::as_str), Some("C030"));
        assert_eq!(v.get("severity").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("site").and_then(Value::as_str), Some("total"));
        let text = condor_cjson::write::to_string(&v);
        let back = condor_cjson::parse(&text).unwrap();
        assert_eq!(back.get("code").and_then(Value::as_str), Some("C030"));
    }
}
