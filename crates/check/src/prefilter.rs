//! Static pre-filter for design-space exploration.
//!
//! The DSE sweeps a cross-product of parallelism degrees, fusion
//! factors and clocks; each point costs a plan build, a synthesis pass
//! and a pipeline evaluation. Many points are *statically* hopeless —
//! most famously any point of VGG-16, whose fully-connected layers
//! buffer the whole weight matrix on chip. This module computes, from
//! one shape-inference walk over the network, a **sound lower bound**
//! on the resources any plan with a given parallelism directive must
//! consume, for *every* fusion factor and clock:
//!
//! * per-layer compute terms use `min(directive, feature maps)` — the
//!   builder clamps per PE to the *maximum* over fused layers, which is
//!   never below the per-layer value, so the bound cannot exceed the
//!   real cost;
//! * fusion only merges PE base costs, so the bound charges one base
//!   per stage present, and one filter chain at the largest window;
//! * datamover and platform infrastructure are always instantiated.
//!
//! A point whose lower bound already exceeds the board budget is pruned
//! without building or simulating anything.

use condor_dataflow::{PeParallelism, Precision};
use condor_fpga::Resources;
use condor_hls::SynthModel;
use condor_nn::{LayerKind, Network, NnError, PoolKind};

/// Per-layer facts the bound needs, extracted once per network.
#[derive(Clone, Debug)]
enum LayerBound {
    Conv {
        in_c: usize,
        out_maps: usize,
        kernel: usize,
        bias: bool,
        out_hw: usize,
    },
    Pool {
        in_c: usize,
        kernel: usize,
        average: bool,
    },
    Fc {
        in_len: usize,
        out: usize,
        bias: bool,
    },
    Activation,
    Softmax,
}

/// Fusion- and clock-independent resource lower bounds for one network.
#[derive(Clone, Debug)]
pub struct PlanBounds {
    layers: Vec<LayerBound>,
    /// Largest sliding window in the network (0 if none).
    max_window: usize,
    /// True when some MAC-bearing layer (conv or FC) exists, so at
    /// least one PE carries the full (non-pooling) base cost.
    has_mac_pe: bool,
}

impl PlanBounds {
    /// Extracts the bound inputs with a single shape-inference walk.
    pub fn analyze(net: &Network) -> Result<PlanBounds, NnError> {
        let ins = net.input_shapes()?;
        let mut layers = Vec::new();
        let mut max_window = 0usize;
        let mut has_mac_pe = false;
        for (layer, input) in net.layers.iter().zip(&ins) {
            match layer.kind {
                LayerKind::Convolution {
                    num_output,
                    kernel,
                    bias,
                    ..
                } => {
                    let out = layer
                        .kind
                        .output_shape(*input)
                        .map_err(|e| NnError::shape(&layer.name, e))?;
                    layers.push(LayerBound::Conv {
                        in_c: input.c,
                        out_maps: num_output,
                        kernel,
                        bias,
                        out_hw: out.h * out.w,
                    });
                    max_window = max_window.max(kernel);
                    has_mac_pe = true;
                }
                LayerKind::Pooling { kernel, method, .. } => {
                    layers.push(LayerBound::Pool {
                        in_c: input.c,
                        kernel,
                        average: matches!(method, PoolKind::Average),
                    });
                    max_window = max_window.max(kernel);
                }
                LayerKind::InnerProduct { num_output, bias } => {
                    layers.push(LayerBound::Fc {
                        in_len: input.item_len(),
                        out: num_output,
                        bias,
                    });
                    has_mac_pe = true;
                }
                LayerKind::ReLU { .. } | LayerKind::Sigmoid | LayerKind::TanH => {
                    layers.push(LayerBound::Activation);
                }
                // Stream merges synthesize to routing plus at most one
                // ALU op per lane — the synth model charges them exactly
                // one activation-stage worth of LUTs (plus DSPs only for
                // the multiplying Eltwise, which the bound soundly
                // under-counts at zero).
                LayerKind::Concat | LayerKind::Eltwise { .. } => {
                    layers.push(LayerBound::Activation);
                }
                LayerKind::Softmax { .. } => {
                    layers.push(LayerBound::Softmax);
                }
                LayerKind::Input => {}
            }
        }
        Ok(PlanBounds {
            layers,
            max_window,
            has_mac_pe,
        })
    }

    /// Sound lower bound on the synthesis estimate of *any* plan built
    /// from this network with parallelism directive `p` at datapath
    /// `precision`, under `model`. Narrowing to INT8 widens the feasible
    /// region the DSE explores: one DSP48E2 packs two int8 MACs and
    /// weight buffers shrink to a byte per word, so points the f32 bound
    /// prunes can survive at int8.
    pub fn lower_bound(
        &self,
        p: PeParallelism,
        precision: Precision,
        model: &SynthModel,
    ) -> Resources {
        let wbyte = precision.bytes_per_word();
        let mut lut: u64 = 0;
        let mut dsp: u64 = 0;
        let mut bram: u64 = 0;
        for l in &self.layers {
            match *l {
                LayerBound::Conv {
                    in_c,
                    out_maps,
                    kernel,
                    bias,
                    out_hw,
                } => {
                    // The builder clamp is min(directive, max over the
                    // PE's layers) >= min(directive, this layer's maps).
                    let pin = p.parallel_in.min(in_c.max(1));
                    let pout = p.parallel_out.min(out_maps.max(1));
                    let macs = (kernel * kernel * pin * pout) as u64;
                    lut += model.mac_lut(precision) * macs;
                    dsp += model.mac_dsp(precision, macs);
                    let ws_bytes = (2 * in_c * kernel * kernel * pout * wbyte) as u64;
                    bram += Resources::bram_tiles_for_bytes(ws_bytes).max(1);
                    if bias {
                        bram += Resources::bram_tiles_for_bytes((out_maps * 4) as u64).max(1);
                    }
                    bram += Resources::bram_tiles_for_bytes((out_hw * pout * 4) as u64).max(1);
                }
                LayerBound::Pool {
                    in_c,
                    kernel,
                    average,
                } => {
                    let pin = p.parallel_in.min(in_c.max(1));
                    lut += model.pool_lut_per_elem * (kernel * kernel * pin) as u64;
                    if average {
                        dsp += 2 * pin as u64;
                    }
                }
                LayerBound::Fc { in_len, out, bias } => {
                    // The whole weight matrix lives on chip regardless
                    // of fusion — the VGG-16 killer.
                    let macs = p.fc_simd as u64;
                    lut += model.mac_lut(precision) * macs;
                    dsp += model.mac_dsp(precision, macs);
                    bram += Resources::bram_tiles_for_bytes((in_len * out * wbyte) as u64).max(1);
                    if bias {
                        bram += Resources::bram_tiles_for_bytes((out * 4) as u64).max(1);
                    }
                }
                LayerBound::Activation => lut += model.activation_lut,
                LayerBound::Softmax => {
                    lut += model.softmax_lut;
                    dsp += model.softmax_dsp;
                }
            }
        }
        // At least one PE exists however aggressive the fusion; a PE
        // hosting a MAC-bearing layer carries the full base cost,
        // anything else at least the pooling base. Two AXI-stream
        // endpoints come with it.
        if !self.layers.is_empty() {
            lut += if self.has_mac_pe {
                model.pe_base_lut
            } else {
                model.pool_base_lut
            };
            bram += 2;
        }
        // At least one filter chain at the largest window, one pipeline.
        if self.max_window > 1 {
            lut += model.filter_lut * (self.max_window * self.max_window) as u64;
        }
        let ff = (lut as f64 * model.ff_per_lut) as u64;
        Resources::new(lut, ff, dsp, bram) + model.datamover + model.infrastructure
    }

    /// `Some(reason)` when no plan with directive `p` can fit `budget`
    /// — the DSE prunes such points without simulating. The reason
    /// always mentions the budget so reports stay grep-able.
    pub fn infeasible_reason(
        &self,
        p: PeParallelism,
        precision: Precision,
        model: &SynthModel,
        budget: &Resources,
    ) -> Option<String> {
        let lb = self.lower_bound(p, precision, model);
        if lb.fits_in(budget) {
            None
        } else {
            Some(format!(
                "statically pruned: resource lower bound ({lb}) exceeds board budget ({budget})"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_dataflow::PlanBuilder;
    use condor_hls::synthesize_plan;
    use condor_nn::zoo;

    fn f1_budget() -> Resources {
        condor_fpga::board("aws-f1").unwrap().usable_resources()
    }

    /// The load-bearing property: the bound never exceeds the real
    /// synthesis estimate, for any fusion, parallelism and precision
    /// tried.
    #[test]
    fn bound_is_sound_across_fusion_parallelism_and_precision() {
        let model = SynthModel::default();
        for net in [zoo::tc1(), zoo::lenet(), zoo::vgg16()] {
            let bounds = PlanBounds::analyze(&net).unwrap();
            let device = condor_fpga::board("aws-f1").unwrap().device();
            for fusion in [1, 2, 100] {
                for (pin, pout, simd) in [(1, 1, 1), (2, 4, 2), (16, 16, 8)] {
                    for precision in [Precision::F32, Precision::Int8] {
                        let p = PeParallelism {
                            parallel_in: pin,
                            parallel_out: pout,
                            fc_simd: simd,
                        };
                        let plan = PlanBuilder::new(&net)
                            .fusion(fusion)
                            .parallelism(p)
                            .precision(precision)
                            .build()
                            .unwrap();
                        let real = synthesize_plan(&plan, device).total;
                        let lb = bounds.lower_bound(p, precision, &model);
                        assert!(
                            lb.fits_in(&real),
                            "{} fusion {fusion} p=({pin},{pout},{simd}) {precision}: \
                             bound {lb} > real {real}",
                            net.name
                        );
                    }
                }
            }
        }
    }

    /// The acceptance pin for the int8 hardware model: a parallelism
    /// point whose f32 lower bound blows the DSP budget becomes feasible
    /// when the datapath narrows to int8 — the DSE's widened region.
    #[test]
    fn int8_admits_points_f32_rejects_under_the_same_dsp_budget() {
        let bounds = PlanBounds::analyze(&zoo::lenet()).unwrap();
        let model = SynthModel::default();
        let p = PeParallelism {
            parallel_in: 8,
            parallel_out: 8,
            fc_simd: 4,
        };
        let f32_lb = bounds.lower_bound(p, Precision::F32, &model);
        let int8_lb = bounds.lower_bound(p, Precision::Int8, &model);
        // Pick a budget strictly between the two DSP bounds: generous
        // everywhere else so DSP is the only binding constraint.
        let budget = Resources::new(u64::MAX, u64::MAX, (int8_lb.dsp + f32_lb.dsp) / 2, u64::MAX);
        assert!(
            bounds
                .infeasible_reason(p, Precision::F32, &model, &budget)
                .is_some(),
            "f32 should be pruned at {} DSPs",
            budget.dsp
        );
        assert!(
            bounds
                .infeasible_reason(p, Precision::Int8, &model, &budget)
                .is_none(),
            "int8 should fit at {} DSPs (bound {})",
            budget.dsp,
            int8_lb.dsp
        );
        // And the int8 point is genuinely buildable + synthesizable
        // within that DSP budget, not just un-pruned.
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net)
            .parallelism(p)
            .precision(Precision::Int8)
            .build()
            .unwrap();
        let device = condor_fpga::board("aws-f1").unwrap().device();
        let real = synthesize_plan(&plan, device).total;
        assert!(real.dsp <= budget.dsp, "real int8 {} DSPs", real.dsp);
    }

    #[test]
    fn vgg16_is_pruned_on_f1() {
        let bounds = PlanBounds::analyze(&zoo::vgg16()).unwrap();
        let reason = bounds
            .infeasible_reason(
                PeParallelism::default(),
                Precision::F32,
                &SynthModel::default(),
                &f1_budget(),
            )
            .expect("VGG-16 FC layers cannot fit on-chip");
        assert!(reason.contains("budget"), "{reason}");
    }

    #[test]
    fn lenet_is_not_pruned_on_f1() {
        let bounds = PlanBounds::analyze(&zoo::lenet()).unwrap();
        assert!(bounds
            .infeasible_reason(
                PeParallelism::default(),
                Precision::F32,
                &SynthModel::default(),
                &f1_budget()
            )
            .is_none());
    }

    #[test]
    fn lenet_extreme_parallelism_pruned_on_pynq() {
        let bounds = PlanBounds::analyze(&zoo::lenet()).unwrap();
        let budget = condor_fpga::board("pynq-z1").unwrap().usable_resources();
        let p = PeParallelism {
            parallel_in: 16,
            parallel_out: 16,
            fc_simd: 1,
        };
        let reason = bounds.infeasible_reason(p, Precision::F32, &SynthModel::default(), &budget);
        assert!(reason.is_some());
    }

    #[test]
    fn bound_grows_with_parallelism() {
        let bounds = PlanBounds::analyze(&zoo::lenet()).unwrap();
        let model = SynthModel::default();
        let lo = bounds.lower_bound(PeParallelism::default(), Precision::F32, &model);
        let hi = bounds.lower_bound(
            PeParallelism {
                parallel_in: 8,
                parallel_out: 8,
                fc_simd: 4,
            },
            Precision::F32,
            &model,
        );
        assert!(hi.dsp > lo.dsp);
        assert!(hi.lut > lo.lut);
    }
}
