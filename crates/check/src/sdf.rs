//! SDF-style static analysis of an accelerator plan (pass 2).
//!
//! The planned accelerator is a synchronous-dataflow pipeline: the
//! datamover feeds a chain of PEs, each fronted by a filter chain whose
//! inter-filter FIFOs realise the paper's non-uniform memory
//! partitioning. All rates and delays are static, so deadlock-freedom
//! and FIFO sizing reduce to balance equations checkable without
//! simulating a single cycle:
//!
//! * every inter-filter FIFO must hold at least the *spatial distance*
//!   between the two window taps it connects (`1` within a row,
//!   `W−K+1` across a row boundary) — shallower FIFOs stall the
//!   upstream filter before a window completes (C023);
//! * the chain as a whole must buffer one full window span,
//!   `(K−1)·W + K` elements, before the PE can fire. Total capacity is
//!   the FIFO depths plus one register per filter (`K²`); if that sum
//!   is below the span the chain wedges on the first window — a true
//!   structural deadlock (C024);
//! * the plan's layer topology must agree with the network it claims
//!   to implement (C025), and every rate parameter must be positive
//!   (C021);
//! * on DAG-shaped plans, the branches feeding a join should produce
//!   tokens at the same rate — an imbalance means the join runs at the
//!   slowest branch and the faster side stalls (C043, warning).

use crate::diag::{Code, Diagnostic, Diagnostics};
use condor_dataflow::{AcceleratorPlan, PePlan};
use condor_nn::{LayerKind, Network};
use condor_tensor::Shape;

/// Runs the SDF pass, appending findings to `diags`. `ins` carries the
/// per-layer input shapes established by the shape pass (`None` past
/// the first shape failure).
pub fn check_plan(
    net: &Network,
    plan: &AcceleratorPlan,
    ins: &[Option<Shape>],
    diags: &mut Diagnostics,
) {
    if plan.pes.is_empty() {
        diags.push(
            Diagnostic::new(Code::C020, "plan maps no processing elements")
                .hint("the network must contain at least one computational layer"),
        );
        return;
    }
    if plan.datamover_words_per_cycle == 0 {
        diags.push(
            Diagnostic::new(Code::C021, "datamover stream width is zero")
                .at("datamover")
                .hint("set datamover_words_per_cycle >= 1"),
        );
    }
    for pe in &plan.pes {
        check_rates(pe, diags);
        check_fifos(pe, diags);
    }
    check_precision_streams(plan, diags);
    check_topology(net, plan, ins, diags);
    // The cycle model divides by the parallelism degrees; only reason
    // about throughput once every rate is known positive.
    let rates_ok = plan.datamover_words_per_cycle > 0
        && plan.pes.iter().all(|pe| {
            pe.parallelism.parallel_in > 0
                && pe.parallelism.parallel_out > 0
                && pe.parallelism.fc_simd > 0
        });
    if rates_ok {
        check_datamover_balance(plan, diags);
        check_branch_balance(plan, diags);
    }
}

/// Warns when a join's upstream branches produce tokens at different
/// rates (C043). The join consumes one element per cycle from every
/// input, so the faster branch stalls against its FIFO while the slower
/// one catches up — the merge runs at the slowest branch's rate.
fn check_branch_balance(plan: &AcceleratorPlan, diags: &mut Diagnostics) {
    for pe in &plan.pes {
        if pe.inputs.len() < 2 {
            continue;
        }
        let rates: Vec<u64> = pe
            .inputs
            .iter()
            .filter_map(|&i| plan.pes.get(i))
            .map(PePlan::cycles_per_image)
            .collect();
        let (min, max) = match (rates.iter().min(), rates.iter().max()) {
            (Some(&min), Some(&max)) => (min, max),
            _ => continue,
        };
        if max > min {
            diags.push(
                Diagnostic::new(
                    Code::C043,
                    format!(
                        "join input branches produce at {rates:?} cycles/image: \
                         the faster branch idles {} cycle(s) per image at the merge",
                        max - min
                    ),
                )
                .at(pe.name.clone())
                .hint("raise the slow branch's parallelism so both sides of the fork keep pace"),
            );
        }
    }
}

/// Warns on every inter-PE stream that crosses a precision boundary
/// (C028). The synthesis model inserts a format converter on each such
/// edge — legal, but it costs LUT/FF and a pipeline stage, so the plan
/// should cross precision domains deliberately, not by accident.
fn check_precision_streams(plan: &AcceleratorPlan, diags: &mut Diagnostics) {
    for pe in &plan.pes {
        for &i in &pe.inputs {
            let Some(src) = plan.pes.get(i) else { continue };
            if src.precision != pe.precision {
                diags.push(
                    Diagnostic::new(
                        Code::C028,
                        format!(
                            "stream from {} ({}) into {} ({}) crosses a precision boundary: \
                             a {}_to_{} converter will be synthesised on the edge",
                            src.name,
                            src.precision,
                            pe.name,
                            pe.precision,
                            src.precision,
                            pe.precision
                        ),
                    )
                    .at(pe.name.clone())
                    .hint(
                        "group same-precision layers into contiguous plan regions to \
                         amortise converters, or make the whole plan one precision",
                    ),
                );
            }
        }
    }
}

/// Positive-rate and clamping checks for one PE (C021, C022).
fn check_rates(pe: &PePlan, diags: &mut Diagnostics) {
    let p = pe.parallelism;
    if p.parallel_in == 0 || p.parallel_out == 0 || p.fc_simd == 0 {
        diags.push(
            Diagnostic::new(
                Code::C021,
                format!(
                    "parallelism degrees must be positive (in={}, out={}, fc_simd={})",
                    p.parallel_in, p.parallel_out, p.fc_simd
                ),
            )
            .at(pe.name.clone())
            .hint("every SDF rate must be >= 1 for the pipeline to move data"),
        );
        return;
    }
    let max_in = pe.layers.iter().map(|l| l.input.c).max().unwrap_or(1);
    let max_out = pe
        .layers
        .iter()
        .filter_map(|l| match l.kind {
            LayerKind::Convolution { num_output, .. } => Some(num_output),
            _ => None,
        })
        .max()
        .unwrap_or(1);
    if p.parallel_in > max_in {
        diags.push(
            Diagnostic::new(
                Code::C022,
                format!(
                    "parallel_in {} exceeds the {} input feature map(s) available",
                    p.parallel_in, max_in
                ),
            )
            .at(pe.name.clone())
            .hint(format!("the extra ports idle; use parallel_in <= {max_in}")),
        );
    }
    if p.parallel_out > max_out {
        diags.push(
            Diagnostic::new(
                Code::C022,
                format!(
                    "parallel_out {} exceeds the {} output feature map(s) computed",
                    p.parallel_out, max_out
                ),
            )
            .at(pe.name.clone())
            .hint(format!("use parallel_out <= {max_out}")),
        );
    }
}

/// FIFO sizing and fill/deadlock balance for one PE's filter chain
/// (C023, C024, C027).
fn check_fifos(pe: &PePlan, diags: &mut Diagnostics) {
    if pe.max_window() <= 1 {
        return; // no filter chain, nothing to size
    }
    let declared = pe.fifo_depths();
    let required = pe.required_fifo_depths();
    if declared.len() != required.len() {
        diags.push(
            Diagnostic::new(
                Code::C023,
                format!(
                    "filter chain declares {} FIFO(s), the {}x{} window needs {}",
                    declared.len(),
                    pe.max_window(),
                    pe.max_window(),
                    required.len()
                ),
            )
            .at(pe.name.clone())
            .hint("one FIFO per window tap transition (K*K - 1 total)"),
        );
    } else {
        for (tap, (have, need)) in declared.iter().zip(&required).enumerate() {
            if have < need {
                diags.push(
                    Diagnostic::new(
                        Code::C023,
                        format!(
                            "FIFO after tap {} has depth {have}, spatial distance needs {need}",
                            tap + 1
                        ),
                    )
                    .at(pe.name.clone())
                    .hint(format!(
                        "row-crossing taps on a {}-wide input need depth W-K+1 = {need}",
                        pe.max_input_width()
                    )),
                );
            } else if have > need {
                diags.push(
                    Diagnostic::new(
                        Code::C027,
                        format!(
                            "FIFO after tap {} has depth {have}, the rule needs only {need}",
                            tap + 1
                        ),
                    )
                    .at(pe.name.clone())
                    .hint("excess depth wastes BRAM without improving throughput"),
                );
            }
        }
    }
    // Fill equation: FIFO capacity plus one holding register per filter
    // must cover the on-chip window span, or the chain can never
    // present a complete window — it stalls forever on the first one.
    let capacity: usize = declared.iter().sum::<usize>() + pe.filters_per_pipeline();
    let span = pe.onchip_window_elems();
    if capacity < span {
        diags.push(
            Diagnostic::new(
                Code::C024,
                format!(
                    "filter chain holds {capacity} element(s) but a full window spans {span}: \
                     static deadlock"
                ),
            )
            .at(pe.name.clone())
            .hint("size row-crossing FIFOs by the spatial-distance rule to cover (K-1)*W+K"),
        );
    }
}

/// Cross-checks the plan's layer list against the network (C025).
fn check_topology(
    net: &Network,
    plan: &AcceleratorPlan,
    ins: &[Option<Shape>],
    diags: &mut Diagnostics,
) {
    let planned: Vec<_> = plan.pes.iter().flat_map(|pe| pe.layers.iter()).collect();
    for pe in &plan.pes {
        if pe.layers.is_empty() {
            diags.push(Diagnostic::new(Code::C025, "PE implements no layers").at(pe.name.clone()));
        }
    }
    // Every planned layer must point at the matching network node.
    for pl in &planned {
        let Some(layer) = net.node(pl.node) else {
            diags.push(
                Diagnostic::new(
                    Code::C025,
                    format!("planned layer node {} is outside the network", pl.node),
                )
                .at(pl.name.clone()),
            );
            continue;
        };
        if layer.name != pl.name || layer.kind != pl.kind {
            diags.push(
                Diagnostic::new(
                    Code::C025,
                    format!(
                        "planned layer disagrees with network node {} ('{}')",
                        pl.node, layer.name
                    ),
                )
                .at(pl.name.clone())
                .hint("rebuild the plan after editing the network"),
            );
            continue;
        }
        // Shapes must match what inference established (when it did).
        if let Some(Some(want_in)) = ins.get(pl.node.index()) {
            if pl.input != *want_in {
                diags.push(
                    Diagnostic::new(
                        Code::C025,
                        format!(
                            "planned input shape {} disagrees with inferred {}",
                            pl.input, want_in
                        ),
                    )
                    .at(pl.name.clone()),
                );
            } else if let Ok(out) = layer.kind.output_shape(*want_in) {
                if pl.output != out {
                    diags.push(
                        Diagnostic::new(
                            Code::C025,
                            format!(
                                "planned output shape {} disagrees with inferred {}",
                                pl.output, out
                            ),
                        )
                        .at(pl.name.clone()),
                    );
                }
            }
        }
    }
    // The plan must cover every compute layer exactly once, in order.
    let want: Vec<usize> = net
        .layers
        .iter()
        .enumerate()
        .filter(|(_, l)| l.kind.is_compute())
        .map(|(i, _)| i)
        .collect();
    let got: Vec<usize> = planned.iter().map(|pl| pl.node.index()).collect();
    if got != want {
        diags.push(
            Diagnostic::new(
                Code::C025,
                format!(
                    "plan maps {} layer(s), network has {} compute layer(s) (order must match)",
                    got.len(),
                    want.len()
                ),
            )
            .hint("every compute layer maps to exactly one PE, in network order"),
        );
    }
}

/// Notes when the datamover, not a PE, bounds the initiation interval
/// (C026) — not an error, but the first thing a DSE should fix.
fn check_datamover_balance(plan: &AcceleratorPlan, diags: &mut Diagnostics) {
    let dm = plan.datamover_cycles_per_image();
    let pe_max = plan
        .pes
        .iter()
        .map(PePlan::cycles_per_image)
        .max()
        .unwrap_or(0);
    if dm > pe_max {
        diags.push(
            Diagnostic::new(
                Code::C026,
                format!(
                    "datamover needs {dm} cycles/image, slowest PE only {pe_max}: \
                     the memory stream bounds throughput"
                ),
            )
            .at("datamover")
            .hint("widen datamover_words_per_cycle or lower PE parallelism"),
        );
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_dataflow::PlanBuilder;
    use condor_nn::zoo;

    fn run(net: &Network, plan: &AcceleratorPlan) -> Diagnostics {
        let mut d = Diagnostics::new();
        let ins = crate::shape::check_network(net, &mut d);
        let mut d = Diagnostics::new(); // drop weight warnings; SDF only
        check_plan(net, plan, &ins, &mut d);
        d
    }

    #[test]
    fn builder_plans_are_clean() {
        for net in [zoo::tc1(), zoo::lenet()] {
            for fusion in [1, 2, 10] {
                let plan = PlanBuilder::new(&net).fusion(fusion).build().unwrap();
                let d = run(&net, &plan);
                assert!(
                    !d.has_errors(),
                    "{} fusion {fusion}: {}",
                    net.name,
                    d.render()
                );
            }
        }
    }

    #[test]
    fn resnet_block_plan_is_error_free_but_notes_rate_imbalance() {
        let net = zoo::resnet_block();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let d = run(&net, &plan);
        assert!(!d.has_errors(), "{}", d.render());
        // conv1 reads 3 input maps, conv2 reads 8 — the two branches
        // feed the join at different rates; noted, never fatal.
        assert!(d.has_code(Code::C043), "{}", d.render());
    }

    #[test]
    fn balanced_fork_has_no_c043() {
        use condor_nn::{EltwiseOp, Layer, NetworkBuilder};
        let mut b = NetworkBuilder::new("fork", condor_tensor::Shape::chw(3, 8, 8));
        let data = b.add(Layer::new("data", LayerKind::Input), &[]).unwrap();
        let conv = |name: &str| {
            Layer::new(
                name,
                LayerKind::Convolution {
                    num_output: 4,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    bias: true,
                },
            )
        };
        let c1 = b.add(conv("conv1"), &[data]).unwrap();
        let c2 = b.add(conv("conv2"), &[data]).unwrap();
        b.add(
            Layer::new("join", LayerKind::Eltwise { op: EltwiseOp::Sum }),
            &[c1, c2],
        )
        .unwrap();
        let net = b.build().unwrap();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let d = run(&net, &plan);
        assert!(!d.has_code(Code::C043), "{}", d.render());
        assert!(!d.has_errors(), "{}", d.render());
    }

    #[test]
    fn undersized_row_fifo_reports_c023() {
        let net = zoo::lenet();
        let mut plan = PlanBuilder::new(&net).build().unwrap();
        let pe = plan.pes.first_mut().unwrap();
        let mut depths = pe.required_fifo_depths();
        for d in depths.iter_mut().filter(|d| **d > 1) {
            *d = 2; // row-crossing taps need 24 on a 28-wide image
        }
        pe.fifo_depth_override = Some(depths);
        let d = run(&net, &plan);
        assert!(d.has_code(Code::C023), "{}", d.render());
    }

    #[test]
    fn all_shallow_fifos_deadlock_c024() {
        let net = zoo::lenet();
        let mut plan = PlanBuilder::new(&net).build().unwrap();
        let pe = plan.pes.first_mut().unwrap();
        pe.fifo_depth_override = Some(vec![1; pe.required_fifo_depths().len()]);
        let d = run(&net, &plan);
        // Capacity 24 + 25 registers = 49 < span 117.
        assert!(d.has_code(Code::C024), "{}", d.render());
    }

    #[test]
    fn oversized_fifo_warns_c027_without_error() {
        let net = zoo::lenet();
        let mut plan = PlanBuilder::new(&net).build().unwrap();
        let pe = plan.pes.first_mut().unwrap();
        let mut depths = pe.required_fifo_depths();
        if let Some(d0) = depths.first_mut() {
            *d0 = 64;
        }
        pe.fifo_depth_override = Some(depths);
        let d = run(&net, &plan);
        assert!(d.has_code(Code::C027), "{}", d.render());
        assert!(!d.has_errors(), "{}", d.render());
    }

    #[test]
    fn mixed_precision_edges_warn_c028_without_error() {
        use condor_dataflow::Precision;
        let net = zoo::lenet();
        // Uniform plans — either precision — never warn.
        for p in [Precision::F32, Precision::Int8] {
            let plan = PlanBuilder::new(&net).precision(p).build().unwrap();
            let d = run(&net, &plan);
            assert!(!d.has_code(Code::C028), "{p}: {}", d.render());
        }
        // Narrowing one interior PE creates two boundary crossings.
        let plan = PlanBuilder::new(&net)
            .layer_precision("conv2", Precision::Int8)
            .build()
            .unwrap();
        let d = run(&net, &plan);
        assert!(d.has_code(Code::C028), "{}", d.render());
        assert!(!d.has_errors(), "{}", d.render());
        let crossings = d.iter().filter(|diag| diag.code == Code::C028).count();
        assert_eq!(crossings, 2);
    }

    #[test]
    fn zero_parallelism_reports_c021() {
        let net = zoo::lenet();
        let mut plan = PlanBuilder::new(&net).build().unwrap();
        plan.pes.first_mut().unwrap().parallelism.parallel_in = 0;
        let d = run(&net, &plan);
        assert!(d.has_code(Code::C021), "{}", d.render());
    }

    #[test]
    fn excess_parallelism_warns_c022() {
        let net = zoo::lenet();
        let mut plan = PlanBuilder::new(&net).build().unwrap();
        // conv1 has a single input map; claim 4 ports behind the
        // builder's clamp.
        plan.pes.first_mut().unwrap().parallelism.parallel_in = 4;
        let d = run(&net, &plan);
        assert!(d.has_code(Code::C022), "{}", d.render());
        assert!(!d.has_errors(), "{}", d.render());
    }

    #[test]
    fn stale_plan_topology_reports_c025() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        // Edit the network after planning: conv2 grows output maps.
        let mut edited = net.clone();
        if let Some(l) = edited.layers.iter_mut().find(|l| l.name == "conv2") {
            if let LayerKind::Convolution { num_output, .. } = &mut l.kind {
                *num_output = 64;
            }
        }
        let d = run(&edited, &plan);
        assert!(d.has_code(Code::C025), "{}", d.render());
    }

    #[test]
    fn missing_layers_report_c025() {
        let net = zoo::lenet();
        let mut plan = PlanBuilder::new(&net).build().unwrap();
        plan.pes.pop();
        let d = run(&net, &plan);
        assert!(d.has_code(Code::C025), "{}", d.render());
    }

    #[test]
    fn narrow_datamover_notes_c026() {
        let net = zoo::tc1();
        let mut plan = PlanBuilder::new(&net).build().unwrap();
        plan.datamover_words_per_cycle = 1;
        // Crank PE parallelism so PEs outrun the 1-word stream.
        for pe in &mut plan.pes {
            pe.parallelism.parallel_in = pe.parallelism.parallel_in.max(1);
        }
        plan.input_words_per_image = 1_000_000;
        let d = run(&net, &plan);
        assert!(d.has_code(Code::C026), "{}", d.render());
    }
}
