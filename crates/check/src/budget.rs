//! Resource-budget verification against the board catalog (pass 3).
//!
//! Runs the analytic synthesis model over the plan and compares the
//! estimate against the *usable* resources of the target board (device
//! capacity minus the shell/platform reservation — on AWS F1 the shell
//! keeps 20 % of the VU9P). Reports per-module utilisation so the
//! offending stage is named, not just the total.

use crate::diag::{Code, Diagnostic, Diagnostics};
use condor_dataflow::AcceleratorPlan;
use condor_fpga::Resources;
use condor_hls::{synthesize_plan, PlanSynthesis};

/// Utilisation of one synthesized module against the board budget.
#[derive(Clone, Debug, PartialEq)]
pub struct StageUtilization {
    /// Module instance name (`pe0`, `pe0_filters`, `datamover`, ...).
    pub module: String,
    /// Estimated resources.
    pub resources: Resources,
    /// The module's binding constraint as a percentage of the budget.
    pub max_pct: f64,
}

/// Outcome of the budget pass, carried on the check report.
#[derive(Clone, Debug, PartialEq)]
pub struct BudgetOutcome {
    /// Synthesis estimate, when the board was known.
    pub synthesis: Option<PlanSynthesis>,
    /// Per-module utilisation, largest first.
    pub stages: Vec<StageUtilization>,
    /// The board's usable resource budget, when known.
    pub budget: Option<Resources>,
}

/// Runs the budget pass, appending findings to `diags`.
pub fn check_budget(plan: &AcceleratorPlan, diags: &mut Diagnostics) -> BudgetOutcome {
    let Some(board) = condor_fpga::board(&plan.board) else {
        let known = condor_fpga::BOARDS
            .iter()
            .map(|b| b.name)
            .collect::<Vec<_>>()
            .join(", ");
        diags.push(
            Diagnostic::new(Code::C034, format!("unknown board '{}'", plan.board))
                .hint(format!("known boards: {known}")),
        );
        return BudgetOutcome {
            synthesis: None,
            stages: Vec::new(),
            budget: None,
        };
    };
    let device = board.device();
    let budget = board.usable_resources();
    let synth = synthesize_plan(plan, device);

    let mut stages: Vec<StageUtilization> = synth
        .modules
        .iter()
        .map(|m| StageUtilization {
            module: m.name.clone(),
            resources: m.resources,
            max_pct: m.resources.utilization(&budget).max_pct(),
        })
        .collect();
    stages.sort_by(|a, b| b.max_pct.total_cmp(&a.max_pct));

    for m in &synth.modules {
        if !m.resources.fits_in(&budget) {
            diags.push(
                Diagnostic::new(
                    Code::C031,
                    format!(
                        "module alone needs {} but the whole budget is {}",
                        m.resources, budget
                    ),
                )
                .at(m.name.clone())
                .hint("no amount of rebalancing helps; shrink this stage"),
            );
        }
    }

    let total_u = synth.total.utilization(&budget);
    if !synth.total.fits_in(&budget) {
        diags.push(
            Diagnostic::new(
                Code::C030,
                format!(
                    "design needs {} but '{}' offers {} ({})",
                    synth.total, board.name, budget, total_u
                ),
            )
            .hint("reduce parallelism, increase fusion, or pick a larger board"),
        );
    } else if total_u.max_pct() > 90.0 {
        diags.push(
            Diagnostic::new(
                Code::C032,
                format!("utilisation {total_u} leaves little placement slack"),
            )
            .hint("expect timing pressure; consider one notch less parallelism"),
        );
    }

    if synth.achieved_fmax_mhz + 1e-9 < synth.requested_fmax_mhz {
        diags.push(
            Diagnostic::new(
                Code::C033,
                format!(
                    "requested {:.0} MHz, model closes timing at {:.1} MHz",
                    synth.requested_fmax_mhz, synth.achieved_fmax_mhz
                ),
            )
            .hint("lower the requested clock or shrink the design"),
        );
    }

    BudgetOutcome {
        synthesis: Some(synth),
        stages,
        budget: Some(budget),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::indexing_slicing)]
    use super::*;
    use condor_dataflow::{PeParallelism, PlanBuilder};
    use condor_nn::zoo;

    fn run(plan: &AcceleratorPlan) -> (Diagnostics, BudgetOutcome) {
        let mut d = Diagnostics::new();
        let out = check_budget(plan, &mut d);
        (d, out)
    }

    #[test]
    fn lenet_on_f1_is_within_budget() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).freq_mhz(180.0).build().unwrap();
        let (d, out) = run(&plan);
        assert!(!d.has_errors(), "{}", d.render());
        assert!(out.synthesis.is_some());
        assert!(!out.stages.is_empty());
        // Stages come back sorted by pressure.
        let pcts: Vec<f64> = out.stages.iter().map(|s| s.max_pct).collect();
        assert!(pcts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn vgg16_fc_blows_the_f1_bram_budget() {
        // The paper's own limitation: VGG-16's fully-connected layers
        // buffer the whole weight matrix on chip and are not
        // synthesizable with the current methodology.
        let net = zoo::vgg16();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let (d, _) = run(&plan);
        assert!(d.has_code(Code::C030), "{}", d.render());
        assert!(d.has_code(Code::C031), "{}", d.render());
    }

    #[test]
    fn big_parallelism_on_pynq_reports_c030() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net)
            .board("pynq-z1")
            .parallelism(PeParallelism {
                parallel_in: 16,
                parallel_out: 16,
                fc_simd: 1,
            })
            .build()
            .unwrap();
        let (d, _) = run(&plan);
        assert!(d.has_code(Code::C030), "{}", d.render());
    }

    #[test]
    fn unknown_board_reports_c034() {
        let net = zoo::lenet();
        let mut plan = PlanBuilder::new(&net).build().unwrap();
        plan.board = "no-such-board".to_string();
        let (d, out) = run(&plan);
        assert!(d.has_code(Code::C034), "{}", d.render());
        assert!(out.synthesis.is_none());
        assert!(out.budget.is_none());
    }

    #[test]
    fn unachievable_clock_warns_c033() {
        let net = zoo::vgg16();
        let fe = net.feature_extraction_prefix().unwrap();
        let plan = PlanBuilder::new(&fe)
            .freq_mhz(300.0)
            .parallelism(PeParallelism {
                parallel_in: 16,
                parallel_out: 16,
                fc_simd: 1,
            })
            .build()
            .unwrap();
        let (d, _) = run(&plan);
        assert!(d.has_code(Code::C033), "{}", d.render());
    }
}
