//! Seeded-defect corpus: known-bad networks and plans with the exact
//! diagnostic each must trigger.
//!
//! This is the negative half of the checker's contract (the positive
//! half being "every builder-produced plan is clean"): each entry
//! mutates a valid zoo network or plan into one of the defect classes
//! the issue tracker cares about, and records the stable code the
//! checker must emit. CI runs `condor check --defects` over this
//! corpus, and property tests assert the expected code appears.

use crate::diag::Code;
use condor_dataflow::{AcceleratorPlan, PeParallelism, PlanBuilder};
use condor_nn::{zoo, Layer, LayerKind, Network};
use condor_tensor::{Shape, Tensor};

/// The defect classes the checker must catch statically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefectClass {
    /// Shape or stream-type errors in the network itself.
    ShapeMismatch,
    /// Designs that cannot fit the target board.
    OverBudget,
    /// Mis-sized filter-chain FIFOs and broken plan structure.
    FifoUndersized,
}

impl DefectClass {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DefectClass::ShapeMismatch => "shape-mismatch",
            DefectClass::OverBudget => "over-budget",
            DefectClass::FifoUndersized => "fifo-undersized",
        }
    }
}

/// One deliberately broken design point.
pub struct SeededDefect {
    /// Corpus entry name.
    pub name: &'static str,
    /// Which class of defect was seeded.
    pub class: DefectClass,
    /// The stable code the checker must report.
    pub expected: Code,
    /// The (possibly broken) network.
    pub network: Network,
    /// The (possibly broken) plan; `None` when the network is too
    /// broken to plan — the checker then runs the network passes only.
    pub plan: Option<AcceleratorPlan>,
}

/// Weight seed used for entries that need installed weights.
const WEIGHT_SEED: u64 = 7;

/// Builds the full corpus. Construction must not panic: defects are
/// injected through public fields, behind the constructors' backs,
/// exactly as a hand-edited representation file would arrive.
pub fn corpus() -> Vec<SeededDefect> {
    let mut out = Vec::new();

    // --- shape / stream typing -------------------------------------
    out.push(SeededDefect {
        name: "conv-kernel-exceeds-input",
        class: DefectClass::ShapeMismatch,
        expected: Code::C011,
        network: with_conv1_kernel(zoo::lenet(), 40),
        plan: None,
    });
    out.push(SeededDefect {
        name: "conv-zero-kernel",
        class: DefectClass::ShapeMismatch,
        expected: Code::C010,
        network: with_conv1_kernel(zoo::lenet(), 0),
        plan: None,
    });
    out.push(SeededDefect {
        name: "softmax-on-feature-map",
        class: DefectClass::ShapeMismatch,
        expected: Code::C012,
        network: {
            let mut net = zoo::lenet();
            net.layers.insert(
                2,
                Layer::new("early_prob", LayerKind::Softmax { log: false }),
            );
            net
        },
        plan: None,
    });
    out.push(SeededDefect {
        name: "stale-weights-wrong-fanin",
        class: DefectClass::ShapeMismatch,
        expected: Code::C015,
        network: {
            let mut net = zoo::lenet_weighted(WEIGHT_SEED);
            // conv2 expects 50×20×5×5; pretend pool1 used to emit 10
            // maps and the weights were never re-exported.
            if let Some(w) = net.weights.get_mut("conv2") {
                w.weights = Tensor::zeros(Shape::new(50, 10, 5, 5));
            }
            net
        },
        plan: planned(&zoo::lenet(), |b| b),
    });

    // --- resource budgets ------------------------------------------
    out.push(SeededDefect {
        name: "lenet-16x16-on-pynq-z1",
        class: DefectClass::OverBudget,
        expected: Code::C030,
        network: zoo::lenet(),
        plan: planned(&zoo::lenet(), |b| {
            b.board("pynq-z1").parallelism(PeParallelism {
                parallel_in: 16,
                parallel_out: 16,
                fc_simd: 1,
            })
        }),
    });
    out.push(SeededDefect {
        name: "vgg16-fc-on-aws-f1",
        class: DefectClass::OverBudget,
        expected: Code::C030,
        network: zoo::vgg16(),
        plan: planned(&zoo::vgg16(), |b| b),
    });
    out.push(SeededDefect {
        name: "unknown-board",
        class: DefectClass::OverBudget,
        expected: Code::C034,
        network: zoo::lenet(),
        plan: planned(&zoo::lenet(), |b| b).map(|mut p| {
            p.board = "pynq-z9".to_string();
            p
        }),
    });

    // --- FIFO sizing / plan structure ------------------------------
    out.push(SeededDefect {
        name: "row-fifo-undersized",
        class: DefectClass::FifoUndersized,
        expected: Code::C023,
        network: zoo::lenet(),
        plan: planned(&zoo::lenet(), |b| b).map(|mut p| {
            if let Some(pe) = p.pes.first_mut() {
                let depths = pe
                    .required_fifo_depths()
                    .into_iter()
                    .map(|d| if d > 1 { 2 } else { d })
                    .collect();
                pe.fifo_depth_override = Some(depths);
            }
            p
        }),
    });
    out.push(SeededDefect {
        name: "all-fifos-shallow-deadlock",
        class: DefectClass::FifoUndersized,
        expected: Code::C024,
        network: zoo::lenet(),
        plan: planned(&zoo::lenet(), |b| b).map(|mut p| {
            if let Some(pe) = p.pes.first_mut() {
                pe.fifo_depth_override = Some(vec![1; pe.required_fifo_depths().len()]);
            }
            p
        }),
    });
    out.push(SeededDefect {
        name: "zero-parallelism-degree",
        class: DefectClass::FifoUndersized,
        expected: Code::C021,
        network: zoo::lenet(),
        plan: planned(&zoo::lenet(), |b| b).map(|mut p| {
            if let Some(pe) = p.pes.first_mut() {
                pe.parallelism.parallel_in = 0;
            }
            p
        }),
    });

    out
}

/// Replaces conv1's kernel through the public field, as a corrupted
/// representation file would.
fn with_conv1_kernel(mut net: Network, k: usize) -> Network {
    if let Some(l) = net.layers.iter_mut().find(|l| l.name == "conv1") {
        if let LayerKind::Convolution { kernel, .. } = &mut l.kind {
            *kernel = k;
        }
    }
    net
}

/// Builds a plan for a *valid* network, applying `cfg` to the builder.
/// Returns `None` (never panics) if the build is rejected.
fn planned(
    net: &Network,
    cfg: impl for<'a> FnOnce(PlanBuilder<'a>) -> PlanBuilder<'a>,
) -> Option<AcceleratorPlan> {
    cfg(PlanBuilder::new(net)).build().ok()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn corpus_covers_all_three_classes() {
        let corpus = corpus();
        assert!(corpus.len() >= 9);
        for class in [
            DefectClass::ShapeMismatch,
            DefectClass::OverBudget,
            DefectClass::FifoUndersized,
        ] {
            assert!(
                corpus.iter().any(|d| d.class == class),
                "missing {}",
                class.label()
            );
        }
    }

    #[test]
    fn corpus_names_are_unique() {
        let mut names: Vec<_> = corpus().iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus().len());
    }

    #[test]
    fn plan_carrying_entries_built_successfully() {
        // Entries whose defect lives in the plan must actually carry one;
        // only the unplannable shape defects may omit it.
        for d in corpus() {
            if d.class != DefectClass::ShapeMismatch {
                assert!(d.plan.is_some(), "{} lost its plan", d.name);
            }
        }
    }
}
