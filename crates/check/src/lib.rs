//! # condor-check
//!
//! A static verifier for Condor accelerator plans. It runs entirely
//! without executing the design — no golden inference, no cycle-level
//! simulation — and answers three questions the build flow and the
//! design-space exploration need answered *before* spending HLS time:
//!
//! 1. **Is the network well-typed?** Full shape/stream inference over
//!    every layer, collecting all findings instead of stopping at the
//!    first (pass 1, [`shape`]).
//! 2. **Can the pipeline move data?** The planned accelerator is a
//!    synchronous-dataflow graph with static rates, so FIFO sizing and
//!    deadlock-freedom reduce to balance and fill equations (pass 2,
//!    [`sdf`]).
//! 3. **Does it fit the board?** The analytic synthesis model against
//!    the board catalog's usable resources, per module (pass 3,
//!    [`budget`]).
//!
//! Findings are [`diag::Diagnostic`]s with stable `C0xx` codes,
//! rendered human-readable or as JSON. The [`prefilter`] module reuses
//! the machinery to prune statically-infeasible DSE points, and
//! [`defects`] holds the seeded-defect corpus CI checks the checker
//! against.

#![forbid(unsafe_code)]
#![deny(clippy::indexing_slicing)]

pub mod budget;
pub mod defects;
pub mod diag;
pub mod prefilter;
pub mod sdf;
pub mod shape;

pub use budget::{BudgetOutcome, StageUtilization};
pub use defects::{corpus, DefectClass, SeededDefect};
pub use diag::{Code, Diagnostic, Diagnostics, Severity};
pub use prefilter::PlanBounds;

use condor_cjson::Value;
use condor_dataflow::AcceleratorPlan;
use condor_fpga::Resources;
use condor_hls::PlanSynthesis;
use condor_nn::Network;

/// Everything one verification run found.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// What was checked, for report headers.
    pub subject: String,
    /// All findings, in pass order.
    pub diagnostics: Diagnostics,
    /// Synthesis estimate from the budget pass, when a board resolved.
    pub synthesis: Option<PlanSynthesis>,
    /// Per-module utilisation, highest pressure first.
    pub stages: Vec<StageUtilization>,
    /// The board's usable budget, when known.
    pub budget: Option<Resources>,
}

impl CheckReport {
    /// True when no error-severity finding exists (warnings allowed).
    pub fn passed(&self) -> bool {
        !self.diagnostics.has_errors()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        let mut out = format!(
            "condor check: {} — {} ({} error(s), {} warning(s))\n",
            self.subject,
            verdict,
            self.diagnostics.error_count(),
            self.diagnostics.warning_count(),
        );
        if !self.diagnostics.is_empty() {
            out.push_str(&self.diagnostics.render());
            out.push('\n');
        }
        if let (Some(synth), Some(budget)) = (&self.synthesis, &self.budget) {
            let u = synth.total.utilization(budget);
            out.push_str(&format!("  total: {} ({u})\n", synth.total));
            for s in &self.stages {
                out.push_str(&format!(
                    "    {:<16} {:>6.2}%  {}\n",
                    s.module, s.max_pct, s.resources
                ));
            }
        }
        out
    }

    /// Machine-readable report (cjson).
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![
            ("subject".to_string(), Value::str(self.subject.clone())),
            (
                "status".to_string(),
                Value::str(if self.passed() { "pass" } else { "fail" }),
            ),
            (
                "errors".to_string(),
                Value::int(self.diagnostics.error_count() as i64),
            ),
            (
                "warnings".to_string(),
                Value::int(self.diagnostics.warning_count() as i64),
            ),
            ("diagnostics".to_string(), self.diagnostics.to_json()),
        ];
        if let (Some(synth), Some(budget)) = (&self.synthesis, &self.budget) {
            pairs.push(("total".to_string(), resources_json(&synth.total)));
            pairs.push(("budget".to_string(), resources_json(budget)));
            pairs.push((
                "achieved_fmax_mhz".to_string(),
                Value::float(synth.achieved_fmax_mhz),
            ));
            pairs.push((
                "modules".to_string(),
                Value::Array(
                    self.stages
                        .iter()
                        .map(|s| {
                            Value::object([
                                ("name".to_string(), Value::str(s.module.clone())),
                                ("max_pct".to_string(), Value::float(s.max_pct)),
                                ("resources".to_string(), resources_json(&s.resources)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Value::object(pairs)
    }
}

fn resources_json(r: &Resources) -> Value {
    Value::object([
        ("lut".to_string(), Value::int(r.lut as i64)),
        ("ff".to_string(), Value::int(r.ff as i64)),
        ("dsp".to_string(), Value::int(r.dsp as i64)),
        ("bram_36k".to_string(), Value::int(r.bram_36k as i64)),
        ("uram".to_string(), Value::int(r.uram as i64)),
    ])
}

/// Verifies a network together with its accelerator plan: all three
/// passes, every finding collected.
pub fn check(net: &Network, plan: &AcceleratorPlan) -> CheckReport {
    let mut diags = Diagnostics::new();
    let ins = shape::check_network(net, &mut diags);
    sdf::check_plan(net, plan, &ins, &mut diags);
    let outcome = budget::check_budget(plan, &mut diags);
    CheckReport {
        subject: format!("{} on {}", net.name, plan.board),
        diagnostics: diags,
        synthesis: outcome.synthesis,
        stages: outcome.stages,
        budget: outcome.budget,
    }
}

/// Verifies a network alone (no plan yet): shape/stream pass only.
pub fn check_network(net: &Network) -> CheckReport {
    let mut diags = Diagnostics::new();
    shape::check_network(net, &mut diags);
    CheckReport {
        subject: net.name.clone(),
        diagnostics: diags,
        synthesis: None,
        stages: Vec::new(),
        budget: None,
    }
}

/// Verifies a seeded defect entry, using whichever passes its plan (or
/// lack of one) allows.
pub fn check_defect(d: &defects::SeededDefect) -> CheckReport {
    match &d.plan {
        Some(plan) => check(&d.network, plan),
        None => check_network(&d.network),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_dataflow::PlanBuilder;
    use condor_nn::zoo;

    #[test]
    fn lenet_report_passes_and_renders() {
        let net = zoo::lenet_weighted(1);
        let plan = PlanBuilder::new(&net).freq_mhz(180.0).build().unwrap();
        let report = check(&net, &plan);
        assert!(report.passed(), "{}", report.render());
        let text = report.render();
        assert!(text.contains("PASS"));
        assert!(text.contains("total:"));
    }

    #[test]
    fn vgg16_report_fails_with_budget_codes() {
        let net = zoo::vgg16();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let report = check(&net, &plan);
        assert!(!report.passed());
        assert!(
            report.diagnostics.has_code(Code::C030),
            "{}",
            report.render()
        );
    }

    #[test]
    fn json_report_is_parseable_and_complete() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let report = check(&net, &plan);
        let text = condor_cjson::to_string_pretty(&report.to_json());
        let v = condor_cjson::parse(&text).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("pass"));
        assert!(v.get("modules").and_then(Value::as_array).is_some());
        assert!(v.get("diagnostics").and_then(Value::as_array).is_some());
    }

    #[test]
    fn every_defect_yields_its_expected_code() {
        for d in defects::corpus() {
            let report = check_defect(&d);
            assert!(
                report.diagnostics.has_code(d.expected),
                "{}: expected {}, got [{}]\n{}",
                d.name,
                d.expected,
                report.diagnostics.codes().join(", "),
                report.render()
            );
            assert!(!report.passed(), "{} must fail", d.name);
        }
    }

    #[test]
    fn network_only_check_skips_plan_passes() {
        let report = check_network(&zoo::lenet());
        assert!(report.passed());
        assert!(report.synthesis.is_none());
    }
}
