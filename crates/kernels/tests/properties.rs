//! Property tests for the compute-kernel layer: the blocked GEMM against
//! a textbook triple loop, and the im2col lowering against per-element
//! padded gathers, across randomly drawn shapes and geometries.

#![allow(clippy::unwrap_used)] // test code: unwrap is the assertion

use condor_kernels::{gemm_f32, gemv, im2col, ConvGeometry, Epilogue, GemmBlocking};
use condor_tensor::{Shape, Tensor, TensorRng};
use proptest::prelude::*;

/// Textbook `C = A·B` with the same ascending-`k` reduction order the
/// blocked kernel guarantees.
fn naive_matmul(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            for j in 0..n {
                c[i * n + j] += a[i * k + p] * b[p * n + j];
            }
        }
    }
    c
}

fn geometry(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> ConvGeometry {
    ConvGeometry {
        in_c: c,
        in_h: h,
        in_w: w,
        kernel: k,
        stride: s,
        pad: p,
        out_h: Shape::conv_out_dim(h, k, s, p),
        out_w: Shape::conv_out_dim(w, k, s, p),
    }
}

proptest! {
    /// The blocked GEMM agrees with the naive triple loop for every
    /// shape, and arbitrary blocking parameters are bit-identical to the
    /// default ones (the reduction order never depends on blocking).
    #[test]
    fn gemm_matches_naive_matmul(
        seed in any::<u64>(),
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..24,
        mc in 1usize..8,
        nc in 1usize..8,
        kc in 1usize..8,
    ) {
        let mut rng = TensorRng::seeded(seed);
        let a = rng.uniform(Shape::vector(m * k), -1.0, 1.0);
        let b = rng.uniform(Shape::vector(k * n), -1.0, 1.0);
        let mut c = vec![f32::NAN; m * n];
        gemm_f32(
            m, n, k,
            a.as_slice(), b.as_slice(), &mut c,
            GemmBlocking::default(), Epilogue::None,
        );
        let want = naive_matmul(m, n, k, a.as_slice(), b.as_slice());
        for (x, y) in c.iter().zip(&want) {
            prop_assert!((x - y).abs() < 1e-4, "({m},{n},{k}): {x} vs {y}");
        }
        let mut c2 = vec![f32::NAN; m * n];
        gemm_f32(
            m, n, k,
            a.as_slice(), b.as_slice(), &mut c2,
            GemmBlocking { mc, nc, kc }, Epilogue::None,
        );
        prop_assert_eq!(c, c2, "blocking changed the result bits");
    }

    /// Fused epilogues equal the plain GEMM followed by an explicit
    /// bias-add and leaky-ReLU pass, bit for bit.
    #[test]
    fn fused_epilogue_matches_separate_pass(
        seed in any::<u64>(),
        m in 1usize..12,
        n in 1usize..12,
        k in 1usize..12,
        slope in 0.0f32..0.5,
    ) {
        let mut rng = TensorRng::seeded(seed);
        let a = rng.uniform(Shape::vector(m * k), -1.0, 1.0);
        let b = rng.uniform(Shape::vector(k * n), -1.0, 1.0);
        let bias = rng.uniform(Shape::vector(m), -0.5, 0.5);
        let mut fused = vec![0.0f32; m * n];
        gemm_f32(
            m, n, k,
            a.as_slice(), b.as_slice(), &mut fused,
            GemmBlocking::default(), Epilogue::BiasRelu(bias.as_slice(), slope),
        );
        let mut plain = vec![0.0f32; m * n];
        gemm_f32(
            m, n, k,
            a.as_slice(), b.as_slice(), &mut plain,
            GemmBlocking::default(), Epilogue::None,
        );
        for i in 0..m {
            for j in 0..n {
                let v = plain[i * n + j] + bias.as_slice()[i];
                plain[i * n + j] = if v >= 0.0 { v } else { slope * v };
            }
        }
        prop_assert_eq!(fused, plain);
    }

    /// The fully-connected GEMV agrees with the naive per-row dot
    /// product within accumulation-order tolerance.
    #[test]
    fn gemv_matches_naive_dot(
        seed in any::<u64>(),
        m in 1usize..20,
        k in 1usize..64,
    ) {
        let mut rng = TensorRng::seeded(seed);
        let w = rng.uniform(Shape::vector(m * k), -1.0, 1.0);
        let x = rng.uniform(Shape::vector(k), -1.0, 1.0);
        let mut y = vec![f32::NAN; m];
        gemv(m, k, w.as_slice(), x.as_slice(), None, None, &mut y);
        for (i, got) in y.iter().enumerate() {
            let want: f32 = (0..k)
                .map(|p| w.as_slice()[i * k + p] * x.as_slice()[p])
                .sum();
            prop_assert!((got - want).abs() < 1e-4, "row {i}: {got} vs {want}");
        }
    }

    /// Every im2col element equals the corresponding zero-padded read of
    /// the input tensor, for arbitrary geometry.
    #[test]
    fn im2col_matches_padded_gather(
        seed in any::<u64>(),
        c in 1usize..4,
        h in 3usize..10,
        w in 3usize..10,
        k in 1usize..5,
        s in 1usize..4,
        p in 0usize..3,
    ) {
        prop_assume!(h + 2 * p >= k && w + 2 * p >= k);
        let geo = geometry(c, h, w, k, s, p);
        let input = TensorRng::seeded(seed).uniform(Shape::chw(c, h, w), -1.0, 1.0);
        let mut cols = vec![f32::NAN; geo.lowered_len()];
        im2col(input.as_slice(), &geo, &mut cols);
        let n_cols = geo.lowered_cols();
        for ci in 0..c {
            for m_ in 0..k {
                for n_ in 0..k {
                    let row = (ci * k + m_) * k + n_;
                    for i in 0..geo.out_h {
                        for j in 0..geo.out_w {
                            let got = cols[row * n_cols + i * geo.out_w + j];
                            let want = input.at_padded(
                                0,
                                ci,
                                (i * s + m_) as isize,
                                (j * s + n_) as isize,
                                p,
                            );
                            prop_assert_eq!(got, want, "row {} col ({},{})", row, i, j);
                        }
                    }
                }
            }
        }
    }

    /// The identity geometry (1×1 kernel, unit stride, no padding)
    /// round-trips: the lowered matrix *is* the input, so the lowering
    /// can be skipped without changing results.
    #[test]
    fn identity_lowering_round_trips(
        seed in any::<u64>(),
        c in 1usize..5,
        h in 1usize..9,
        w in 1usize..9,
    ) {
        let geo = geometry(c, h, w, 1, 1, 0);
        prop_assert!(geo.is_identity());
        let input = TensorRng::seeded(seed).uniform(Shape::chw(c, h, w), -1.0, 1.0);
        let mut cols = vec![f32::NAN; geo.lowered_len()];
        im2col(input.as_slice(), &geo, &mut cols);
        prop_assert_eq!(cols.as_slice(), input.as_slice());
        let back = Tensor::from_vec(Shape::chw(c, h, w), cols);
        prop_assert_eq!(back.as_slice(), input.as_slice());
    }
}
