//! im2col lowering: convolution as matrix multiplication.
//!
//! `im2col` unrolls every sliding-window patch of a `C×H×W` feature-map
//! stack into one column of a `(C·K·K) × (outH·outW)` matrix. With the
//! filter bank viewed as an `F × (C·K·K)` row-major matrix (exactly the
//! layout of a Caffe weight blob), convolution becomes a single GEMM —
//! the lowering fpgaConvNet and Caffeinated FPGAs treat as the central
//! dataflow for convolutional layers, realised here in software.
//!
//! The output buffer is caller-provided so a per-engine workspace can be
//! reused across layers and images with zero steady-state allocation.

/// Geometry of one convolution lowering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Sliding-window stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
    /// Output height (`conv_out_dim(in_h, ...)`).
    pub out_h: usize,
    /// Output width (`conv_out_dim(in_w, ...)`).
    pub out_w: usize,
}

impl ConvGeometry {
    /// Rows of the lowered patch matrix (`C·K·K` — the GEMM reduction
    /// depth).
    pub fn lowered_rows(&self) -> usize {
        self.in_c * self.kernel * self.kernel
    }

    /// Columns of the lowered patch matrix (`outH·outW` — one per output
    /// pixel).
    pub fn lowered_cols(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Elements the lowering workspace must hold.
    pub fn lowered_len(&self) -> usize {
        self.lowered_rows() * self.lowered_cols()
    }

    /// True when the lowering is the identity (1×1 kernel, unit stride,
    /// no padding) and the input itself already is the patch matrix.
    pub fn is_identity(&self) -> bool {
        self.kernel == 1 && self.stride == 1 && self.pad == 0
    }
}

/// Lowers `input` (a `C×H×W` stack in row-major NCHW order) into `cols`,
/// the `(C·K·K) × (outH·outW)` row-major patch matrix.
///
/// Row `(c·K + m)·K + n`, column `i·outW + j` holds the zero-padded read
/// `x[c, i·stride + m − pad, j·stride + n − pad]`. Unit-stride rows are
/// copied with `copy_from_slice` (the patch row is contiguous in the
/// input); other strides fall back to a per-element gather.
///
/// # Panics
/// Panics when `input` or `cols` disagree with the geometry.
pub fn im2col(input: &[f32], geo: &ConvGeometry, cols: &mut [f32]) {
    assert_eq!(
        input.len(),
        geo.in_c * geo.in_h * geo.in_w,
        "input length does not match geometry"
    );
    assert_eq!(cols.len(), geo.lowered_len(), "workspace length mismatch");
    let (k, stride, pad) = (geo.kernel, geo.stride, geo.pad);
    let (in_h, in_w) = (geo.in_h, geo.in_w);
    let (out_h, out_w) = (geo.out_h, geo.out_w);
    let n_cols = geo.lowered_cols();

    for c in 0..geo.in_c {
        let map = &input[c * in_h * in_w..(c + 1) * in_h * in_w];
        for m in 0..k {
            for n in 0..k {
                let row = (c * k + m) * k + n;
                let dst_row = &mut cols[row * n_cols..(row + 1) * n_cols];
                for i in 0..out_h {
                    let dst = &mut dst_row[i * out_w..(i + 1) * out_w];
                    let ih = (i * stride + m) as isize - pad as isize;
                    if ih < 0 || ih >= in_h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_row = &map[ih as usize * in_w..(ih as usize + 1) * in_w];
                    if stride == 1 {
                        // iw = j + n - pad: a contiguous slice of the
                        // input row, with zero fringes where it leaves
                        // the image.
                        let shift = n as isize - pad as isize;
                        let j_lo = (-shift).max(0) as usize;
                        let j_hi = (in_w as isize - shift).clamp(0, out_w as isize) as usize;
                        dst[..j_lo.min(out_w)].fill(0.0);
                        if j_lo < j_hi {
                            let src_lo = (j_lo as isize + shift) as usize;
                            dst[j_lo..j_hi]
                                .copy_from_slice(&src_row[src_lo..src_lo + (j_hi - j_lo)]);
                        }
                        dst[j_hi.max(j_lo).min(out_w)..].fill(0.0);
                    } else {
                        for (j, v) in dst.iter_mut().enumerate() {
                            let iw = (j * stride + n) as isize - pad as isize;
                            *v = if iw < 0 || iw >= in_w as isize {
                                0.0
                            } else {
                                src_row[iw as usize]
                            };
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_tensor::{Shape, Tensor, TensorRng};

    fn geometry(
        in_c: usize,
        in_h: usize,
        in_w: usize,
        k: usize,
        s: usize,
        p: usize,
    ) -> ConvGeometry {
        ConvGeometry {
            in_c,
            in_h,
            in_w,
            kernel: k,
            stride: s,
            pad: p,
            out_h: Shape::conv_out_dim(in_h, k, s, p),
            out_w: Shape::conv_out_dim(in_w, k, s, p),
        }
    }

    /// Reference lowering through `Tensor::at_padded`.
    fn reference(input: &Tensor, geo: &ConvGeometry) -> Vec<f32> {
        let mut cols = vec![0.0; geo.lowered_len()];
        let n_cols = geo.lowered_cols();
        for c in 0..geo.in_c {
            for m in 0..geo.kernel {
                for n in 0..geo.kernel {
                    let row = (c * geo.kernel + m) * geo.kernel + n;
                    for i in 0..geo.out_h {
                        for j in 0..geo.out_w {
                            cols[row * n_cols + i * geo.out_w + j] = input.at_padded(
                                0,
                                c,
                                (i * geo.stride + m) as isize,
                                (j * geo.stride + n) as isize,
                                geo.pad,
                            );
                        }
                    }
                }
            }
        }
        cols
    }

    #[test]
    fn identity_geometry_is_a_copy() {
        let geo = geometry(3, 4, 5, 1, 1, 0);
        assert!(geo.is_identity());
        let input: Vec<f32> = (0..60).map(|v| v as f32).collect();
        let mut cols = vec![0.0; geo.lowered_len()];
        im2col(&input, &geo, &mut cols);
        assert_eq!(cols, input);
    }

    #[test]
    fn matches_padded_reads_across_geometries() {
        let mut rng = TensorRng::seeded(11);
        for (c, h, w, k, s, p) in [
            (1, 5, 5, 3, 1, 0),
            (2, 6, 7, 3, 1, 1),
            (3, 8, 8, 5, 1, 2),
            (2, 9, 9, 3, 2, 1),
            (1, 7, 4, 2, 3, 0),
            (4, 6, 6, 2, 2, 1),
        ] {
            let geo = geometry(c, h, w, k, s, p);
            let t = rng.uniform(Shape::chw(c, h, w), -1.0, 1.0);
            let mut cols = vec![f32::NAN; geo.lowered_len()];
            im2col(t.as_slice(), &geo, &mut cols);
            assert_eq!(
                cols,
                reference(&t, &geo),
                "geometry ({c},{h},{w},k{k},s{s},p{p})"
            );
        }
    }

    #[test]
    #[should_panic(expected = "workspace length mismatch")]
    fn short_workspace_is_rejected() {
        let geo = geometry(1, 4, 4, 3, 1, 0);
        im2col(&[0.0; 16], &geo, &mut [0.0; 3]);
    }
}
