//! im2col lowering: convolution as matrix multiplication.
//!
//! `im2col` unrolls every sliding-window patch of a `C×H×W` feature-map
//! stack into one column of a `(C·K·K) × (outH·outW)` matrix. With the
//! filter bank viewed as an `F × (C·K·K)` row-major matrix (exactly the
//! layout of a Caffe weight blob), convolution becomes a single GEMM —
//! the lowering fpgaConvNet and Caffeinated FPGAs treat as the central
//! dataflow for convolutional layers, realised here in software.
//!
//! The output buffer is caller-provided so a per-engine workspace can be
//! reused across layers and images with zero steady-state allocation.

/// Geometry of one convolution lowering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_c: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Sliding-window stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
    /// Output height (`conv_out_dim(in_h, ...)`).
    pub out_h: usize,
    /// Output width (`conv_out_dim(in_w, ...)`).
    pub out_w: usize,
}

impl ConvGeometry {
    /// Rows of the lowered patch matrix (`C·K·K` — the GEMM reduction
    /// depth).
    pub fn lowered_rows(&self) -> usize {
        self.in_c * self.kernel * self.kernel
    }

    /// Columns of the lowered patch matrix (`outH·outW` — one per output
    /// pixel).
    pub fn lowered_cols(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Elements the lowering workspace must hold.
    pub fn lowered_len(&self) -> usize {
        self.lowered_rows() * self.lowered_cols()
    }

    /// True when the lowering is the identity (1×1 kernel, unit stride,
    /// no padding) and the input itself already is the patch matrix.
    pub fn is_identity(&self) -> bool {
        self.kernel == 1 && self.stride == 1 && self.pad == 0
    }
}

/// Lowers `input` (a `C×H×W` stack in row-major NCHW order) into `cols`,
/// the `(C·K·K) × (outH·outW)` row-major patch matrix.
///
/// Row `(c·K + m)·K + n`, column `i·outW + j` holds the zero-padded read
/// `x[c, i·stride + m − pad, j·stride + n − pad]`. Unit-stride rows are
/// copied with `copy_from_slice` (the patch row is contiguous in the
/// input); other strides fall back to a per-element gather.
///
/// # Panics
/// Panics when `input` or `cols` disagree with the geometry.
pub fn im2col(input: &[f32], geo: &ConvGeometry, cols: &mut [f32]) {
    im2col_impl(input, geo, cols, 0.0);
}

/// [`im2col`] over quantized `i8` feature maps — the identical lowering
/// (symmetric quantization maps real 0 to quantized 0, so zero padding
/// is untouched), feeding the packed GEMM in [`crate::qgemm`].
///
/// # Panics
/// Panics when `input` or `cols` disagree with the geometry.
pub fn im2col_i8(input: &[i8], geo: &ConvGeometry, cols: &mut [i8]) {
    im2col_impl(input, geo, cols, 0);
}

/// Patch-major int8 lowering: writes the **transposed** patch matrix,
/// `(outH·outW) × (C·K·K)` row-major, where each output pixel's patch is
/// one contiguous `C·K·K` slice — exactly the `b_t` operand of the
/// packed GEMM ([`crate::qgemm::gemm_i8`]), so quantized convolution
/// needs no transpose or panel repack between lowering and compute.
///
/// Unlike the row-major lowering, the identity geometry (1×1 kernel) is
/// *not* a copy here — the patch layout is the input's transpose — so
/// callers always lower through this function.
///
/// Patches stay `i8` rather than being pre-widened to the GEMM's `i16`
/// compute format: the GEMM stages cache-sized blocks through a recycled
/// `i16` plane instead, so the full patch matrix is read from memory at
/// `i8` density (half the cold traffic of an `i16` plane — measured
/// faster end-to-end than emitting `i16` here).
///
/// # Panics
/// Panics when `input` or `patches` disagree with the geometry.
pub fn im2col_i8_patches(input: &[i8], geo: &ConvGeometry, patches: &mut [i8]) {
    assert_eq!(
        input.len(),
        geo.in_c * geo.in_h * geo.in_w,
        "input length does not match geometry"
    );
    assert_eq!(
        patches.len(),
        geo.lowered_len(),
        "workspace length mismatch"
    );
    let (k, stride, pad) = (geo.kernel, geo.stride, geo.pad);
    let (in_h, in_w) = (geo.in_h, geo.in_w);
    let k_depth = geo.lowered_rows();

    for (col, patch) in patches.chunks_mut(k_depth.max(1)).enumerate() {
        let oi = col / geo.out_w;
        let oj = col % geo.out_w;
        let h0 = (oi * stride) as isize - pad as isize;
        let w0 = (oj * stride) as isize - pad as isize;
        // Kernel-row runs are contiguous in the input for any stride
        // (stride only moves the patch origin), so each (c, m) pair is
        // one clipped memcpy plus zero fringes.
        let n_lo = (-w0).max(0) as usize;
        let n_hi = (in_w as isize - w0).clamp(0, k as isize) as usize;
        for c in 0..geo.in_c {
            let map = &input[c * in_h * in_w..(c + 1) * in_h * in_w];
            for m in 0..k {
                let dst = &mut patch[(c * k + m) * k..(c * k + m) * k + k];
                let ih = h0 + m as isize;
                if ih < 0 || ih >= in_h as isize {
                    dst.fill(0);
                    continue;
                }
                dst[..n_lo.min(k)].fill(0);
                if n_lo < n_hi {
                    let src0 = ih as usize * in_w + (w0 + n_lo as isize) as usize;
                    dst[n_lo..n_hi].copy_from_slice(&map[src0..src0 + (n_hi - n_lo)]);
                }
                dst[n_hi.max(n_lo)..].fill(0);
            }
        }
    }
}

fn im2col_impl<T: Copy>(input: &[T], geo: &ConvGeometry, cols: &mut [T], zero: T) {
    assert_eq!(
        input.len(),
        geo.in_c * geo.in_h * geo.in_w,
        "input length does not match geometry"
    );
    assert_eq!(cols.len(), geo.lowered_len(), "workspace length mismatch");
    let (k, stride, pad) = (geo.kernel, geo.stride, geo.pad);
    let (in_h, in_w) = (geo.in_h, geo.in_w);
    let (out_h, out_w) = (geo.out_h, geo.out_w);
    let n_cols = geo.lowered_cols();

    for c in 0..geo.in_c {
        let map = &input[c * in_h * in_w..(c + 1) * in_h * in_w];
        for m in 0..k {
            for n in 0..k {
                let row = (c * k + m) * k + n;
                let dst_row = &mut cols[row * n_cols..(row + 1) * n_cols];
                for i in 0..out_h {
                    let dst = &mut dst_row[i * out_w..(i + 1) * out_w];
                    let ih = (i * stride + m) as isize - pad as isize;
                    if ih < 0 || ih >= in_h as isize {
                        dst.fill(zero);
                        continue;
                    }
                    let src_row = &map[ih as usize * in_w..(ih as usize + 1) * in_w];
                    if stride == 1 {
                        // iw = j + n - pad: a contiguous slice of the
                        // input row, with zero fringes where it leaves
                        // the image.
                        let shift = n as isize - pad as isize;
                        let j_lo = (-shift).max(0) as usize;
                        let j_hi = (in_w as isize - shift).clamp(0, out_w as isize) as usize;
                        dst[..j_lo.min(out_w)].fill(zero);
                        if j_lo < j_hi {
                            let src_lo = (j_lo as isize + shift) as usize;
                            dst[j_lo..j_hi]
                                .copy_from_slice(&src_row[src_lo..src_lo + (j_hi - j_lo)]);
                        }
                        dst[j_hi.max(j_lo).min(out_w)..].fill(zero);
                    } else {
                        for (j, v) in dst.iter_mut().enumerate() {
                            let iw = (j * stride + n) as isize - pad as isize;
                            *v = if iw < 0 || iw >= in_w as isize {
                                zero
                            } else {
                                src_row[iw as usize]
                            };
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_tensor::{Shape, Tensor, TensorRng};

    fn geometry(
        in_c: usize,
        in_h: usize,
        in_w: usize,
        k: usize,
        s: usize,
        p: usize,
    ) -> ConvGeometry {
        ConvGeometry {
            in_c,
            in_h,
            in_w,
            kernel: k,
            stride: s,
            pad: p,
            out_h: Shape::conv_out_dim(in_h, k, s, p),
            out_w: Shape::conv_out_dim(in_w, k, s, p),
        }
    }

    /// Reference lowering through `Tensor::at_padded`.
    fn reference(input: &Tensor, geo: &ConvGeometry) -> Vec<f32> {
        let mut cols = vec![0.0; geo.lowered_len()];
        let n_cols = geo.lowered_cols();
        for c in 0..geo.in_c {
            for m in 0..geo.kernel {
                for n in 0..geo.kernel {
                    let row = (c * geo.kernel + m) * geo.kernel + n;
                    for i in 0..geo.out_h {
                        for j in 0..geo.out_w {
                            cols[row * n_cols + i * geo.out_w + j] = input.at_padded(
                                0,
                                c,
                                (i * geo.stride + m) as isize,
                                (j * geo.stride + n) as isize,
                                geo.pad,
                            );
                        }
                    }
                }
            }
        }
        cols
    }

    #[test]
    fn identity_geometry_is_a_copy() {
        let geo = geometry(3, 4, 5, 1, 1, 0);
        assert!(geo.is_identity());
        let input: Vec<f32> = (0..60).map(|v| v as f32).collect();
        let mut cols = vec![0.0; geo.lowered_len()];
        im2col(&input, &geo, &mut cols);
        assert_eq!(cols, input);
    }

    #[test]
    fn matches_padded_reads_across_geometries() {
        let mut rng = TensorRng::seeded(11);
        for (c, h, w, k, s, p) in [
            (1, 5, 5, 3, 1, 0),
            (2, 6, 7, 3, 1, 1),
            (3, 8, 8, 5, 1, 2),
            (2, 9, 9, 3, 2, 1),
            (1, 7, 4, 2, 3, 0),
            (4, 6, 6, 2, 2, 1),
        ] {
            let geo = geometry(c, h, w, k, s, p);
            let t = rng.uniform(Shape::chw(c, h, w), -1.0, 1.0);
            let mut cols = vec![f32::NAN; geo.lowered_len()];
            im2col(t.as_slice(), &geo, &mut cols);
            assert_eq!(
                cols,
                reference(&t, &geo),
                "geometry ({c},{h},{w},k{k},s{s},p{p})"
            );
        }
    }

    #[test]
    fn i8_lowering_matches_f32_lowering() {
        for (c, h, w, k, s, p) in [(2, 6, 7, 3, 1, 1), (2, 9, 9, 3, 2, 1), (1, 7, 4, 2, 3, 0)] {
            let geo = geometry(c, h, w, k, s, p);
            let input_q: Vec<i8> = (0..c * h * w)
                .map(|v| ((v * 37 % 255) as i32 - 127) as i8)
                .collect();
            let input_f: Vec<f32> = input_q.iter().map(|&q| q as f32).collect();
            let mut cols_q = vec![1i8; geo.lowered_len()];
            im2col_i8(&input_q, &geo, &mut cols_q);
            let mut cols_f = vec![f32::NAN; geo.lowered_len()];
            im2col(&input_f, &geo, &mut cols_f);
            for (q, f) in cols_q.iter().zip(&cols_f) {
                assert_eq!(*q as f32, *f, "geometry ({c},{h},{w},k{k},s{s},p{p})");
            }
        }
    }

    #[test]
    fn patch_major_lowering_is_the_transpose_of_row_major() {
        for (c, h, w, k, s, p) in [
            (2, 6, 7, 3, 1, 1),
            (2, 9, 9, 3, 2, 1),
            (1, 7, 4, 2, 3, 0),
            (3, 4, 5, 1, 1, 0), // identity geometry: patches = inputᵀ
        ] {
            let geo = geometry(c, h, w, k, s, p);
            let input: Vec<i8> = (0..c * h * w)
                .map(|v| ((v * 41 % 255) as i32 - 127) as i8)
                .collect();
            let mut rows = vec![0i8; geo.lowered_len()];
            im2col_i8(&input, &geo, &mut rows);
            let mut patches = vec![1i8; geo.lowered_len()];
            im2col_i8_patches(&input, &geo, &mut patches);
            let (kd, nc) = (geo.lowered_rows(), geo.lowered_cols());
            for row in 0..kd {
                for col in 0..nc {
                    assert_eq!(
                        patches[col * kd + row],
                        rows[row * nc + col],
                        "geometry ({c},{h},{w},k{k},s{s},p{p}) at ({row},{col})"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "workspace length mismatch")]
    fn short_workspace_is_rejected() {
        let geo = geometry(1, 4, 4, 3, 1, 0);
        im2col(&[0.0; 16], &geo, &mut [0.0; 3]);
    }
}
