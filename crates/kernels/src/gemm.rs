//! Cache-blocked single-precision GEMM with fused epilogues.
//!
//! Computes `C = A · B` for row-major matrices (`A: m×k`, `B: k×n`,
//! `C: m×n`) using the classic three-level loop blocking (BLIS-style
//! `Nc`/`Kc`/`Mc` panels) so every hot inner loop runs over data that
//! fits the cache hierarchy, plus a 4-row micro-kernel that reuses each
//! loaded `B` element for four multiply-accumulates. The inner axpy loops
//! are written over exact-length slices so LLVM auto-vectorises them; no
//! `unsafe` is needed.
//!
//! Determinism: each output element accumulates its `k` products in
//! strictly ascending `k` order regardless of blocking parameters or
//! thread count (threads partition *rows*, never the reduction), so
//! results are bit-identical across configurations.

/// Loop-blocking parameters of the GEMM macro kernel.
///
/// Defaults target common x86/ARM cache sizes: a `kc × nc` panel of `B`
/// (256·512·4 B = 512 KiB worst case, usually far less) streams through
/// L2 while each row block of `C` (`nc` floats) stays resident in L1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GemmBlocking {
    /// Rows of `C` processed per macro-kernel panel.
    pub mc: usize,
    /// Columns of `C` processed per panel (contiguous, L1-resident).
    pub nc: usize,
    /// Depth of the reduction slice per panel.
    pub kc: usize,
}

impl Default for GemmBlocking {
    fn default() -> Self {
        GemmBlocking {
            mc: 64,
            nc: 512,
            kc: 256,
        }
    }
}

impl GemmBlocking {
    /// Clamps degenerate (zero) parameters to 1 so stepping always
    /// advances.
    fn sanitized(self) -> Self {
        GemmBlocking {
            mc: self.mc.max(1),
            nc: self.nc.max(1),
            kc: self.kc.max(1),
        }
    }
}

/// What to apply to each finished output element, fused into the final
/// store instead of a separate pass over `C`.
#[derive(Clone, Copy, Debug)]
pub enum Epilogue<'a> {
    /// Plain store: `C = A·B`.
    None,
    /// Per-row bias: `C[i][j] += bias[i]` (row = output channel).
    Bias(&'a [f32]),
    /// Leaky-ReLU with the given negative slope (0.0 = plain ReLU).
    Relu(f32),
    /// Bias then leaky-ReLU, the common convolution tail.
    BiasRelu(&'a [f32], f32),
}

/// Work threshold (in multiply-accumulates) below which spawning threads
/// costs more than it saves.
const PAR_MACS_THRESHOLD: usize = 1 << 21;

/// `C = A · B` with an optional fused epilogue.
///
/// All matrices are dense row-major; `C` is overwritten (not
/// accumulated into). Large problems are split across threads by rows of
/// `C`, so the reduction order — and therefore the result — is identical
/// in the serial and parallel paths.
///
/// # Panics
/// Panics when a slice length disagrees with its `m`/`n`/`k` extent, or
/// when an epilogue bias is shorter than `m`.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    blocking: GemmBlocking,
    epilogue: Epilogue<'_>,
) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    assert_eq!(c.len(), m * n, "C must be m×n");
    if let Epilogue::Bias(bias) | Epilogue::BiasRelu(bias, _) = epilogue {
        assert!(bias.len() >= m, "bias shorter than m");
    }
    if m == 0 || n == 0 {
        return;
    }
    let blocking = blocking.sanitized();

    let threads = available_threads();
    if threads > 1 && m * n * k >= PAR_MACS_THRESHOLD && m >= 2 {
        // Row-partitioned parallel path: each thread owns a horizontal
        // band of C and the matching band of A; B is shared read-only.
        let bands = threads.min(m);
        let rows_per = m.div_ceil(bands);
        std::thread::scope(|scope| {
            for (band, c_band) in c.chunks_mut(rows_per * n).enumerate() {
                let row0 = band * rows_per;
                let rows = c_band.len() / n;
                let a_band = &a[row0 * k..(row0 + rows) * k];
                let bias_off = row0;
                scope.spawn(move || {
                    gemm_serial(rows, n, k, a_band, b, c_band, blocking);
                    apply_epilogue(rows, n, c_band, epilogue, bias_off);
                });
            }
        });
    } else {
        gemm_serial(m, n, k, a, b, c, blocking);
        apply_epilogue(m, n, c, epilogue, 0);
    }
}

/// The number of worker threads worth using on this machine.
pub(crate) fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Single-threaded blocked GEMM over the whole of `c`.
fn gemm_serial(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    bl: GemmBlocking,
) {
    c.fill(0.0);
    let mut jb = 0;
    while jb < n {
        let jw = bl.nc.min(n - jb);
        let mut kb = 0;
        while kb < k {
            let kw = bl.kc.min(k - kb);
            let mut ib = 0;
            while ib < m {
                let iw = bl.mc.min(m - ib);
                macro_panel(
                    &mut c[ib * n..(ib + iw) * n],
                    &a[ib * k..(ib + iw) * k],
                    b,
                    n,
                    k,
                    jb,
                    jw,
                    kb,
                    kw,
                );
                ib += iw;
            }
            kb += kw;
        }
        jb += jw;
    }
}

/// One `iw × jw × kw` panel: 4 rows of `C` at a time so every loaded
/// `B` element feeds four FMAs.
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn macro_panel(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    jb: usize,
    jw: usize,
    kb: usize,
    kw: usize,
) {
    let mut rows = c.chunks_mut(n);
    let mut i = 0;
    let iw = a.len() / k;
    while i + 4 <= iw {
        // `chunks_mut` hands out disjoint row slices, so four can be
        // live at once without aliasing.
        let (Some(r0), Some(r1), Some(r2), Some(r3)) =
            (rows.next(), rows.next(), rows.next(), rows.next())
        else {
            break;
        };
        let c0 = &mut r0[jb..jb + jw];
        let c1 = &mut r1[jb..jb + jw];
        let c2 = &mut r2[jb..jb + jw];
        let c3 = &mut r3[jb..jb + jw];
        let a0 = &a[i * k + kb..i * k + kb + kw];
        let a1 = &a[(i + 1) * k + kb..(i + 1) * k + kb + kw];
        let a2 = &a[(i + 2) * k + kb..(i + 2) * k + kb + kw];
        let a3 = &a[(i + 3) * k + kb..(i + 3) * k + kb + kw];
        for p in 0..kw {
            let brow = &b[(kb + p) * n + jb..(kb + p) * n + jb + jw];
            let (x0, x1, x2, x3) = (a0[p], a1[p], a2[p], a3[p]);
            for j in 0..jw {
                let bv = brow[j];
                c0[j] += x0 * bv;
                c1[j] += x1 * bv;
                c2[j] += x2 * bv;
                c3[j] += x3 * bv;
            }
        }
        i += 4;
    }
    // Remainder rows one at a time.
    for r in rows {
        let ci = &mut r[jb..jb + jw];
        let arow = &a[i * k + kb..i * k + kb + kw];
        for p in 0..kw {
            let x = arow[p];
            let brow = &b[(kb + p) * n + jb..(kb + p) * n + jb + jw];
            for (cv, &bv) in ci.iter_mut().zip(brow) {
                *cv += x * bv;
            }
        }
        i += 1;
    }
}

/// Applies the fused tail over `rows × n` of `c`; `bias_off` shifts the
/// bias index for row bands handled by worker threads.
fn apply_epilogue(rows: usize, n: usize, c: &mut [f32], epilogue: Epilogue<'_>, bias_off: usize) {
    match epilogue {
        Epilogue::None => {}
        Epilogue::Bias(bias) => {
            for (i, row) in c.chunks_mut(n).enumerate().take(rows) {
                let bv = bias[bias_off + i];
                for v in row {
                    *v += bv;
                }
            }
        }
        Epilogue::Relu(slope) => {
            for v in &mut c[..rows * n] {
                if *v < 0.0 {
                    *v *= slope;
                }
            }
        }
        Epilogue::BiasRelu(bias, slope) => {
            for (i, row) in c.chunks_mut(n).enumerate().take(rows) {
                let bv = bias[bias_off + i];
                for v in row {
                    let x = *v + bv;
                    *v = if x < 0.0 { slope * x } else { x };
                }
            }
        }
    }
}

/// Dense matrix-vector product `y = W · x (+ bias)` with an optional
/// fused leaky-ReLU — the fully-connected layer kernel. `w` is
/// `m × k` row-major.
///
/// Each dot product runs over eight partial accumulators so the
/// reduction vectorises; the accumulator combination order is fixed, so
/// results are deterministic.
///
/// # Panics
/// Panics when slice lengths disagree with `m`/`k`.
pub fn gemv(
    m: usize,
    k: usize,
    w: &[f32],
    x: &[f32],
    bias: Option<&[f32]>,
    relu_slope: Option<f32>,
    y: &mut [f32],
) {
    assert_eq!(w.len(), m * k, "W must be m×k");
    assert_eq!(x.len(), k, "x must have k elements");
    assert_eq!(y.len(), m, "y must have m elements");
    if let Some(b) = bias {
        assert!(b.len() >= m, "bias shorter than m");
    }

    let threads = available_threads();
    if threads > 1 && m * k >= PAR_MACS_THRESHOLD && m >= 2 {
        let bands = threads.min(m);
        let rows_per = m.div_ceil(bands);
        std::thread::scope(|scope| {
            for (band, y_band) in y.chunks_mut(rows_per).enumerate() {
                let row0 = band * rows_per;
                let w_band = &w[row0 * k..(row0 + y_band.len()) * k];
                scope.spawn(move || {
                    gemv_serial(k, w_band, x, bias, relu_slope, y_band, row0);
                });
            }
        });
    } else {
        gemv_serial(k, w, x, bias, relu_slope, y, 0);
    }
}

fn gemv_serial(
    k: usize,
    w: &[f32],
    x: &[f32],
    bias: Option<&[f32]>,
    relu_slope: Option<f32>,
    y: &mut [f32],
    row_off: usize,
) {
    for (i, yv) in y.iter_mut().enumerate() {
        let mut acc = dot(&w[i * k..(i + 1) * k], x);
        if let Some(b) = bias {
            acc += b[row_off + i];
        }
        if let Some(slope) = relu_slope {
            if acc < 0.0 {
                acc *= slope;
            }
        }
        *yv = acc;
    }
}

/// Vectorisable dot product: eight independent partial sums combined in
/// a fixed order.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let av = &a[c * LANES..(c + 1) * LANES];
        let bv = &b[c * LANES..(c + 1) * LANES];
        for l in 0..LANES {
            acc[l] += av[l] * bv[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in a[chunks * LANES..].iter().zip(&b[chunks * LANES..]) {
        tail += x * y;
    }
    // Fixed combination order for determinism.
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    /// Textbook triple loop for cross-checking.
    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn ramp(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|i| ((i % 13) as f32 - 6.0) * scale).collect()
    }

    #[test]
    fn matches_naive_across_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 16),
            (5, 9, 3),
            (17, 33, 29),
            (64, 70, 65),
        ] {
            let a = ramp(m * k, 0.25);
            let b = ramp(k * n, 0.5);
            let mut c = vec![9.0f32; m * n];
            gemm(
                m,
                n,
                k,
                &a,
                &b,
                &mut c,
                GemmBlocking::default(),
                Epilogue::None,
            );
            let want = naive(m, n, k, &a, &b);
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() < 1e-3, "({m},{n},{k}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn tiny_blocking_matches_default() {
        let (m, n, k) = (9, 11, 13);
        let a = ramp(m * k, 0.3);
        let b = ramp(k * n, 0.7);
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(
            m,
            n,
            k,
            &a,
            &b,
            &mut c1,
            GemmBlocking::default(),
            Epilogue::None,
        );
        let tiny = GemmBlocking {
            mc: 2,
            nc: 3,
            kc: 4,
        };
        gemm(m, n, k, &a, &b, &mut c2, tiny, Epilogue::None);
        assert_eq!(c1, c2, "blocking must not change the reduction order");
    }

    #[test]
    fn bias_and_relu_epilogues() {
        let (m, n, k) = (2, 3, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity-ish
        let b = vec![1.0, -2.0, 3.0, -4.0, 5.0, -6.0];
        let bias = vec![10.0, -10.0];
        let mut c = vec![0.0; m * n];
        gemm(
            m,
            n,
            k,
            &a,
            &b,
            &mut c,
            GemmBlocking::default(),
            Epilogue::Bias(&bias),
        );
        assert_eq!(c, vec![11.0, 8.0, 13.0, -14.0, -5.0, -16.0]);
        gemm(
            m,
            n,
            k,
            &a,
            &b,
            &mut c,
            GemmBlocking::default(),
            Epilogue::BiasRelu(&bias, 0.0),
        );
        assert_eq!(c, vec![11.0, 8.0, 13.0, 0.0, 0.0, 0.0]);
        gemm(
            m,
            n,
            k,
            &a,
            &b,
            &mut c,
            GemmBlocking::default(),
            Epilogue::Relu(0.5),
        );
        assert_eq!(c, vec![1.0, -1.0, 3.0, -2.0, 5.0, -3.0]);
    }

    #[test]
    fn large_parallel_path_matches_serial() {
        // Big enough to cross PAR_MACS_THRESHOLD.
        let (m, n, k) = (128, 160, 128);
        let a = ramp(m * k, 0.01);
        let b = ramp(k * n, 0.02);
        let mut par = vec![0.0; m * n];
        gemm(
            m,
            n,
            k,
            &a,
            &b,
            &mut par,
            GemmBlocking::default(),
            Epilogue::None,
        );
        let mut ser = vec![0.0; m * n];
        gemm_serial(m, n, k, &a, &b, &mut ser, GemmBlocking::default());
        assert_eq!(par, ser, "threaded row bands must be bit-identical");
    }

    #[test]
    fn gemv_matches_gemm_column() {
        let (m, k) = (7, 19);
        let w = ramp(m * k, 0.1);
        let x = ramp(k, 0.2);
        let bias = ramp(m, 1.0);
        let mut y = vec![0.0; m];
        gemv(m, k, &w, &x, Some(&bias), None, &mut y);
        let mut c = vec![0.0; m];
        gemm(
            m,
            1,
            k,
            &w,
            &x,
            &mut c,
            GemmBlocking::default(),
            Epilogue::Bias(&bias),
        );
        for (a, b) in y.iter().zip(&c) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn gemv_fused_relu_clamps() {
        let w = vec![1.0, -1.0];
        let x = vec![1.0];
        let mut y = vec![0.0; 2];
        gemv(2, 1, &w, &x, None, Some(0.0), &mut y);
        assert_eq!(y, vec![1.0, 0.0]);
    }

    #[test]
    fn dot_matches_sequential_sum() {
        let a = ramp(37, 0.3);
        let b = ramp(37, 0.4);
        let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - want).abs() < 1e-3);
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let mut c: Vec<f32> = vec![];
        gemm(
            0,
            0,
            3,
            &[],
            &[],
            &mut c,
            GemmBlocking::default(),
            Epilogue::None,
        );
        assert!(c.is_empty());
    }
}
