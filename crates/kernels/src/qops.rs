//! Quantized layer kernels assembled from the INT8 lowering and GEMM.
//!
//! Mirrors [`crate::ops`] for the `i8` domain: every kernel writes into
//! a caller-provided slice and borrows scratch from a
//! [`QWorkspace`](crate::qgemm::QWorkspace), so steady-state quantized
//! inference allocates nothing. Convolution lowers with
//! [`im2col_i8`](crate::im2col::im2col_i8) (symmetric quantization maps
//! real 0 to quantized 0, so zero padding carries over unchanged), runs
//! the packed `i8` GEMM into `i32` accumulators and requantizes through
//! the fused bias/clamp(/ReLU) epilogue.

use crate::im2col::{im2col_i8_patches, ConvGeometry};
use crate::qgemm::{gemm_i8_requant, QWorkspace};
use crate::GemmBlocking;
use crate::PoolMethod;

/// Quantized convolution: patch-major int8 im2col + packed GEMM + fused
/// requantize.
///
/// * `input` — `C×H×W` row-major `i8` (one image),
/// * `weights` — `F×C×K×K` row-major `i8` (per-channel quantized),
/// * `bias` — per output channel, in accumulator units
///   (`round(b[f] / (s_in · s_w[f]))`),
/// * `multipliers` — per output channel, `s_in · s_w[f] / s_out`,
/// * `out` — `F×outH×outW` row-major `i8`.
///
/// The lowering emits patches in the transposed (patch-major) layout the
/// packed GEMM consumes directly, so there is no repack between lowering
/// and compute (see [`crate::qgemm`]).
///
/// # Panics
/// Panics when slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn qconv2d(
    input: &[i8],
    weights: &[i8],
    bias: Option<&[i32]>,
    num_output: usize,
    geo: &ConvGeometry,
    multipliers: &[f32],
    relu: bool,
    out: &mut [i8],
    ws: &mut QWorkspace,
) {
    let k_depth = geo.lowered_rows();
    let n_cols = geo.lowered_cols();
    assert_eq!(weights.len(), num_output * k_depth, "weight blob mismatch");
    assert_eq!(out.len(), num_output * n_cols, "output length mismatch");

    // Detach the lowering buffer so the workspace's widening and
    // accumulator planes stay borrowable for the GEMM.
    let mut cols = ws.take_cols();
    let len = geo.lowered_len();
    cols.resize(len, 0);
    im2col_i8_patches(input, geo, &mut cols[..len]);
    gemm_i8_requant(
        num_output,
        n_cols,
        k_depth,
        weights,
        &cols[..len],
        out,
        GemmBlocking::default(),
        bias,
        multipliers,
        relu,
        ws,
    );
    ws.put_cols(cols);
}

/// Quantized sub-sampling over each `i8` feature map.
///
/// Max pooling is exact in the quantized domain (max commutes with the
/// monotone dequantization). Average pooling sums into `i32` and rounds
/// the quotient to nearest, so the output stays on the input's scale
/// with at most half a step of additional rounding error.
///
/// # Panics
/// Panics when slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn qpool2d(
    input: &[i8],
    channels: usize,
    in_h: usize,
    in_w: usize,
    method: PoolMethod,
    kernel: usize,
    stride: usize,
    pad: usize,
    out_h: usize,
    out_w: usize,
    out: &mut [i8],
) {
    assert_eq!(input.len(), channels * in_h * in_w, "input length mismatch");
    assert_eq!(
        out.len(),
        channels * out_h * out_w,
        "output length mismatch"
    );
    for c in 0..channels {
        let map = &input[c * in_h * in_w..(c + 1) * in_h * in_w];
        let omap = &mut out[c * out_h * out_w..(c + 1) * out_h * out_w];
        for i in 0..out_h {
            let h_lo = (i * stride) as isize - pad as isize;
            let hh_lo = h_lo.max(0) as usize;
            let hh_hi = (h_lo + kernel as isize).clamp(0, in_h as isize) as usize;
            for j in 0..out_w {
                let w_lo = (j * stride) as isize - pad as isize;
                let ww_lo = w_lo.max(0) as usize;
                let ww_hi = (w_lo + kernel as isize).clamp(0, in_w as isize) as usize;
                let mut max = i8::MIN;
                let mut sum = 0i32;
                for hh in hh_lo..hh_hi {
                    let row = &map[hh * in_w + ww_lo..hh * in_w + ww_hi];
                    for &v in row {
                        max = max.max(v);
                        sum += v as i32;
                    }
                }
                let count = (hh_hi.saturating_sub(hh_lo)) * (ww_hi.saturating_sub(ww_lo));
                omap[i * out_w + j] = match method {
                    PoolMethod::Max => max,
                    PoolMethod::Average => {
                        let q = (sum as f64 / count.max(1) as f64).round();
                        q.clamp(-127.0, 127.0) as i8
                    }
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::quant::{quantize_weights_per_channel, QuantParams};
    use crate::{conv2d, pool2d, Workspace};
    use condor_tensor::Shape;

    fn geo(in_c: usize, in_h: usize, in_w: usize, k: usize, s: usize, p: usize) -> ConvGeometry {
        ConvGeometry {
            in_c,
            in_h,
            in_w,
            kernel: k,
            stride: s,
            pad: p,
            out_h: Shape::conv_out_dim(in_h, k, s, p),
            out_w: Shape::conv_out_dim(in_w, k, s, p),
        }
    }

    /// End-to-end sanity: quantize a small conv layer, run qconv2d and
    /// check the dequantized output tracks the f32 kernel within the
    /// analytic bound (requant step + weight-quant + input-quant terms).
    #[test]
    fn quantized_conv_tracks_f32_conv() {
        let g = geo(2, 6, 6, 3, 1, 1);
        let input: Vec<f32> = (0..72)
            .map(|v| ((v * 31 % 17) as f32 - 8.0) * 0.1)
            .collect();
        let weights: Vec<f32> = (0..4 * 18)
            .map(|v| ((v * 13 % 11) as f32 - 5.0) * 0.05)
            .collect();
        let bias = [0.05f32, -0.1, 0.2, 0.0];

        let mut want = vec![0.0f32; 4 * 36];
        let mut ws_f = Workspace::new();
        conv2d(
            &input,
            &weights,
            Some(&bias),
            4,
            &g,
            None,
            &mut want,
            &mut ws_f,
        );

        // Quantize operands.
        let in_absmax = input.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let p_in = QuantParams::from_abs_max(in_absmax);
        let mut q_in = vec![0i8; input.len()];
        crate::quant::quantize_into(&input, p_in, &mut q_in);
        let mut q_w = vec![0i8; weights.len()];
        let p_w = quantize_weights_per_channel(&weights, 4, &mut q_w);
        let out_absmax = want.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let p_out = QuantParams::from_abs_max(out_absmax);
        let q_bias: Vec<i32> = bias
            .iter()
            .zip(&p_w)
            .map(|(&b, pw)| (b as f64 / (p_in.scale as f64 * pw.scale as f64)).round() as i32)
            .collect();
        let mult: Vec<f32> = p_w
            .iter()
            .map(|pw| (p_in.scale as f64 * pw.scale as f64 / p_out.scale as f64) as f32)
            .collect();

        let mut q_out = vec![0i8; 4 * 36];
        let mut ws = QWorkspace::new();
        qconv2d(
            &q_in,
            &q_w,
            Some(&q_bias),
            4,
            &g,
            &mult,
            false,
            &mut q_out,
            &mut ws,
        );

        let k_row = g.lowered_rows() as f32;
        for (o, (q, &w)) in q_out.iter().zip(&want).enumerate() {
            let ch = o / 36;
            let got = *q as f32 * p_out.scale;
            let budget = p_out.scale / 2.0
                + weights[ch * 18..(ch + 1) * 18]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f32>()
                    * (p_in.scale / 2.0)
                + (p_w[ch].scale / 2.0) * k_row * in_absmax
                + p_in.scale * p_w[ch].scale
                + 1e-4;
            assert!(
                (got - w).abs() <= budget,
                "elem {o}: |{got} - {w}| > {budget}"
            );
        }
    }

    #[test]
    fn quantized_max_pool_is_exact() {
        let q: Vec<i8> = (0..32).map(|v| (v * 29 % 255 - 127) as i8).collect();
        let f: Vec<f32> = q.iter().map(|&v| v as f32).collect();
        let mut qo = vec![0i8; 8];
        qpool2d(&q, 2, 4, 4, PoolMethod::Max, 2, 2, 0, 2, 2, &mut qo);
        let mut fo = vec![0.0f32; 8];
        pool2d(&f, 2, 4, 4, PoolMethod::Max, 2, 2, 0, 2, 2, &mut fo);
        for (a, b) in qo.iter().zip(&fo) {
            assert_eq!(*a as f32, *b);
        }
    }

    #[test]
    fn quantized_average_pool_rounds_within_half_a_step() {
        let q: Vec<i8> = (0..16).map(|v| (v * 7 - 60) as i8).collect();
        let f: Vec<f32> = q.iter().map(|&v| v as f32).collect();
        let mut qo = vec![0i8; 4];
        qpool2d(&q, 1, 4, 4, PoolMethod::Average, 2, 2, 0, 2, 2, &mut qo);
        let mut fo = vec![0.0f32; 4];
        pool2d(&f, 1, 4, 4, PoolMethod::Average, 2, 2, 0, 2, 2, &mut fo);
        for (a, b) in qo.iter().zip(&fo) {
            assert!((*a as f32 - b).abs() <= 0.5, "{a} vs {b}");
        }
    }

    #[test]
    fn average_pool_divisor_excludes_padding() {
        // Same Caffe semantics as the f32 kernel: pad 1, stride 2 on a
        // 2×2 input — each window sees exactly one in-range value.
        let q = [10i8, 20, 30, 60];
        let mut out = [0i8; 4];
        qpool2d(&q, 1, 2, 2, PoolMethod::Average, 2, 2, 1, 2, 2, &mut out);
        assert_eq!(out, [10, 20, 30, 60]);
    }
}
