//! # condor-kernels
//!
//! Fast CPU compute kernels for CNN inference — the software analogue of
//! the paper's hardware acceleration argument. Where the golden engine
//! (`condor-nn`) transcribes the paper's equations as obvious loop
//! nests, this crate treats convolution lowering as the central
//! performance lever, the way fpgaConvNet and Caffeinated FPGAs do for
//! their FPGA dataflows:
//!
//! * [`im2col`] — patch-matrix lowering so convolution becomes one GEMM,
//!   writing into a reusable workspace buffer;
//! * [`gemm`] — cache-blocked (`Mc×Nc×Kc`) f32 matrix multiply with a
//!   4-row micro-kernel, thread parallelism over output-row blocks and
//!   fused bias/LeakyReLU epilogues ([`Epilogue`]);
//! * [`ops`] — layer-level kernels (convolution, pooling, activations,
//!   softmax, fully-connected [`gemv`]) that all write into
//!   caller-provided buffers, so steady-state inference allocates
//!   nothing per layer.
//!
//! Thread parallelism uses `std::thread::scope` over disjoint row bands
//! (the workspace's `rayon` shim is sequential, and band splitting keeps
//! each element's reduction order fixed), so results are bit-identical
//! across thread counts and blocking parameters. `condor-nn`'s
//! `FastEngine` drives these kernels for whole networks and
//! property-tests them against the golden oracle.
//!
//! The INT8 quantized path mirrors the f32 one a precision tier down,
//! following the ACCEL-v1-style narrow-precision dataflow:
//!
//! * [`quant`] — symmetric per-channel weight quantization, per-tensor
//!   activation scales and the min/max + moving-average calibration
//!   observers;
//! * [`qgemm`] — packed GEMM over `i8` operands (4× denser than f32) in
//!   the patch-major layout the int8 im2col emits directly, widened once
//!   into `i16` staging planes so the reduction runs as
//!   `pmaddwd`-shaped widening dot products into exact `i32`
//!   accumulators (the workspace pins `x86-64-v3` codegen in
//!   `.cargo/config.toml` so that combine fires), with fused
//!   requantize/clamp/ReLU epilogues ([`requantize_into`]);
//! * [`qops`] — quantized convolution ([`qconv2d`], patch-major int8
//!   im2col into the reusable [`QWorkspace`]) and pooling ([`qpool2d`]).
//!
//! Integer accumulation is exact, so the quantized kernels are
//! bit-identical across blocking and threading by construction;
//! `condor-nn`'s `QuantizedEngine` drives them end to end under
//! per-layer error budgets.

#![forbid(unsafe_code)]

pub mod gemm;
pub mod im2col;
pub mod ops;
pub mod qgemm;
pub mod qops;
pub mod quant;

pub use gemm::{dot, gemm as gemm_f32, gemv, Epilogue, GemmBlocking};
pub use im2col::{im2col, im2col_i8, im2col_i8_patches, ConvGeometry};
pub use ops::{activate, conv2d, pool2d, softmax, Activation, PoolMethod, Workspace};
pub use qgemm::{gemm_i8, gemm_i8_requant, qgemv_i8, requantize_into, QWorkspace};
pub use qops::{qconv2d, qpool2d};
pub use quant::{
    dequantize_into, quantize_into, quantize_weights_per_channel, MinMaxObserver,
    MovingAvgObserver, QuantParams, QMAX,
};
