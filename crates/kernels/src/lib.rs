//! # condor-kernels
//!
//! Fast CPU compute kernels for CNN inference — the software analogue of
//! the paper's hardware acceleration argument. Where the golden engine
//! (`condor-nn`) transcribes the paper's equations as obvious loop
//! nests, this crate treats convolution lowering as the central
//! performance lever, the way fpgaConvNet and Caffeinated FPGAs do for
//! their FPGA dataflows:
//!
//! * [`im2col`] — patch-matrix lowering so convolution becomes one GEMM,
//!   writing into a reusable workspace buffer;
//! * [`gemm`] — cache-blocked (`Mc×Nc×Kc`) f32 matrix multiply with a
//!   4-row micro-kernel, thread parallelism over output-row blocks and
//!   fused bias/LeakyReLU epilogues ([`Epilogue`]);
//! * [`ops`] — layer-level kernels (convolution, pooling, activations,
//!   softmax, fully-connected [`gemv`]) that all write into
//!   caller-provided buffers, so steady-state inference allocates
//!   nothing per layer.
//!
//! Thread parallelism uses `std::thread::scope` over disjoint row bands
//! (the workspace's `rayon` shim is sequential, and band splitting keeps
//! each element's reduction order fixed), so results are bit-identical
//! across thread counts and blocking parameters. `condor-nn`'s
//! `FastEngine` drives these kernels for whole networks and
//! property-tests them against the golden oracle.

#![forbid(unsafe_code)]

pub mod gemm;
pub mod im2col;
pub mod ops;

pub use gemm::{dot, gemm as gemm_f32, gemv, Epilogue, GemmBlocking};
pub use im2col::{im2col, ConvGeometry};
pub use ops::{activate, conv2d, pool2d, softmax, Activation, PoolMethod, Workspace};
