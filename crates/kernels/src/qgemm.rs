//! Packed INT8 GEMM with fused requantize/clamp/ReLU epilogues.
//!
//! Computes `C = A · B` for row-major `A: m×k` and **transposed**
//! `B` (`b_t: n×k` row-major — row `j` of `b_t` is column `j` of `B`)
//! of `i8` into exact `i32` accumulators. The transposed operand is the
//! **patch-major** layout the int8 im2col emits for free
//! ([`crate::im2col::im2col_i8_patches`]): each output pixel's patch is
//! one contiguous `k`-length slice, so the kernel needs no transpose or
//! panel repack in the hot loop. Operand storage is 4× denser than f32;
//! compute staging widens both sides once into contiguous `i16` planes
//! (still 2× denser than f32) so the reduction is the one shape LLVM's
//! x86 backend combines to `pmaddwd`:
//!
//! ```text
//! sum += a[p] as i32 * b[p] as i32      // a, b: &[i16]
//! ```
//!
//! — 8 multiply-accumulates per instruction at the x86-64-v3 baseline
//! the workspace pins in `.cargo/config.toml` (the combine does not fire
//! at baseline SSE2 codegen, where this kernel would *lose* to f32; see
//! that file). Quantized values never exceed ±127 (see [`crate::quant`]),
//! so a pair of products is at most `2·127² = 32258 < 2¹⁵` and the packed
//! pairwise adds cannot overflow `i16` lanes; the `i32` accumulator is
//! exact for any practical `k` (`k ≤ 2¹⁷` stays below `i32::MAX`).
//! Integer addition is associative, so results are bit-identical across
//! blocking parameters and thread counts for free.
//!
//! Blocking and parallelism reuse the f32 kernel's machinery a tier
//! down: the [`GemmBlocking`] `nc` extent drives the patch-staging width
//! (at most `nc` widened patches are resident at once, keeping the `i16`
//! staging plane L2-sized for arbitrarily wide layers), and large
//! problems split across threads by `C` row bands under
//! `std::thread::scope` exactly as in [`crate::gemm`]. `mc`/`kc` are
//! accepted but idle here: with both operands pre-packed contiguous, one
//! weight row plus one patch is L1-resident for every practical `k`, so
//! further tiling of the reduction only adds loop overhead (measured, not
//! assumed — an Mc×Kc panel variant ran 1.5× slower on the VGG layer).
//!
//! The fused epilogue maps `i32` accumulators back to `i8`:
//! `out = clamp(round((acc + bias) · multiplier), -127, 127)`, with the
//! per-row multiplier `s_in · s_w[row] / s_out` carrying the scale
//! change and an optional ReLU folded into the clamp. The multiply runs
//! in `f64`: accumulators reach ~10⁸, beyond `f32`'s 24-bit exact
//! integer range, and `f64` keeps the rounding decision exact.

use crate::gemm::{available_threads, GemmBlocking};

/// Work threshold (in multiply-accumulates) below which spawning threads
/// costs more than it saves; matches the f32 kernel.
const PAR_MACS_THRESHOLD: usize = 1 << 21;

/// Patch-tile width of the inner loops: every weight row is re-read once
/// per tile instead of once per patch, cutting L2 traffic ~`TILE_J`-fold
/// while a tile of widened patches (`16 × 2k` bytes) stays L1-resident.
/// Measured ~20% faster than the untiled loop on the VGG-56 layer.
const TILE_J: usize = 16;

/// Reusable scratch for the quantized path: im2col output, `i16`
/// widening planes and the `i32` accumulator plane. Grown on demand,
/// never shrunk, so steady-state inference allocates nothing.
#[derive(Debug, Default)]
pub struct QWorkspace {
    cols: Vec<i8>,
    apack: Vec<i16>,
    bpack: Vec<i16>,
    acc: Vec<i32>,
}

impl QWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        QWorkspace::default()
    }

    /// Pre-sizes the im2col and accumulator planes (e.g. to a network's
    /// high-water marks) so inference never reallocates.
    pub fn with_capacity(cols_len: usize, acc_len: usize) -> Self {
        QWorkspace {
            cols: Vec::with_capacity(cols_len),
            apack: Vec::new(),
            bpack: Vec::new(),
            acc: Vec::with_capacity(acc_len),
        }
    }

    /// Current im2col capacity in elements (diagnostic).
    pub fn cols_capacity(&self) -> usize {
        self.cols.capacity()
    }

    /// Current accumulator capacity in elements (diagnostic).
    pub fn acc_capacity(&self) -> usize {
        self.acc.capacity()
    }

    /// Detaches the im2col buffer so it can be borrowed alongside the
    /// widening/accumulator planes; return it with
    /// [`QWorkspace::put_cols`].
    pub(crate) fn take_cols(&mut self) -> Vec<i8> {
        std::mem::take(&mut self.cols)
    }

    /// Reattaches the im2col buffer after [`QWorkspace::take_cols`].
    pub(crate) fn put_cols(&mut self, cols: Vec<i8>) {
        self.cols = cols;
    }
}

/// Widens an `i8` slice into an `i16` plane (resizing it to fit).
fn widen_into(src: &[i8], dst: &mut Vec<i16>) {
    dst.resize(src.len(), 0);
    for (d, &q) in dst.iter_mut().zip(src) {
        *d = q as i16;
    }
}

/// `C = A · B` over `i8` operands into exact `i32` accumulators, with
/// `B` supplied transposed (`b_t: n×k` row-major, i.e. patch-major).
///
/// `c` (`m×n` row-major) is overwritten. Large problems split across
/// threads by rows of `C`; integer accumulation makes the result
/// identical either way.
///
/// # Panics
/// Panics when a slice length disagrees with its `m`/`n`/`k` extent.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b_t: &[i8],
    c: &mut [i32],
    blocking: GemmBlocking,
    ws: &mut QWorkspace,
) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b_t.len(), n * k, "B (transposed) must be n×k");
    assert_eq!(c.len(), m * n, "C must be m×n");
    if m == 0 || n == 0 {
        return;
    }
    let nc = blocking.nc.max(1);

    widen_into(a, &mut ws.apack);
    let threads = available_threads();
    if threads > 1 && m * n * k >= PAR_MACS_THRESHOLD && m >= 2 {
        // Row-partitioned bands as in the f32 kernel. The whole patch
        // matrix is widened once up front so every band can share it
        // immutably (this path is only taken on multi-core machines for
        // large layers, where the staging plane is sized like the f32
        // kernel's im2col workspace anyway).
        widen_into(b_t, &mut ws.bpack);
        let (apack, bpack) = (&ws.apack[..m * k], &ws.bpack[..n * k]);
        let bands = threads.min(m);
        let rows_per = m.div_ceil(bands);
        std::thread::scope(|scope| {
            for (band, c_band) in c.chunks_mut(rows_per * n).enumerate() {
                let row0 = band * rows_per;
                let rows = c_band.len() / n;
                let a_band = &apack[row0 * k..(row0 + rows) * k];
                scope.spawn(move || {
                    let mut jt = 0;
                    while jt < n {
                        let tw = TILE_J.min(n - jt);
                        for i in 0..rows {
                            let row = &a_band[i * k..(i + 1) * k];
                            let crow = &mut c_band[i * n + jt..i * n + jt + tw];
                            for (j, cv) in crow.iter_mut().enumerate() {
                                *cv = dot_i16(row, &bpack[(jt + j) * k..(jt + j + 1) * k]);
                            }
                        }
                        jt += tw;
                    }
                });
            }
        });
    } else {
        // Serial: stage at most `nc` widened patches at a time so the
        // i16 plane stays cache-sized however wide the layer is.
        let apack = &ws.apack[..m * k];
        ws.bpack.resize(nc.min(n) * k.max(1), 0);
        let mut jb = 0;
        while jb < n {
            let jw = nc.min(n - jb);
            for (d, &q) in ws.bpack.iter_mut().zip(&b_t[jb * k..(jb + jw) * k]) {
                *d = q as i16;
            }
            let mut jt = 0;
            while jt < jw {
                let tw = TILE_J.min(jw - jt);
                for i in 0..m {
                    let row = &apack[i * k..(i + 1) * k];
                    let crow = &mut c[i * n + jb + jt..i * n + jb + jt + tw];
                    for (j, cv) in crow.iter_mut().enumerate() {
                        *cv = dot_i16(row, &ws.bpack[(jt + j) * k..(jt + j + 1) * k]);
                    }
                }
                jt += tw;
            }
            jb += jw;
        }
    }
}

/// `C = requantize(A · B)` — the full quantized-layer kernel: packed
/// `i8` GEMM with the bias/requantize/clamp(/ReLU) epilogue fused into
/// the tile loop, storing straight back to `i8`. `B` is supplied
/// transposed (patch-major), as in [`gemm_i8`].
///
/// Fusing the epilogue requantizes each `C` tile while its accumulators
/// are still register-resident, so the `m×n` `i32` accumulator plane of
/// the two-pass formulation is never written or re-read — for a VGG-
/// sized layer that deletes ~1.6 MB of round-trip traffic per call. The
/// result is bit-identical to [`gemm_i8`] followed by
/// [`requantize_into`] (pinned by a test).
///
/// `multipliers[i]` rescales row `i`'s accumulator into the output
/// quantization domain (`s_in · s_w[i] / s_out`); `bias` is per-row in
/// accumulator units (`round(b[i] / (s_in · s_w[i]))`).
///
/// # Panics
/// Panics on extent mismatches, or when `bias`/`multipliers` are
/// shorter than `m`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_i8_requant(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b_t: &[i8],
    out: &mut [i8],
    blocking: GemmBlocking,
    bias: Option<&[i32]>,
    multipliers: &[f32],
    relu: bool,
    ws: &mut QWorkspace,
) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b_t.len(), n * k, "B (transposed) must be n×k");
    assert_eq!(out.len(), m * n, "out must be m×n");
    assert!(multipliers.len() >= m, "multipliers shorter than rows");
    if let Some(b) = bias {
        assert!(b.len() >= m, "bias shorter than rows");
    }
    if m == 0 || n == 0 {
        return;
    }
    let lo = if relu { 0.0 } else { -127.0 };

    widen_into(a, &mut ws.apack);
    let threads = available_threads();
    if threads > 1 && m * n * k >= PAR_MACS_THRESHOLD && m >= 2 {
        // Row bands as in `gemm_i8`; each band requantizes its own rows.
        widen_into(b_t, &mut ws.bpack);
        let (apack, bpack) = (&ws.apack[..m * k], &ws.bpack[..n * k]);
        let bands = threads.min(m);
        let rows_per = m.div_ceil(bands);
        std::thread::scope(|scope| {
            for (band, o_band) in out.chunks_mut(rows_per * n).enumerate() {
                let row0 = band * rows_per;
                let rows = o_band.len() / n;
                let a_band = &apack[row0 * k..(row0 + rows) * k];
                scope.spawn(move || {
                    let mut acc_t = [0i32; TILE_J];
                    let mut jt = 0;
                    while jt < n {
                        let tw = TILE_J.min(n - jt);
                        for i in 0..rows {
                            let row = &a_band[i * k..(i + 1) * k];
                            for (j, av) in acc_t[..tw].iter_mut().enumerate() {
                                *av = dot_i16(row, &bpack[(jt + j) * k..(jt + j + 1) * k]);
                            }
                            let badd = bias.map_or(0, |b| b[row0 + i]) as i64;
                            let mult = multipliers[row0 + i] as f64;
                            let orow = &mut o_band[i * n + jt..i * n + jt + tw];
                            for (o, &v) in orow.iter_mut().zip(&acc_t[..tw]) {
                                let q = ((v as i64 + badd) as f64 * mult).round();
                                *o = q.clamp(lo, 127.0) as i8;
                            }
                        }
                        jt += tw;
                    }
                });
            }
        });
        return;
    }

    // Serial: stage `nc`-wide widened patch blocks exactly as in
    // `gemm_i8`, requantizing each tile row as it is produced. The tile
    // accumulators live in a stack buffer so the dot loop stays the
    // clean `pmaddwd` shape and the requantize mini-loop vectorizes
    // (`vroundpd`) separately.
    let nc = blocking.nc.max(1);
    let apack = &ws.apack[..m * k];
    ws.bpack.resize(nc.min(n) * k.max(1), 0);
    let mut acc_t = [0i32; TILE_J];
    let mut jb = 0;
    while jb < n {
        let jw = nc.min(n - jb);
        for (d, &q) in ws.bpack.iter_mut().zip(&b_t[jb * k..(jb + jw) * k]) {
            *d = q as i16;
        }
        let mut jt = 0;
        while jt < jw {
            let tw = TILE_J.min(jw - jt);
            for i in 0..m {
                let row = &apack[i * k..(i + 1) * k];
                for (j, av) in acc_t[..tw].iter_mut().enumerate() {
                    *av = dot_i16(row, &ws.bpack[(jt + j) * k..(jt + j + 1) * k]);
                }
                let badd = bias.map_or(0, |b| b[i]) as i64;
                let mult = multipliers[i] as f64;
                let orow = &mut out[i * n + jb + jt..i * n + jb + jt + tw];
                for (o, &v) in orow.iter_mut().zip(&acc_t[..tw]) {
                    let q = ((v as i64 + badd) as f64 * mult).round();
                    *o = q.clamp(lo, 127.0) as i8;
                }
            }
            jt += tw;
        }
        jb += jw;
    }
}

/// Maps a plane of `i32` accumulators to `i8` outputs:
/// `out = clamp(round((acc + bias[row]) · multipliers[row]), -127, 127)`,
/// then `max(out, 0)` when `relu` is set. The multiply runs in `f64` so
/// rounding is exact for full-magnitude accumulators.
///
/// # Panics
/// Panics when `acc`/`out` lengths differ, `n` does not divide them, or
/// `bias`/`multipliers` are shorter than the row count.
pub fn requantize_into(
    acc: &[i32],
    n: usize,
    bias: Option<&[i32]>,
    multipliers: &[f32],
    relu: bool,
    out: &mut [i8],
) {
    assert_eq!(acc.len(), out.len(), "acc/out length mismatch");
    if acc.is_empty() {
        return;
    }
    assert!(
        n > 0 && acc.len().is_multiple_of(n),
        "n must divide the plane"
    );
    let rows = acc.len() / n;
    assert!(multipliers.len() >= rows, "multipliers shorter than rows");
    if let Some(b) = bias {
        assert!(b.len() >= rows, "bias shorter than rows");
    }
    let lo = if relu { 0.0 } else { -127.0 };
    for i in 0..rows {
        let badd = bias.map_or(0, |b| b[i]) as i64;
        let mult = multipliers[i] as f64;
        let arow = &acc[i * n..(i + 1) * n];
        let orow = &mut out[i * n..(i + 1) * n];
        for (o, &v) in orow.iter_mut().zip(arow) {
            let q = ((v as i64 + badd) as f64 * mult).round();
            *o = q.clamp(lo, 127.0) as i8;
        }
    }
}

/// Quantized matrix-vector product with the fused requantize tail — the
/// fully-connected layer kernel. `w` is `m × k` row-major `i8`.
///
/// # Panics
/// Panics on extent mismatches, or when `bias`/`multipliers` are
/// shorter than `m`.
#[allow(clippy::too_many_arguments)]
pub fn qgemv_i8(
    m: usize,
    k: usize,
    w: &[i8],
    x: &[i8],
    bias: Option<&[i32]>,
    multipliers: &[f32],
    relu: bool,
    y: &mut [i8],
    ws: &mut QWorkspace,
) {
    assert_eq!(w.len(), m * k, "W must be m×k");
    assert_eq!(x.len(), k, "x must have k elements");
    assert_eq!(y.len(), m, "y must have m elements");
    assert!(multipliers.len() >= m, "multipliers shorter than m");
    if let Some(b) = bias {
        assert!(b.len() >= m, "bias shorter than m");
    }
    // Widen x once and each weight row on the fly; FC rows are short
    // enough that the extra pass is noise, and the widened slices let
    // the same pmaddwd dot product do the work.
    widen_into(x, &mut ws.bpack);
    ws.apack.resize(k, 0);
    let lo = if relu { 0.0 } else { -127.0 };
    for i in 0..m {
        for (av, &q) in ws.apack.iter_mut().zip(&w[i * k..(i + 1) * k]) {
            *av = q as i16;
        }
        let acc = dot_i16(&ws.apack[..k], &ws.bpack[..k]);
        let badd = bias.map_or(0, |b| b[i]) as i64;
        let q = ((acc as i64 + badd) as f64 * multipliers[i] as f64).round();
        y[i] = q.clamp(lo, 127.0) as i8;
    }
}

/// Widening i16 dot product in the exact (single-reduction) shape
/// LLVM's x86 backend combines to `pmaddwd` — 8 multiply-accumulates
/// per instruction at the pinned x86-64-v3 baseline. Multi-accumulator
/// and hand-paired formulations defeat the combine; keep this one
/// canonical.
#[inline]
fn dot_i16(a: &[i16], b: &[i16]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        sum += x as i32 * y as i32;
    }
    sum
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    /// Textbook triple loop in i32 over row-major B for cross-checking.
    fn naive(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] as i32 * b[p * n + j] as i32;
                }
            }
        }
        c
    }

    /// Row-major `k×n` B → patch-major `n×k` transpose.
    fn transpose(n: usize, k: usize, b: &[i8]) -> Vec<i8> {
        let mut bt = vec![0i8; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        bt
    }

    fn ramp_i8(len: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) + 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (((state >> 33) % 255) as i32 - 127) as i8
            })
            .collect()
    }

    #[test]
    fn matches_naive_exactly_across_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 16),
            (5, 9, 3),
            (17, 33, 29),
            (64, 70, 65),
        ] {
            let a = ramp_i8(m * k, 7 + m as u64);
            let b = ramp_i8(k * n, 11 + n as u64);
            let bt = transpose(n, k, &b);
            let mut c = vec![9i32; m * n];
            let mut ws = QWorkspace::new();
            gemm_i8(m, n, k, &a, &bt, &mut c, GemmBlocking::default(), &mut ws);
            assert_eq!(c, naive(m, n, k, &a, &b), "({m},{n},{k})");
        }
    }

    #[test]
    fn blocking_does_not_change_results() {
        let (m, n, k) = (9, 11, 13);
        let a = ramp_i8(m * k, 3);
        let bt = ramp_i8(n * k, 5);
        let mut c1 = vec![0i32; m * n];
        let mut c2 = vec![0i32; m * n];
        let mut ws = QWorkspace::new();
        gemm_i8(m, n, k, &a, &bt, &mut c1, GemmBlocking::default(), &mut ws);
        let tiny = GemmBlocking {
            mc: 2,
            nc: 3,
            kc: 4,
        };
        gemm_i8(m, n, k, &a, &bt, &mut c2, tiny, &mut ws);
        assert_eq!(c1, c2);
    }

    #[test]
    fn requantize_rounds_clamps_and_relus() {
        let acc = [400i32, -400, 100, -100, 63, -63];
        let mult = [0.01f32, 1.0, 1.0];
        let mut out = [0i8; 6];
        requantize_into(&acc, 2, None, &mult, false, &mut out);
        assert_eq!(out, [4, -4, 100, -100, 63, -63]);
        requantize_into(&acc, 2, None, &mult, true, &mut out);
        assert_eq!(out, [4, 0, 100, 0, 63, 0]);
        // Saturation at ±127.
        let hot = [i32::MAX, i32::MIN];
        let mut out2 = [0i8; 2];
        requantize_into(&hot, 1, None, &[1.0, 1.0], false, &mut out2);
        assert_eq!(out2, [127, -127]);
    }

    #[test]
    fn requantize_bias_is_in_accumulator_units() {
        let acc = [10i32, 20];
        let bias = [5i32, -30];
        let mut out = [0i8; 2];
        requantize_into(&acc, 1, Some(&bias), &[1.0, 0.5], false, &mut out);
        assert_eq!(out, [15, -5]);
    }

    #[test]
    fn qgemv_matches_gemm_column() {
        let (m, k) = (7, 19);
        let w = ramp_i8(m * k, 21);
        let x = ramp_i8(k, 22);
        let bias: Vec<i32> = (0..m as i32).map(|i| i * 10 - 30).collect();
        let mult = vec![0.005f32; m];
        let mut ws = QWorkspace::new();
        let mut y = vec![0i8; m];
        qgemv_i8(m, k, &w, &x, Some(&bias), &mult, false, &mut y, &mut ws);
        // With n = 1 the transposed B *is* the x vector (1×k patch).
        let mut acc = vec![0i32; m];
        gemm_i8(m, 1, k, &w, &x, &mut acc, GemmBlocking::default(), &mut ws);
        let mut want = vec![0i8; m];
        requantize_into(&acc, 1, Some(&bias), &mult, false, &mut want);
        assert_eq!(y, want);
    }

    #[test]
    fn fused_requant_equals_separate_passes() {
        let (m, n, k) = (6, 10, 12);
        let a = ramp_i8(m * k, 31);
        let bt = ramp_i8(n * k, 37);
        let bias: Vec<i32> = (0..m as i32).map(|i| i * 7 - 20).collect();
        let mult: Vec<f32> = (0..m).map(|i| 0.001 + i as f32 * 0.0005).collect();
        let mut ws = QWorkspace::new();
        let mut fused = vec![0i8; m * n];
        gemm_i8_requant(
            m,
            n,
            k,
            &a,
            &bt,
            &mut fused,
            GemmBlocking::default(),
            Some(&bias),
            &mult,
            true,
            &mut ws,
        );
        let mut acc = vec![0i32; m * n];
        gemm_i8(m, n, k, &a, &bt, &mut acc, GemmBlocking::default(), &mut ws);
        let mut want = vec![0i8; m * n];
        requantize_into(&acc, n, Some(&bias), &mult, true, &mut want);
        assert_eq!(fused, want);
    }

    #[test]
    fn empty_dimensions_are_noops() {
        let mut c: Vec<i32> = vec![];
        let mut ws = QWorkspace::new();
        gemm_i8(0, 0, 3, &[], &[], &mut c, GemmBlocking::default(), &mut ws);
        assert!(c.is_empty());
    }

    #[test]
    fn zero_depth_yields_pure_bias() {
        let (m, n) = (2, 3);
        let mut out = vec![7i8; m * n];
        let mut ws = QWorkspace::new();
        gemm_i8_requant(
            m,
            n,
            0,
            &[],
            &[],
            &mut out,
            GemmBlocking::default(),
            Some(&[5, -9]),
            &[1.0, 1.0],
            false,
            &mut ws,
        );
        assert_eq!(out, [5, 5, 5, -9, -9, -9]);
    }
}
