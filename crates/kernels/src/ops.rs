//! Layer-level kernels assembled from the lowering and GEMM primitives.
//!
//! Every kernel writes into a caller-provided output slice and borrows
//! scratch space from a [`Workspace`], so a steady-state inference loop
//! performs no heap allocation per layer. Numerical results agree with
//! the golden loop-nest reference within f32 reassociation tolerance
//! (the GEMM accumulates each output in ascending-`k` order, the golden
//! engine in `(c, m, n)` order — same multiset of products).

use crate::gemm::{self, Epilogue, GemmBlocking};
use crate::im2col::{im2col, ConvGeometry};

/// Reusable scratch buffers for the lowering stage.
///
/// One workspace serves one inference thread: buffers grow to the
/// high-water mark of the network and are reused for every subsequent
/// layer and image.
#[derive(Debug, Default)]
pub struct Workspace {
    cols: Vec<f32>,
}

impl Workspace {
    /// A workspace with no buffers allocated yet.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// A workspace pre-sized so the first inference already runs
    /// allocation-free.
    pub fn with_capacity(cols_len: usize) -> Self {
        Workspace {
            cols: vec![0.0; cols_len],
        }
    }

    /// Scratch slice of exactly `len` elements, growing the buffer on
    /// first use.
    fn cols(&mut self, len: usize) -> &mut [f32] {
        if self.cols.len() < len {
            self.cols.resize(len, 0.0);
        }
        &mut self.cols[..len]
    }

    /// Current high-water capacity of the lowering buffer.
    pub fn cols_capacity(&self) -> usize {
        self.cols.len()
    }
}

/// Elementwise activation operators.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Activation {
    /// Leaky ReLU with the given negative slope (0.0 = plain ReLU).
    Relu(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

/// Convolution via im2col + blocked GEMM with a fused bias(+ReLU)
/// epilogue.
///
/// * `input` — `C×H×W` row-major (one image),
/// * `weights` — `F×C×K×K` row-major, which *is* the `F × (C·K·K)` GEMM
///   operand, so no weight repacking is needed,
/// * `out` — `F×outH×outW` row-major, exactly the GEMM result layout.
///
/// A 1×1/stride-1/no-pad convolution skips the lowering entirely: the
/// input already is the patch matrix.
///
/// # Panics
/// Panics when slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn conv2d(
    input: &[f32],
    weights: &[f32],
    bias: Option<&[f32]>,
    num_output: usize,
    geo: &ConvGeometry,
    fused_relu: Option<f32>,
    out: &mut [f32],
    ws: &mut Workspace,
) {
    let k_depth = geo.lowered_rows();
    let n_cols = geo.lowered_cols();
    assert_eq!(weights.len(), num_output * k_depth, "weight blob mismatch");
    assert_eq!(out.len(), num_output * n_cols, "output length mismatch");

    let epilogue = match (bias, fused_relu) {
        (Some(b), Some(slope)) => Epilogue::BiasRelu(b, slope),
        (Some(b), None) => Epilogue::Bias(b),
        (None, Some(slope)) => Epilogue::Relu(slope),
        (None, None) => Epilogue::None,
    };
    let blocking = GemmBlocking::default();
    if geo.is_identity() {
        gemm::gemm(
            num_output, n_cols, k_depth, weights, input, out, blocking, epilogue,
        );
    } else {
        let cols = ws.cols(geo.lowered_len());
        im2col(input, geo, cols);
        gemm::gemm(
            num_output, n_cols, k_depth, weights, cols, out, blocking, epilogue,
        );
    }
}

/// Pooling method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolMethod {
    /// Window maximum.
    Max,
    /// Window average over in-range positions (Caffe semantics: the
    /// divisor counts only positions inside the image).
    Average,
}

/// Sub-sampling over each feature map with direct slice arithmetic (no
/// per-element coordinate asserts).
///
/// # Panics
/// Panics when slice lengths disagree with the geometry.
#[allow(clippy::too_many_arguments)]
pub fn pool2d(
    input: &[f32],
    channels: usize,
    in_h: usize,
    in_w: usize,
    method: PoolMethod,
    kernel: usize,
    stride: usize,
    pad: usize,
    out_h: usize,
    out_w: usize,
    out: &mut [f32],
) {
    assert_eq!(input.len(), channels * in_h * in_w, "input length mismatch");
    assert_eq!(
        out.len(),
        channels * out_h * out_w,
        "output length mismatch"
    );
    for c in 0..channels {
        let map = &input[c * in_h * in_w..(c + 1) * in_h * in_w];
        let omap = &mut out[c * out_h * out_w..(c + 1) * out_h * out_w];
        for i in 0..out_h {
            let h_lo = (i * stride) as isize - pad as isize;
            let hh_lo = h_lo.max(0) as usize;
            let hh_hi = (h_lo + kernel as isize).clamp(0, in_h as isize) as usize;
            for j in 0..out_w {
                let w_lo = (j * stride) as isize - pad as isize;
                let ww_lo = w_lo.max(0) as usize;
                let ww_hi = (w_lo + kernel as isize).clamp(0, in_w as isize) as usize;
                let mut max = f32::NEG_INFINITY;
                let mut sum = 0.0f32;
                for hh in hh_lo..hh_hi {
                    let row = &map[hh * in_w + ww_lo..hh * in_w + ww_hi];
                    for &v in row {
                        max = max.max(v);
                        sum += v;
                    }
                }
                let count = (hh_hi.saturating_sub(hh_lo)) * (ww_hi.saturating_sub(ww_lo));
                omap[i * out_w + j] = match method {
                    PoolMethod::Max => max,
                    PoolMethod::Average => sum / count.max(1) as f32,
                };
            }
        }
    }
}

/// Applies an activation out-of-place (`out[i] = f(input[i])`).
///
/// # Panics
/// Panics on length mismatch.
pub fn activate(input: &[f32], act: Activation, out: &mut [f32]) {
    assert_eq!(input.len(), out.len(), "activation length mismatch");
    match act {
        Activation::Relu(slope) => {
            for (o, &v) in out.iter_mut().zip(input) {
                *o = if v > 0.0 { v } else { slope * v };
            }
        }
        Activation::Sigmoid => {
            for (o, &v) in out.iter_mut().zip(input) {
                *o = 1.0 / (1.0 + (-v).exp());
            }
        }
        Activation::Tanh => {
            for (o, &v) in out.iter_mut().zip(input) {
                *o = v.tanh();
            }
        }
    }
}

/// Numerically-stable (log-)softmax into `out`.
///
/// # Panics
/// Panics on length mismatch.
pub fn softmax(input: &[f32], log: bool, out: &mut [f32]) {
    assert_eq!(input.len(), out.len(), "softmax length mismatch");
    let max = input.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &v) in out.iter_mut().zip(input) {
        let e = (v - max).exp();
        *o = e;
        sum += e;
    }
    if log {
        let ln_sum = sum.ln();
        for (o, &v) in out.iter_mut().zip(input) {
            *o = (v - max) - ln_sum;
        }
    } else {
        for o in out.iter_mut() {
            *o /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_tensor::Shape;

    fn geo(in_c: usize, in_h: usize, in_w: usize, k: usize, s: usize, p: usize) -> ConvGeometry {
        ConvGeometry {
            in_c,
            in_h,
            in_w,
            kernel: k,
            stride: s,
            pad: p,
            out_h: Shape::conv_out_dim(in_h, k, s, p),
            out_w: Shape::conv_out_dim(in_w, k, s, p),
        }
    }

    #[test]
    fn hand_convolution() {
        // Same case as the golden engine's hand test: 2×2 input, 2×2
        // kernel, bias 0.5 → 70.5.
        let g = geo(1, 2, 2, 2, 1, 0);
        let mut out = [0.0f32];
        let mut ws = Workspace::new();
        conv2d(
            &[5.0, 6.0, 7.0, 8.0],
            &[1.0, 2.0, 3.0, 4.0],
            Some(&[0.5]),
            1,
            &g,
            None,
            &mut out,
            &mut ws,
        );
        assert_eq!(out, [70.5]);
    }

    #[test]
    fn one_by_one_conv_skips_lowering() {
        let g = geo(2, 3, 3, 1, 1, 0);
        assert!(g.is_identity());
        let input: Vec<f32> = (0..18).map(|v| v as f32).collect();
        let weights = [10.0, 100.0]; // one output map summing both inputs
        let mut out = [0.0f32; 9];
        let mut ws = Workspace::new();
        conv2d(&input, &weights, None, 1, &g, None, &mut out, &mut ws);
        assert_eq!(ws.cols_capacity(), 0, "identity lowering must not allocate");
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 10.0 * i as f32 + 100.0 * (i + 9) as f32);
        }
    }

    #[test]
    fn fused_relu_matches_separate_relu() {
        let g = geo(2, 5, 5, 3, 1, 1);
        let input: Vec<f32> = (0..50).map(|v| (v as f32 - 25.0) * 0.2).collect();
        let weights: Vec<f32> = (0..3 * 18).map(|v| ((v % 7) as f32 - 3.0) * 0.3).collect();
        let bias = [0.1, -0.2, 0.3];
        let mut ws = Workspace::new();
        let mut fused = vec![0.0; 3 * 25];
        conv2d(
            &input,
            &weights,
            Some(&bias),
            3,
            &g,
            Some(0.0),
            &mut fused,
            &mut ws,
        );
        let mut plain = vec![0.0; 3 * 25];
        conv2d(
            &input,
            &weights,
            Some(&bias),
            3,
            &g,
            None,
            &mut plain,
            &mut ws,
        );
        let mut relu = vec![0.0; 3 * 25];
        activate(&plain, Activation::Relu(0.0), &mut relu);
        assert_eq!(fused, relu);
    }

    #[test]
    fn max_pool_hand_values() {
        let input = [
            1.0, 2.0, 5.0, 6.0, //
            3.0, 4.0, 7.0, 8.0, //
            -1.0, -2.0, 0.0, 0.0, //
            -3.0, -4.0, 0.0, 9.0,
        ];
        let mut out = [0.0f32; 4];
        pool2d(&input, 1, 4, 4, PoolMethod::Max, 2, 2, 0, 2, 2, &mut out);
        assert_eq!(out, [4.0, 8.0, -1.0, 9.0]);
        pool2d(
            &input,
            1,
            4,
            4,
            PoolMethod::Average,
            2,
            2,
            0,
            2,
            2,
            &mut out,
        );
        assert_eq!(out, [2.5, 6.5, -2.5, 2.25]);
    }

    #[test]
    fn average_pool_excludes_padding_from_divisor() {
        // 2×2 input, 2×2 window, stride 2, pad 1 → 2×2 output where each
        // window sees exactly one in-range value.
        let input = [1.0, 2.0, 3.0, 6.0];
        let mut out = [0.0f32; 4];
        pool2d(
            &input,
            1,
            2,
            2,
            PoolMethod::Average,
            2,
            2,
            1,
            2,
            2,
            &mut out,
        );
        assert_eq!(out, [1.0, 2.0, 3.0, 6.0]);
    }

    #[test]
    fn activations_match_closed_forms() {
        let input = [-2.0, -0.5, 0.0, 3.0];
        let mut out = [0.0f32; 4];
        activate(&input, Activation::Relu(0.0), &mut out);
        assert_eq!(out, [0.0, 0.0, 0.0, 3.0]);
        activate(&input, Activation::Relu(0.1), &mut out);
        assert!((out[0] + 0.2).abs() < 1e-6);
        activate(&input, Activation::Sigmoid, &mut out);
        assert!((out[2] - 0.5).abs() < 1e-6);
        activate(&input, Activation::Tanh, &mut out);
        assert_eq!(out[2], 0.0);
    }

    #[test]
    fn softmax_normalises_and_logs() {
        let input = [1.0, 2.0, 3.0];
        let mut p = [0.0f32; 3];
        softmax(&input, false, &mut p);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        let mut lp = [0.0f32; 3];
        softmax(&input, true, &mut lp);
        for (a, b) in p.iter().zip(&lp) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn workspace_reuses_high_water_buffer() {
        let mut ws = Workspace::new();
        let g = geo(2, 6, 6, 3, 1, 1);
        let input = vec![0.5; 72];
        let weights = vec![0.1; 4 * 18];
        let mut out = vec![0.0; 4 * 36];
        conv2d(&input, &weights, None, 4, &g, None, &mut out, &mut ws);
        let cap = ws.cols_capacity();
        assert_eq!(cap, g.lowered_len());
        // A smaller layer must not shrink or grow the buffer.
        let g2 = geo(1, 4, 4, 3, 1, 0);
        let mut out2 = vec![0.0; 4];
        conv2d(
            &input[..16],
            &weights[..9],
            None,
            1,
            &g2,
            None,
            &mut out2,
            &mut ws,
        );
        assert_eq!(ws.cols_capacity(), cap);
    }
}
