//! Symmetric INT8 quantization: parameters, observers and converters.
//!
//! The scheme follows the ACCEL-v1 / TinyCNN style of narrow-precision
//! inference: **symmetric** linear quantization onto `[-127, 127]`
//! (`-128` is deliberately excluded so magnitudes stay below `2^7` and
//! products of two quantized values below `2^14` — the headroom the
//! packed GEMM micro-kernel in [`crate::qgemm`] relies on to accumulate
//! pairs of products in `i16` without overflow). Weights are quantized
//! **per output channel** (each filter gets its own scale, recovering
//! most of the accuracy lost to outlier filters), activations **per
//! tensor** with scales chosen by calibration observers:
//!
//! * [`MinMaxObserver`] — tracks the exact extrema of everything it saw;
//! * [`MovingAvgObserver`] — exponential moving average of per-batch
//!   extrema, the classic smoothed calibration for streaming data.
//!
//! Real values map as `q = clamp(round(x / scale), -127, 127)` and back
//! as `x ≈ q · scale`; for inputs inside the calibrated range the
//! round-trip error is bounded by `scale / 2` (property-tested).

/// Largest quantized magnitude: the symmetric scheme uses `[-127, 127]`.
pub const QMAX: i32 = 127;

/// Scale (and nominally zero point) of one quantized tensor or channel.
///
/// The symmetric scheme pins `zero_point` to 0; the field exists so the
/// serialized plan layout matches the usual affine-quantization schema
/// and an asymmetric extension stays representation-compatible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuantParams {
    /// Real value of one quantization step.
    pub scale: f32,
    /// Always 0 for the symmetric scheme.
    pub zero_point: i8,
}

impl QuantParams {
    /// Parameters mapping `[-abs_max, abs_max]` onto `[-127, 127]`.
    /// Non-finite or non-positive ranges degrade to a unit range rather
    /// than a degenerate zero scale.
    pub fn from_abs_max(abs_max: f32) -> Self {
        let m = if abs_max.is_finite() && abs_max > 0.0 {
            abs_max
        } else {
            1.0
        };
        QuantParams {
            scale: m / QMAX as f32,
            zero_point: 0,
        }
    }

    /// Quantizes one value (round-to-nearest, saturating).
    pub fn quantize(self, x: f32) -> i8 {
        let q = (x / self.scale).round();
        q.clamp(-(QMAX as f32), QMAX as f32) as i8
    }

    /// Recovers the real value of one quantized step.
    pub fn dequantize(self, q: i8) -> f32 {
        q as f32 * self.scale
    }
}

/// Quantizes a slice (`out[i] = params.quantize(src[i])`).
///
/// # Panics
/// Panics on length mismatch.
pub fn quantize_into(src: &[f32], params: QuantParams, out: &mut [i8]) {
    assert_eq!(src.len(), out.len(), "quantize length mismatch");
    let inv = 1.0 / params.scale;
    for (o, &x) in out.iter_mut().zip(src) {
        let q = (x * inv).round().clamp(-(QMAX as f32), QMAX as f32);
        *o = q as i8;
    }
}

/// Dequantizes a slice (`out[i] = params.dequantize(src[i])`).
///
/// # Panics
/// Panics on length mismatch.
pub fn dequantize_into(src: &[i8], params: QuantParams, out: &mut [f32]) {
    assert_eq!(src.len(), out.len(), "dequantize length mismatch");
    for (o, &q) in out.iter_mut().zip(src) {
        *o = q as f32 * params.scale;
    }
}

/// Per-output-channel symmetric weight quantization.
///
/// `weights` is the usual `F × (C·K·K)` row-major filter bank (a row per
/// output channel); each row is quantized with its own scale. Returns
/// one [`QuantParams`] per channel, in row order.
///
/// # Panics
/// Panics when lengths disagree or `channels` does not divide them.
pub fn quantize_weights_per_channel(
    weights: &[f32],
    channels: usize,
    out: &mut [i8],
) -> Vec<QuantParams> {
    assert_eq!(weights.len(), out.len(), "weight quantize length mismatch");
    assert!(channels > 0, "channels must be positive");
    assert_eq!(
        weights.len() % channels,
        0,
        "channels must divide the weight count"
    );
    let row = weights.len() / channels;
    let mut params = Vec::with_capacity(channels);
    for c in 0..channels {
        let w = &weights[c * row..(c + 1) * row];
        let abs_max = w.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let p = QuantParams::from_abs_max(abs_max);
        quantize_into(w, p, &mut out[c * row..(c + 1) * row]);
        params.push(p);
    }
    params
}

/// Exact min/max calibration observer.
///
/// Feed it every activation tensor the calibration batch produces for
/// one network node; [`MinMaxObserver::params`] then covers everything
/// it saw.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinMaxObserver {
    min: f32,
    max: f32,
    seen: bool,
}

impl MinMaxObserver {
    /// A fresh observer that has seen nothing.
    pub fn new() -> Self {
        MinMaxObserver::default()
    }

    /// Folds one tensor's extrema into the running range.
    pub fn observe(&mut self, values: &[f32]) {
        for &v in values {
            if !v.is_finite() {
                continue;
            }
            if !self.seen {
                self.min = v;
                self.max = v;
                self.seen = true;
            } else {
                self.min = self.min.min(v);
                self.max = self.max.max(v);
            }
        }
    }

    /// The observed range (`None` before any finite observation).
    pub fn range(&self) -> Option<(f32, f32)> {
        self.seen.then_some((self.min, self.max))
    }

    /// Symmetric parameters covering the observed range.
    pub fn params(&self) -> QuantParams {
        QuantParams::from_abs_max(self.min.abs().max(self.max.abs()))
    }
}

/// Moving-average calibration observer.
///
/// Each [`MovingAvgObserver::observe`] call is one calibration batch:
/// its absolute maximum is folded into an exponential moving average
/// (`ema = momentum · ema + (1 − momentum) · batch_max`), which smooths
/// single-batch outliers the way streaming calibration pipelines do.
#[derive(Clone, Copy, Debug)]
pub struct MovingAvgObserver {
    momentum: f32,
    ema: Option<f32>,
}

impl MovingAvgObserver {
    /// An observer with the given momentum in `[0, 1)` (clamped); 0.9 is
    /// the conventional default.
    pub fn new(momentum: f32) -> Self {
        MovingAvgObserver {
            momentum: momentum.clamp(0.0, 0.999_999),
            ema: None,
        }
    }

    /// Folds one batch's absolute maximum into the moving average.
    pub fn observe(&mut self, values: &[f32]) {
        let batch_max = values
            .iter()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |m, &v| m.max(v.abs()));
        self.ema = Some(match self.ema {
            None => batch_max,
            Some(e) => self.momentum * e + (1.0 - self.momentum) * batch_max,
        });
    }

    /// The smoothed absolute maximum (`None` before any observation).
    pub fn abs_max(&self) -> Option<f32> {
        self.ema
    }

    /// Symmetric parameters covering the smoothed range.
    pub fn params(&self) -> QuantParams {
        QuantParams::from_abs_max(self.ema.unwrap_or(0.0))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn ramp(len: usize, scale: f32) -> Vec<f32> {
        (0..len).map(|i| ((i % 29) as f32 - 14.0) * scale).collect()
    }

    #[test]
    fn roundtrip_error_is_bounded_by_half_a_step() {
        for seed in 0..32u32 {
            // Deterministic pseudo-random values in [-8, 8].
            let mut state = (seed as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) + 1;
            let vals: Vec<f32> = (0..257)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((state >> 33) as f32 / (1u64 << 31) as f32 - 0.5) * 16.0
                })
                .collect();
            let abs_max = vals.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let p = QuantParams::from_abs_max(abs_max);
            let mut q = vec![0i8; vals.len()];
            quantize_into(&vals, p, &mut q);
            let mut back = vec![0.0f32; vals.len()];
            dequantize_into(&q, p, &mut back);
            for (x, y) in vals.iter().zip(&back) {
                assert!(
                    (x - y).abs() <= p.scale / 2.0 + f32::EPSILON * abs_max,
                    "seed {seed}: |{x} - {y}| > scale/2 = {}",
                    p.scale / 2.0
                );
            }
        }
    }

    #[test]
    fn quantize_saturates_outside_the_calibrated_range() {
        let p = QuantParams::from_abs_max(1.0);
        assert_eq!(p.quantize(5.0), 127);
        assert_eq!(p.quantize(-5.0), -127);
        assert_eq!(p.quantize(0.0), 0);
    }

    #[test]
    fn degenerate_ranges_get_a_unit_scale() {
        for bad in [0.0, -1.0, f32::NAN, f32::INFINITY] {
            let p = QuantParams::from_abs_max(bad);
            assert!(p.scale.is_finite() && p.scale > 0.0, "abs_max {bad}");
        }
    }

    #[test]
    fn per_channel_scales_are_independent() {
        // Row 0 spans ±1, row 1 spans ±100: per-channel quantization
        // must keep row 0's resolution fine.
        let w = [0.5f32, -1.0, 1.0, 50.0, -100.0, 25.0];
        let mut q = vec![0i8; 6];
        let params = quantize_weights_per_channel(&w, 2, &mut q);
        assert_eq!(params.len(), 2);
        assert!(params[0].scale < 0.01);
        assert!(params[1].scale > 0.5);
        assert_eq!(q[1], -127);
        assert_eq!(q[4], -127);
    }

    #[test]
    fn minmax_observer_covers_everything_seen() {
        let mut obs = MinMaxObserver::new();
        obs.observe(&ramp(64, 0.25));
        obs.observe(&[9.5, -2.0]);
        let (lo, hi) = obs.range().unwrap();
        assert_eq!(hi, 9.5);
        assert!(lo <= -3.0);
        let p = obs.params();
        assert!((p.scale - 9.5 / 127.0).abs() < 1e-6);
    }

    #[test]
    fn moving_average_smooths_batch_outliers() {
        let mut obs = MovingAvgObserver::new(0.9);
        obs.observe(&[1.0, -1.0]);
        obs.observe(&[100.0]); // single outlier batch
        let ema = obs.abs_max().unwrap();
        assert!(ema < 15.0, "outlier should be damped, got {ema}");
        assert!(ema > 1.0);
    }

    #[test]
    fn observers_ignore_non_finite_values() {
        let mut mm = MinMaxObserver::new();
        mm.observe(&[f32::NAN, f32::INFINITY, 2.0]);
        assert_eq!(mm.range().unwrap(), (2.0, 2.0));
        let mut ma = MovingAvgObserver::new(0.5);
        ma.observe(&[f32::NAN, 3.0]);
        assert_eq!(ma.abs_max().unwrap(), 3.0);
    }
}
