//! Property tests: arbitrary JSON documents survive write→parse round trips.

#![allow(clippy::unwrap_used)] // test code: unwrap is the assertion

use condor_cjson::{parse, to_string, to_string_pretty, Number, Value};
use proptest::prelude::*;

/// Strategy producing arbitrary JSON values of bounded depth/size.
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::int),
        // Finite floats only: JSON has no NaN/Inf.
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::float),
        // Arbitrary unicode strings, including escapes-in-waiting.
        ".*".prop_map(Value::str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..8).prop_map(Value::Array),
            prop::collection::btree_map(".*", inner, 0..8).prop_map(Value::Object),
        ]
    })
}

proptest! {
    #[test]
    fn compact_roundtrip(v in value_strategy()) {
        let text = to_string(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn pretty_roundtrip(v in value_strategy()) {
        let text = to_string_pretty(&v);
        let back = parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn parse_never_panics_on_arbitrary_input(s in ".*") {
        let _ = parse(&s); // must return Err, not panic
    }

    #[test]
    fn integers_keep_integer_identity(n in any::<i64>()) {
        let back = parse(&to_string(&Value::int(n))).unwrap();
        prop_assert_eq!(back, Value::Num(Number::Int(n)));
    }
}
