//! # condor-cjson
//!
//! A small, dependency-free JSON implementation used for the Condor
//! network-representation files.
//!
//! The paper's core-logic tier consumes "an internal JSON" that "resembles
//! the caffe prototxt file but contains more information about the
//! underlying hardware of the accelerator, such as the desired board, the
//! operating frequency and desired level of parallelism of each layer"
//! (Section 3.1.1). This crate provides the document substrate for that
//! format: a [`Value`] tree, a strict RFC 8259 parser, a writer with
//! optional pretty-printing, and typed accessors used by the frontend when
//! validating user input.
//!
//! It is written from scratch (rather than pulling in `serde_json`) because
//! the JSON layer is one of the substrates this reproduction is required to
//! own end-to-end, and because error positions (line/column) matter for the
//! frontend's user-facing diagnostics.

#![forbid(unsafe_code)]

pub mod access;
pub mod parse;
pub mod value;
pub mod write;

pub use access::AccessError;
pub use parse::{parse, ParseError};
pub use value::{Number, Value};
pub use write::{to_string, to_string_pretty};
