//! JSON serialisation (compact and pretty).
//!
//! Output is deterministic: object keys serialise in `BTreeMap` order and
//! float formatting uses Rust's shortest-roundtrip `f64` display, so the
//! generated network-representation artifacts are byte-stable across runs.

use crate::value::{Number, Value};

/// Serialises a value compactly (no insignificant whitespace).
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, None, 0, &mut out);
    out
}

/// Serialises a value with two-space indentation, the style the framework
/// uses for on-disk network-representation files.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, Some(2), 0, &mut out);
    out
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_value(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            let s = format!("{v}");
            out.push_str(&s);
            // Keep floats recognisable as floats on re-parse.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::parse::parse;

    #[test]
    fn compact_roundtrip() {
        let doc = r#"{"a":[1,2.5,null,true,"x\ny"],"b":{"c":-3}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(to_string(&v), doc);
    }

    #[test]
    fn pretty_output_shape() {
        let v = parse(r#"{"a":[1],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_keeps_float_identity() {
        let v = Value::float(2.0);
        let s = to_string(&v);
        assert_eq!(s, "2.0");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn control_chars_escape() {
        let v = Value::str("a\u{1}b");
        assert_eq!(to_string(&v), "\"a\\u0001b\"");
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
    }

    #[test]
    fn deterministic_key_order() {
        let v = parse(r#"{"zeta":1,"alpha":2}"#).unwrap();
        assert_eq!(to_string(&v), r#"{"alpha":2,"zeta":1}"#);
    }
}
