//! Strict recursive-descent JSON parser with line/column diagnostics.

use crate::value::{Number, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A parse failure with its position in the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser::new(input);
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Nesting limit guarding against stack exhaustion on adversarial input.
const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            line,
            col,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{}', found {}",
                b as char,
                self.describe_here()
            )))
        }
    }

    fn describe_here(&self) -> String {
        match self.peek() {
            Some(b) if b.is_ascii_graphic() => format!("'{}'", b as char),
            Some(b) => format!("byte 0x{b:02x}"),
            None => "end of input".to_string(),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal, expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err(format!("expected a value, found {}", self.describe_here()))),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err(format!("nesting deeper than {MAX_DEPTH}")))
        } else {
            Ok(())
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
        self.depth -= 1;
        Ok(Value::Object(map))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
        self.depth -= 1;
        Ok(Value::Array(items))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: must be followed by \uXXXX low.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unpaired low surrogate"));
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: input came from &str so it is valid;
                    // reassemble the char.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 start byte")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: either a single 0, or 1-9 followed by digits.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Num(Number::Int(v)));
            }
            // Integer out of i64 range: fall back to float.
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparseable number '{text}'")))?;
        if !v.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Value::Num(Number::Float(v)))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::int(42));
        assert_eq!(parse("-7").unwrap(), Value::int(-7));
        assert_eq!(parse("2.5").unwrap(), Value::float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"name":"lenet","layers":[{"type":"conv","kernel":5},{"type":"pool"}],"freq_mhz":180.0}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("lenet"));
        let layers = v.get("layers").and_then(Value::as_array).unwrap();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].get("kernel").and_then(Value::as_i64), Some(5));
        assert_eq!(v.get("freq_mhz").and_then(Value::as_f64), Some(180.0));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\n\t\"\\Aé""#).unwrap(),
            Value::str("a\n\t\"\\Aé")
        );
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(parse(r#""😀""#).unwrap(), Value::str("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn raw_utf8_in_strings() {
        assert_eq!(parse("\"héllo 😀\"").unwrap(), Value::str("héllo 😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1 2]",
            "01",
            "1.",
            ".5",
            "+1",
            "tru",
            "\"abc",
            "{\"a\":1,}",
            "[1,]",
            "nan",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let e = parse("{} x").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn rejects_duplicate_keys() {
        let e = parse(r#"{"a":1,"a":2}"#).unwrap_err();
        assert!(e.message.contains("duplicate key"));
    }

    #[test]
    fn error_positions_are_line_and_column() {
        let e = parse("{\n  \"a\": @\n}").unwrap_err();
        assert_eq!((e.line, e.col), (2, 8));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let doc = "[".repeat(200) + &"]".repeat(200);
        let e = parse(&doc).unwrap_err();
        assert!(e.message.contains("nesting"));
        // At the limit it still works.
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn huge_integer_falls_back_to_float() {
        let v = parse("123456789012345678901234567890").unwrap();
        assert!(matches!(v, Value::Num(Number::Float(_))));
    }

    #[test]
    fn whitespace_everywhere() {
        let v = parse(" \t\r\n{ \"a\" : [ 1 , 2 ] } \n").unwrap();
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(<[Value]>::len),
            Some(2)
        );
    }
}
