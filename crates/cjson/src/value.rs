//! JSON value tree.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number.
///
/// JSON itself does not distinguish integers from floats; the Condor
/// network representation however mixes exact integer fields (kernel sizes,
/// parallelism degrees) with real-valued ones (target frequency in MHz), so
/// the distinction is preserved losslessly when parsing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A number written without fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other finite number.
    Float(f64),
}

impl Number {
    /// The value as `f64` regardless of representation.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as `i64` when it is an integer (or an integral float).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(v) => Some(v),
            Number::Float(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            Number::Float(_) => None,
        }
    }
}

/// A JSON document node.
///
/// Objects use a `BTreeMap` so serialisation order is deterministic — the
/// framework writes network-representation files as build artifacts and
/// byte-stable output makes them diffable and testable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(Number),
    /// A JSON string (unescaped).
    Str(String),
    /// `[ ... ]`
    Array(Vec<Value>),
    /// `{ ... }`
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an integer number node.
    pub fn int(v: i64) -> Value {
        Value::Num(Number::Int(v))
    }

    /// Builds a float number node.
    pub fn float(v: f64) -> Value {
        Value::Num(Number::Float(v))
    }

    /// Builds a string node.
    pub fn str(v: impl Into<String>) -> Value {
        Value::Str(v.into())
    }

    /// Builds an object node from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (String, Value)>) -> Value {
        Value::Object(pairs.into_iter().collect())
    }

    /// The node's type name, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrow as object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Numeric value as `i64` when integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::write::to_string(self))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::int(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn number_conversions() {
        assert_eq!(Number::Int(5).as_f64(), 5.0);
        assert_eq!(Number::Int(5).as_i64(), Some(5));
        assert_eq!(Number::Float(5.0).as_i64(), Some(5));
        assert_eq!(Number::Float(5.5).as_i64(), None);
    }

    #[test]
    fn typed_accessors() {
        let v = Value::object([
            ("name".to_string(), Value::str("conv1")),
            ("kernel".to_string(), Value::int(5)),
            ("freq".to_string(), Value::float(100.5)),
            ("relu".to_string(), Value::Bool(true)),
        ]);
        assert_eq!(v.get("name").and_then(Value::as_str), Some("conv1"));
        assert_eq!(v.get("kernel").and_then(Value::as_i64), Some(5));
        assert_eq!(v.get("freq").and_then(Value::as_f64), Some(100.5));
        assert_eq!(v.get("relu").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("x"), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3usize), Value::int(3));
        assert_eq!(
            Value::from(vec![1i64, 2]),
            Value::Array(vec![Value::int(1), Value::int(2)])
        );
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Array(vec![]).type_name(), "array");
    }
}
