//! Typed, path-aware field access.
//!
//! The Condor frontend validates user-authored network-representation
//! files; when a field is missing or has the wrong type the error must name
//! the document path (`layers[3].kernel_size`) rather than a byte offset.
//! These helpers build those diagnostics.

use crate::value::Value;
use std::fmt;

/// A field-access failure with the document path that caused it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessError {
    /// Dotted/bracketed path of the offending field.
    pub path: String,
    /// What went wrong.
    pub message: String,
}

impl AccessError {
    fn new(path: &str, message: impl Into<String>) -> Self {
        AccessError {
            path: path.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at `{}`: {}", self.path, self.message)
    }
}

impl std::error::Error for AccessError {}

/// Required object field, any type.
pub fn req<'a>(v: &'a Value, path: &str, key: &str) -> Result<&'a Value, AccessError> {
    let obj = v
        .as_object()
        .ok_or_else(|| AccessError::new(path, format!("expected object, got {}", v.type_name())))?;
    obj.get(key)
        .ok_or_else(|| AccessError::new(&join(path, key), "missing required field"))
}

/// Required string field.
pub fn req_str<'a>(v: &'a Value, path: &str, key: &str) -> Result<&'a str, AccessError> {
    let field = req(v, path, key)?;
    field
        .as_str()
        .ok_or_else(|| type_err(path, key, "string", field))
}

/// Required non-negative integer field.
pub fn req_usize(v: &Value, path: &str, key: &str) -> Result<usize, AccessError> {
    let field = req(v, path, key)?;
    let n = field
        .as_i64()
        .ok_or_else(|| type_err(path, key, "integer", field))?;
    usize::try_from(n)
        .map_err(|_| AccessError::new(&join(path, key), format!("must be non-negative, got {n}")))
}

/// Required finite float field (integers accepted).
pub fn req_f64(v: &Value, path: &str, key: &str) -> Result<f64, AccessError> {
    let field = req(v, path, key)?;
    field
        .as_f64()
        .ok_or_else(|| type_err(path, key, "number", field))
}

/// Required array field.
pub fn req_array<'a>(v: &'a Value, path: &str, key: &str) -> Result<&'a [Value], AccessError> {
    let field = req(v, path, key)?;
    field
        .as_array()
        .ok_or_else(|| type_err(path, key, "array", field))
}

/// Optional string field.
pub fn opt_str<'a>(v: &'a Value, path: &str, key: &str) -> Result<Option<&'a str>, AccessError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(field) => field
            .as_str()
            .map(Some)
            .ok_or_else(|| type_err(path, key, "string", field)),
    }
}

/// Optional non-negative integer with a default.
pub fn usize_or(v: &Value, path: &str, key: &str, default: usize) -> Result<usize, AccessError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(field) => {
            let n = field
                .as_i64()
                .ok_or_else(|| type_err(path, key, "integer", field))?;
            usize::try_from(n).map_err(|_| {
                AccessError::new(&join(path, key), format!("must be non-negative, got {n}"))
            })
        }
    }
}

/// Optional finite float with a default.
pub fn f64_or(v: &Value, path: &str, key: &str, default: f64) -> Result<f64, AccessError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(field) => field
            .as_f64()
            .ok_or_else(|| type_err(path, key, "number", field)),
    }
}

/// Optional bool with a default.
pub fn bool_or(v: &Value, path: &str, key: &str, default: bool) -> Result<bool, AccessError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(field) => field
            .as_bool()
            .ok_or_else(|| type_err(path, key, "bool", field)),
    }
}

/// Path of the `i`-th element of array field `key`.
pub fn elem_path(path: &str, key: &str, i: usize) -> String {
    format!("{}[{i}]", join(path, key))
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn type_err(path: &str, key: &str, want: &str, got: &Value) -> AccessError {
    AccessError::new(
        &join(path, key),
        format!("expected {want}, got {}", got.type_name()),
    )
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::parse::parse;

    fn doc() -> Value {
        parse(r#"{"name":"lenet","kernel":5,"freq":180.5,"relu":true,"layers":[1,2]}"#).unwrap()
    }

    #[test]
    fn required_fields_succeed() {
        let d = doc();
        assert_eq!(req_str(&d, "", "name").unwrap(), "lenet");
        assert_eq!(req_usize(&d, "", "kernel").unwrap(), 5);
        assert_eq!(req_f64(&d, "", "freq").unwrap(), 180.5);
        assert_eq!(req_array(&d, "", "layers").unwrap().len(), 2);
    }

    #[test]
    fn missing_field_names_path() {
        let d = doc();
        let e = req_str(&d, "net", "board").unwrap_err();
        assert_eq!(e.path, "net.board");
        assert!(e.message.contains("missing"));
    }

    #[test]
    fn wrong_type_names_expectation() {
        let d = doc();
        let e = req_usize(&d, "", "name").unwrap_err();
        assert_eq!(e.path, "name");
        assert!(e.message.contains("expected integer, got string"));
    }

    #[test]
    fn negative_integer_rejected_for_usize() {
        let d = parse(r#"{"k":-3}"#).unwrap();
        let e = req_usize(&d, "", "k").unwrap_err();
        assert!(e.message.contains("non-negative"));
    }

    #[test]
    fn defaults_apply_only_when_absent_or_null() {
        let d = parse(r#"{"a":7,"b":null}"#).unwrap();
        assert_eq!(usize_or(&d, "", "a", 1).unwrap(), 7);
        assert_eq!(usize_or(&d, "", "b", 1).unwrap(), 1);
        assert_eq!(usize_or(&d, "", "c", 1).unwrap(), 1);
        assert_eq!(f64_or(&d, "", "c", 2.5).unwrap(), 2.5);
        assert!(bool_or(&d, "", "c", true).unwrap());
        assert_eq!(opt_str(&d, "", "c").unwrap(), None);
    }

    #[test]
    fn access_on_non_object_fails() {
        let e = req(&Value::int(1), "layers[0]", "type").unwrap_err();
        assert!(e.message.contains("expected object"));
    }

    #[test]
    fn elem_path_formats() {
        assert_eq!(elem_path("net", "layers", 3), "net.layers[3]");
        assert_eq!(elem_path("", "layers", 0), "layers[0]");
    }
}
