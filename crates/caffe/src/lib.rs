//! # condor-caffe
//!
//! From-scratch implementation of the two Caffe artifact formats the Condor
//! frontend consumes (paper Section 3.1.1):
//!
//! * **`prototxt`** — the protobuf *text format* description of the network
//!   topology ([`text`], [`model::NetParameter::from_prototxt`]);
//! * **`caffemodel`** — the protobuf *binary wire format* serialisation of a
//!   trained `NetParameter`, carrying the layer weights as `BlobProto`
//!   messages ([`wire`], [`model::NetParameter::decode`]).
//!
//! Both formats are implemented against the subset of `caffe.proto` that
//! CNN inference needs (`NetParameter`, `LayerParameter`, `BlobProto`,
//! convolution/pooling/inner-product/activation/input parameters). Field
//! numbers follow upstream `caffe.proto` so that real artifacts for the
//! supported layer types parse correctly; unknown fields are skipped per
//! protobuf semantics instead of rejected.
//!
//! An encoder is provided as well: the test-suite and examples fabricate
//! `caffemodel` files (we cannot ship trained weights) and feed them
//! through the same decode path a real model would take.

#![forbid(unsafe_code)]

pub mod model;
pub mod text;
pub mod wire;

pub use model::{
    BlobProto, BlobShape, ConcatParameter, ConvolutionParameter, EltwiseOperation,
    EltwiseParameter, InnerProductParameter, InputParameter, LayerParameter, NetParameter,
    PoolMethod, PoolingParameter,
};
pub use text::{TextError, TextErrorKind, TextMessage, TextScalar, TextValue};

pub use wire::{WireError, WireReader, WireType, WireWriter};
