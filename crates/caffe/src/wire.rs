//! Protocol-buffers wire format (proto2 subset).
//!
//! Implements the varint / 64-bit / length-delimited / 32-bit wire types,
//! field tags, packed repeated scalars and unknown-field skipping — enough
//! to encode and decode Caffe `NetParameter` trees byte-compatibly with the
//! official implementation for the message subset this workspace models.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Protobuf wire types (tag & 0x7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireType {
    /// Base-128 varint.
    Varint = 0,
    /// Little-endian 64-bit scalar (`fixed64`, `double`).
    Fixed64 = 1,
    /// Length-prefixed payload (strings, bytes, sub-messages, packed).
    LengthDelimited = 2,
    /// Little-endian 32-bit scalar (`fixed32`, `float`).
    Fixed32 = 5,
}

impl WireType {
    fn from_bits(bits: u64) -> Result<WireType, WireError> {
        match bits {
            0 => Ok(WireType::Varint),
            1 => Ok(WireType::Fixed64),
            2 => Ok(WireType::LengthDelimited),
            5 => Ok(WireType::Fixed32),
            other => Err(WireError::new(format!("unsupported wire type {other}"))),
        }
    }
}

/// Decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        WireError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protobuf wire error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

/// Streaming encoder for the protobuf wire format.
#[derive(Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Finishes encoding and returns the bytes.
    pub fn into_bytes(self) -> Bytes {
        self.buf.freeze()
    }

    /// Encoded length so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn tag(&mut self, field: u32, wt: WireType) {
        self.varint(((field as u64) << 3) | wt as u64);
    }

    /// Writes a raw base-128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// `field: uint32/uint64/int64/bool/enum` (varint).
    pub fn uint(&mut self, field: u32, v: u64) {
        self.tag(field, WireType::Varint);
        self.varint(v);
    }

    /// `field: bool`.
    pub fn bool(&mut self, field: u32, v: bool) {
        self.uint(field, v as u64);
    }

    /// `field: int64` two's-complement (proto2 `int32`/`int64` negative
    /// values encode as 10-byte varints).
    pub fn int(&mut self, field: u32, v: i64) {
        self.uint(field, v as u64);
    }

    /// `field: float` (fixed32).
    pub fn float(&mut self, field: u32, v: f32) {
        self.tag(field, WireType::Fixed32);
        self.buf.put_f32_le(v);
    }

    /// `field: string`.
    pub fn string(&mut self, field: u32, v: &str) {
        self.bytes(field, v.as_bytes());
    }

    /// `field: bytes`.
    pub fn bytes(&mut self, field: u32, v: &[u8]) {
        self.tag(field, WireType::LengthDelimited);
        self.varint(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Length-delimited sub-message encoded by `f`.
    pub fn message(&mut self, field: u32, f: impl FnOnce(&mut WireWriter)) {
        let mut inner = WireWriter::new();
        f(&mut inner);
        self.bytes(field, &inner.buf);
    }

    /// Packed repeated `float` — the encoding Caffe uses for
    /// `BlobProto.data`.
    pub fn packed_floats(&mut self, field: u32, vs: &[f32]) {
        if vs.is_empty() {
            return;
        }
        self.tag(field, WireType::LengthDelimited);
        self.varint((vs.len() * 4) as u64);
        for &v in vs {
            self.buf.put_f32_le(v);
        }
    }

    /// Packed repeated varints (`BlobShape.dim`).
    pub fn packed_varints(&mut self, field: u32, vs: &[u64]) {
        if vs.is_empty() {
            return;
        }
        let mut inner = WireWriter::new();
        for &v in vs {
            inner.varint(v);
        }
        self.bytes(field, &inner.buf);
    }
}

/// Streaming decoder over a byte slice.
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a complete message payload.
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data, pos: 0 }
    }

    /// True when the payload is exhausted.
    pub fn is_at_end(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Reads the next field tag, or `None` at end of payload.
    pub fn next_field(&mut self) -> Result<Option<(u32, WireType)>, WireError> {
        if self.is_at_end() {
            return Ok(None);
        }
        let key = self.read_varint()?;
        let field = (key >> 3) as u32;
        if field == 0 {
            return Err(WireError::new("field number 0 is invalid"));
        }
        Ok(Some((field, WireType::from_bits(key & 0x7)?)))
    }

    /// Reads a raw varint.
    pub fn read_varint(&mut self) -> Result<u64, WireError> {
        let mut result = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .data
                .get(self.pos)
                .ok_or_else(|| WireError::new("truncated varint"))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(WireError::new("varint longer than 10 bytes"));
            }
            if shift == 63 && (byte & 0x7e) != 0 {
                return Err(WireError::new("varint overflows u64"));
            }
            result |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads a fixed 32-bit float.
    pub fn read_float(&mut self) -> Result<f32, WireError> {
        let bytes = self.take(4)?;
        let mut b = bytes;
        Ok(b.get_f32_le())
    }

    /// Reads a fixed 64-bit scalar.
    pub fn read_fixed64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8)?;
        let mut b = bytes;
        Ok(b.get_u64_le())
    }

    /// Reads a length-delimited payload.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.read_varint()? as usize;
        self.take(len)
    }

    /// Reads a length-delimited payload as UTF-8.
    pub fn read_string(&mut self) -> Result<String, WireError> {
        let b = self.read_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::new("invalid UTF-8 in string field"))
    }

    /// Reads a `float` field that may be packed (length-delimited) or
    /// unpacked (fixed32), appending to `out` — proto2 parsers must accept
    /// both encodings.
    pub fn read_floats(&mut self, wt: WireType, out: &mut Vec<f32>) -> Result<(), WireError> {
        match wt {
            WireType::Fixed32 => out.push(self.read_float()?),
            WireType::LengthDelimited => {
                let payload = self.read_bytes()?;
                if payload.len() % 4 != 0 {
                    return Err(WireError::new("packed float payload not multiple of 4"));
                }
                out.reserve(payload.len() / 4);
                for chunk in payload.chunks_exact(4) {
                    out.push(f32::from_le_bytes(chunk.try_into().expect("4-byte chunk")));
                }
            }
            other => {
                return Err(WireError::new(format!(
                    "wire type {other:?} invalid for float field"
                )))
            }
        }
        Ok(())
    }

    /// Reads a varint field that may be packed or unpacked, appending to
    /// `out`.
    pub fn read_varints(&mut self, wt: WireType, out: &mut Vec<u64>) -> Result<(), WireError> {
        match wt {
            WireType::Varint => out.push(self.read_varint()?),
            WireType::LengthDelimited => {
                let payload = self.read_bytes()?;
                let mut inner = WireReader::new(payload);
                while !inner.is_at_end() {
                    out.push(inner.read_varint()?);
                }
            }
            other => {
                return Err(WireError::new(format!(
                    "wire type {other:?} invalid for varint field"
                )))
            }
        }
        Ok(())
    }

    /// Skips a field of the given wire type (unknown-field tolerance).
    pub fn skip(&mut self, wt: WireType) -> Result<(), WireError> {
        match wt {
            WireType::Varint => {
                self.read_varint()?;
            }
            WireType::Fixed64 => {
                self.take(8)?;
            }
            WireType::LengthDelimited => {
                self.read_bytes()?;
            }
            WireType::Fixed32 => {
                self.take(4)?;
            }
        }
        Ok(())
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if self.pos + len > self.data.len() {
            return Err(WireError::new(format!(
                "truncated payload: need {len} bytes, have {}",
                self.data.len() - self.pos
            )));
        }
        let slice = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn roundtrip_varint(v: u64) -> u64 {
        let mut w = WireWriter::new();
        w.varint(v);
        let bytes = w.into_bytes();
        WireReader::new(&bytes).read_varint().unwrap()
    }

    #[test]
    fn varint_boundaries() {
        for v in [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            assert_eq!(roundtrip_varint(v), v);
        }
    }

    #[test]
    fn varint_known_encoding() {
        // 300 = 0xAC 0x02, the canonical protobuf example.
        let mut w = WireWriter::new();
        w.varint(300);
        assert_eq!(&w.into_bytes()[..], &[0xAC, 0x02]);
    }

    #[test]
    fn tag_encoding_matches_spec() {
        // field 1, varint 150 → 08 96 01 (protobuf docs example).
        let mut w = WireWriter::new();
        w.uint(1, 150);
        assert_eq!(&w.into_bytes()[..], &[0x08, 0x96, 0x01]);
    }

    #[test]
    fn string_field_roundtrip() {
        let mut w = WireWriter::new();
        w.string(2, "testing");
        let bytes = w.into_bytes();
        // field 2 LEN → 0x12, len 7.
        assert_eq!(bytes[0], 0x12);
        assert_eq!(bytes[1], 7);
        let mut r = WireReader::new(&bytes);
        let (f, wt) = r.next_field().unwrap().unwrap();
        assert_eq!((f, wt), (2, WireType::LengthDelimited));
        assert_eq!(r.read_string().unwrap(), "testing");
        assert!(r.next_field().unwrap().is_none());
    }

    #[test]
    fn packed_floats_roundtrip() {
        let vs = [1.0f32, -2.5, 3.25, f32::MIN_POSITIVE];
        let mut w = WireWriter::new();
        w.packed_floats(5, &vs);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let (f, wt) = r.next_field().unwrap().unwrap();
        assert_eq!(f, 5);
        let mut out = Vec::new();
        r.read_floats(wt, &mut out).unwrap();
        assert_eq!(out, vs);
    }

    #[test]
    fn unpacked_float_also_accepted() {
        let mut w = WireWriter::new();
        w.float(5, 7.5);
        w.float(5, -1.0);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let mut out = Vec::new();
        while let Some((_, wt)) = r.next_field().unwrap() {
            r.read_floats(wt, &mut out).unwrap();
        }
        assert_eq!(out, vec![7.5, -1.0]);
    }

    #[test]
    fn packed_varints_roundtrip() {
        let vs = [64u64, 1, 28, 28, 1 << 40];
        let mut w = WireWriter::new();
        w.packed_varints(1, &vs);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let (_, wt) = r.next_field().unwrap().unwrap();
        let mut out = Vec::new();
        r.read_varints(wt, &mut out).unwrap();
        assert_eq!(out, vs);
    }

    #[test]
    fn empty_packed_fields_write_nothing() {
        let mut w = WireWriter::new();
        w.packed_floats(5, &[]);
        w.packed_varints(1, &[]);
        assert!(w.is_empty());
    }

    #[test]
    fn nested_message_roundtrip() {
        let mut w = WireWriter::new();
        w.message(7, |inner| {
            inner.uint(1, 42);
            inner.string(2, "blob");
        });
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let (f, wt) = r.next_field().unwrap().unwrap();
        assert_eq!((f, wt), (7, WireType::LengthDelimited));
        let payload = r.read_bytes().unwrap();
        let mut inner = WireReader::new(payload);
        let (f1, _) = inner.next_field().unwrap().unwrap();
        assert_eq!(f1, 1);
        assert_eq!(inner.read_varint().unwrap(), 42);
        let (f2, _) = inner.next_field().unwrap().unwrap();
        assert_eq!(f2, 2);
        assert_eq!(inner.read_string().unwrap(), "blob");
    }

    #[test]
    fn skip_unknown_fields() {
        let mut w = WireWriter::new();
        w.uint(99, 7);
        w.float(98, 1.0);
        w.bytes(97, b"xyz");
        w.uint(1, 5);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let mut value = None;
        while let Some((f, wt)) = r.next_field().unwrap() {
            if f == 1 {
                value = Some(r.read_varint().unwrap());
            } else {
                r.skip(wt).unwrap();
            }
        }
        assert_eq!(value, Some(5));
    }

    #[test]
    fn negative_int_uses_ten_byte_varint() {
        let mut w = WireWriter::new();
        w.int(1, -1);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 1 + 10);
        let mut r = WireReader::new(&bytes);
        r.next_field().unwrap();
        assert_eq!(r.read_varint().unwrap() as i64, -1);
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        // Truncated varint.
        assert!(WireReader::new(&[0x80]).read_varint().is_err());
        // Length longer than payload.
        let mut w = WireWriter::new();
        w.bytes(1, b"abcdef");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..4]);
        r.next_field().unwrap();
        assert!(r.read_bytes().is_err());
    }

    #[test]
    fn overlong_varint_rejected() {
        let eleven = [0xff; 11];
        assert!(WireReader::new(&eleven).read_varint().is_err());
    }

    #[test]
    fn field_zero_rejected() {
        // key 0x00 → field 0.
        assert!(WireReader::new(&[0x00]).next_field().is_err());
    }

    #[test]
    fn wire_type_3_rejected() {
        // key: field 1, wire type 3 (deprecated group) = 0x0b.
        assert!(WireReader::new(&[0x0b]).next_field().is_err());
    }
}
