//! Caffe message schemas (`caffe.proto` subset) with binary encode/decode
//! and prototxt import.
//!
//! Field numbers follow upstream `caffe.proto` so real artifacts parse for
//! the supported layer set. Unknown fields are skipped (proto2 semantics);
//! unknown *layer types* are surfaced to the caller by the frontend, not
//! here.

use crate::text::{TextError, TextMessage};
use crate::wire::{WireError, WireReader, WireType, WireWriter};
use bytes::Bytes;
use condor_tensor::{Shape, Tensor};

/// `BlobShape`: N-D extents of a blob (`dim = 1`, packed int64).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlobShape {
    /// Blob extents, outermost first.
    pub dim: Vec<u64>,
}

impl BlobShape {
    /// 4-D NCHW shape helper.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        BlobShape {
            dim: vec![n as u64, c as u64, h as u64, w as u64],
        }
    }

    /// Converts to the workspace 4-D shape. Shapes with fewer than four
    /// dims are right-aligned Caffe-style (e.g. `[500, 800]` for an FC
    /// weight matrix becomes `500×800×1×1`).
    pub fn to_shape(&self) -> Result<Shape, WireError> {
        match self.dim.len() {
            0 => Err(WireError::new("empty blob shape")),
            1 => Ok(Shape::new(1, self.dim[0] as usize, 1, 1)),
            2 => Ok(Shape::new(self.dim[0] as usize, self.dim[1] as usize, 1, 1)),
            3 => Ok(Shape::new(
                1,
                self.dim[0] as usize,
                self.dim[1] as usize,
                self.dim[2] as usize,
            )),
            4 => Ok(Shape::new(
                self.dim[0] as usize,
                self.dim[1] as usize,
                self.dim[2] as usize,
                self.dim[3] as usize,
            )),
            n => Err(WireError::new(format!("unsupported {n}-D blob shape"))),
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        w.packed_varints(1, &self.dim);
    }

    fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        let mut shape = BlobShape::default();
        while let Some((field, wt)) = r.next_field()? {
            match field {
                1 => r.read_varints(wt, &mut shape.dim)?,
                _ => r.skip(wt)?,
            }
        }
        Ok(shape)
    }
}

/// `BlobProto`: an N-D tensor with data (`data = 5`, packed float) and
/// either a `shape = 7` message or the legacy `num/channels/height/width`
/// fields 1–4.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BlobProto {
    /// Modern shape descriptor.
    pub shape: Option<BlobShape>,
    /// Weight/bias values in row-major order.
    pub data: Vec<f32>,
    /// Legacy 4-D extents (pre-`BlobShape` Caffe).
    pub num: Option<i64>,
    /// Legacy channel extent.
    pub channels: Option<i64>,
    /// Legacy height extent.
    pub height: Option<i64>,
    /// Legacy width extent.
    pub width: Option<i64>,
}

impl BlobProto {
    /// Wraps a tensor as a blob with a modern shape.
    pub fn from_tensor(t: &Tensor) -> Self {
        let s = t.shape();
        BlobProto {
            shape: Some(BlobShape::nchw(s.n, s.c, s.h, s.w)),
            data: t.as_slice().to_vec(),
            num: None,
            channels: None,
            height: None,
            width: None,
        }
    }

    /// The blob's 4-D shape from either encoding.
    pub fn resolved_shape(&self) -> Result<Shape, WireError> {
        if let Some(shape) = &self.shape {
            return shape.to_shape();
        }
        match (self.num, self.channels, self.height, self.width) {
            (Some(n), Some(c), Some(h), Some(w)) => {
                Ok(Shape::new(n as usize, c as usize, h as usize, w as usize))
            }
            _ => Err(WireError::new("blob has neither shape nor legacy dims")),
        }
    }

    /// Converts to a tensor, validating data length against the shape.
    pub fn to_tensor(&self) -> Result<Tensor, WireError> {
        let shape = self.resolved_shape()?;
        if shape.len() != self.data.len() {
            return Err(WireError::new(format!(
                "blob shape {shape} expects {} values, found {}",
                shape.len(),
                self.data.len()
            )));
        }
        Ok(Tensor::from_vec(shape, self.data.clone()))
    }

    fn encode(&self, w: &mut WireWriter) {
        if let Some(n) = self.num {
            w.int(1, n);
        }
        if let Some(c) = self.channels {
            w.int(2, c);
        }
        if let Some(h) = self.height {
            w.int(3, h);
        }
        if let Some(wd) = self.width {
            w.int(4, wd);
        }
        w.packed_floats(5, &self.data);
        if let Some(shape) = &self.shape {
            w.message(7, |inner| shape.encode(inner));
        }
    }

    fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        let mut blob = BlobProto::default();
        while let Some((field, wt)) = r.next_field()? {
            match field {
                1 => blob.num = Some(r.read_varint()? as i64),
                2 => blob.channels = Some(r.read_varint()? as i64),
                3 => blob.height = Some(r.read_varint()? as i64),
                4 => blob.width = Some(r.read_varint()? as i64),
                5 => r.read_floats(wt, &mut blob.data)?,
                7 => blob.shape = Some(BlobShape::decode(r.read_bytes()?)?),
                _ => r.skip(wt)?,
            }
        }
        Ok(blob)
    }
}

/// `ConvolutionParameter` (fields per upstream: `num_output = 1`,
/// `bias_term = 2`, `pad = 3`, `kernel_size = 4`, `group = 5`,
/// `stride = 6`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvolutionParameter {
    /// Number of output feature maps (F in the paper).
    pub num_output: u32,
    /// Whether a bias is added (paper Eq. (1) `b_φ`).
    pub bias_term: bool,
    /// Symmetric zero padding.
    pub pad: u32,
    /// Square kernel extent (`M_f = N_f`).
    pub kernel_size: u32,
    /// Sliding-window stride.
    pub stride: u32,
}

impl Default for ConvolutionParameter {
    fn default() -> Self {
        ConvolutionParameter {
            num_output: 0,
            bias_term: true,
            pad: 0,
            kernel_size: 0,
            stride: 1,
        }
    }
}

impl ConvolutionParameter {
    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.num_output as u64);
        w.bool(2, self.bias_term);
        if self.pad != 0 {
            w.uint(3, self.pad as u64);
        }
        w.uint(4, self.kernel_size as u64);
        if self.stride != 1 {
            w.uint(6, self.stride as u64);
        }
    }

    fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        let mut p = ConvolutionParameter::default();
        while let Some((field, wt)) = r.next_field()? {
            match field {
                1 => p.num_output = r.read_varint()? as u32,
                2 => p.bias_term = r.read_varint()? != 0,
                3 => p.pad = last_repeated_u32(&mut r, wt)?,
                4 => p.kernel_size = last_repeated_u32(&mut r, wt)?,
                6 => p.stride = last_repeated_u32(&mut r, wt)?,
                _ => r.skip(wt)?,
            }
        }
        Ok(p)
    }

    fn from_text(m: &TextMessage) -> Result<Self, TextError> {
        Ok(ConvolutionParameter {
            num_output: m.uint_or("num_output", 0)?,
            bias_term: m.bool_or("bias_term", true)?,
            pad: m.uint_or("pad", 0)?,
            kernel_size: m.uint_or("kernel_size", 0)?,
            stride: m.uint_or("stride", 1)?,
        })
    }
}

/// `pad`/`kernel_size`/`stride` are `repeated uint32` upstream (per spatial
/// axis); Condor supports square kernels, so the last value wins and
/// repeats must agree.
fn last_repeated_u32(r: &mut WireReader<'_>, wt: WireType) -> Result<u32, WireError> {
    let mut vals = Vec::new();
    r.read_varints(wt, &mut vals)?;
    let last = *vals
        .last()
        .ok_or_else(|| WireError::new("empty repeated field"))?;
    if vals.iter().any(|&v| v != last) {
        return Err(WireError::new(
            "non-square kernels/strides/pads are not supported",
        ));
    }
    Ok(last as u32)
}

/// Pooling operator selection (`PoolingParameter.PoolMethod`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolMethod {
    /// `MAX = 0` — max-pooling, the paper's default sub-sampling operator.
    Max,
    /// `AVE = 1` — average pooling.
    Ave,
}

impl PoolMethod {
    fn from_enum(v: u64) -> Result<Self, WireError> {
        match v {
            0 => Ok(PoolMethod::Max),
            1 => Ok(PoolMethod::Ave),
            2 => Err(WireError::new("STOCHASTIC pooling is not supported")),
            other => Err(WireError::new(format!("unknown pool method {other}"))),
        }
    }

    fn to_enum(self) -> u64 {
        match self {
            PoolMethod::Max => 0,
            PoolMethod::Ave => 1,
        }
    }
}

/// `PoolingParameter` (`pool = 1`, `kernel_size = 2`, `stride = 3`,
/// `pad = 4`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolingParameter {
    /// Pooling operator.
    pub pool: PoolMethod,
    /// Window extent (ω_f = γ_f in paper Eq. (3)).
    pub kernel_size: u32,
    /// Window stride (ρ in paper Eq. (3)).
    pub stride: u32,
    /// Symmetric zero padding.
    pub pad: u32,
}

impl Default for PoolingParameter {
    fn default() -> Self {
        PoolingParameter {
            pool: PoolMethod::Max,
            kernel_size: 0,
            stride: 1,
            pad: 0,
        }
    }
}

impl PoolingParameter {
    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.pool.to_enum());
        w.uint(2, self.kernel_size as u64);
        if self.stride != 1 {
            w.uint(3, self.stride as u64);
        }
        if self.pad != 0 {
            w.uint(4, self.pad as u64);
        }
    }

    fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        let mut p = PoolingParameter::default();
        while let Some((field, wt)) = r.next_field()? {
            match field {
                1 => p.pool = PoolMethod::from_enum(r.read_varint()?)?,
                2 => p.kernel_size = r.read_varint()? as u32,
                3 => p.stride = r.read_varint()? as u32,
                4 => p.pad = r.read_varint()? as u32,
                _ => r.skip(wt)?,
            }
        }
        Ok(p)
    }

    fn from_text(m: &TextMessage) -> Result<Self, TextError> {
        let pool = match m.ident_or("pool", "MAX")?.as_str() {
            "MAX" => PoolMethod::Max,
            "AVE" => PoolMethod::Ave,
            other => {
                return Err(TextError::schema(format!(
                    "unsupported pool method '{other}'"
                )))
            }
        };
        Ok(PoolingParameter {
            pool,
            kernel_size: m.uint_or("kernel_size", 0)?,
            stride: m.uint_or("stride", 1)?,
            pad: m.uint_or("pad", 0)?,
        })
    }
}

/// `InnerProductParameter` (`num_output = 1`, `bias_term = 2`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InnerProductParameter {
    /// Number of output neurons.
    pub num_output: u32,
    /// Whether a bias is added (paper Eq. (4) `b_l`).
    pub bias_term: bool,
}

impl Default for InnerProductParameter {
    fn default() -> Self {
        InnerProductParameter {
            num_output: 0,
            bias_term: true,
        }
    }
}

impl InnerProductParameter {
    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.num_output as u64);
        w.bool(2, self.bias_term);
    }

    fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        let mut p = InnerProductParameter::default();
        while let Some((field, wt)) = r.next_field()? {
            match field {
                1 => p.num_output = r.read_varint()? as u32,
                2 => p.bias_term = r.read_varint()? != 0,
                _ => r.skip(wt)?,
            }
        }
        Ok(p)
    }

    fn from_text(m: &TextMessage) -> Result<Self, TextError> {
        Ok(InnerProductParameter {
            num_output: m.uint_or("num_output", 0)?,
            bias_term: m.bool_or("bias_term", true)?,
        })
    }
}

/// Element-wise operation selection (`EltwiseParameter.EltwiseOp`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EltwiseOperation {
    /// `PROD = 0` — element-wise product.
    Prod,
    /// `SUM = 1` — element-wise sum, the Caffe default.
    #[default]
    Sum,
    /// `MAX = 2` — element-wise maximum.
    Max,
}

impl EltwiseOperation {
    fn from_enum(v: u64) -> Result<Self, WireError> {
        match v {
            0 => Ok(EltwiseOperation::Prod),
            1 => Ok(EltwiseOperation::Sum),
            2 => Ok(EltwiseOperation::Max),
            other => Err(WireError::new(format!("unknown eltwise operation {other}"))),
        }
    }

    fn to_enum(self) -> u64 {
        match self {
            EltwiseOperation::Prod => 0,
            EltwiseOperation::Sum => 1,
            EltwiseOperation::Max => 2,
        }
    }

    /// The prototxt enum identifier.
    pub fn caffe_name(self) -> &'static str {
        match self {
            EltwiseOperation::Prod => "PROD",
            EltwiseOperation::Sum => "SUM",
            EltwiseOperation::Max => "MAX",
        }
    }
}

/// `EltwiseParameter` (`operation = 1`). The repeated `coeff = 2` field
/// is rejected rather than skipped: ignoring coefficients would silently
/// change the layer's arithmetic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EltwiseParameter {
    /// Merge operator applied across the bottoms.
    pub operation: EltwiseOperation,
}

impl EltwiseParameter {
    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.operation.to_enum());
    }

    fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        let mut p = EltwiseParameter::default();
        while let Some((field, wt)) = r.next_field()? {
            match field {
                1 => p.operation = EltwiseOperation::from_enum(r.read_varint()?)?,
                2 => return Err(WireError::new("eltwise coefficients are not supported")),
                _ => r.skip(wt)?,
            }
        }
        Ok(p)
    }

    fn from_text(m: &TextMessage) -> Result<Self, TextError> {
        if !m.all("coeff").is_empty() {
            return Err(TextError::schema("eltwise coefficients are not supported"));
        }
        let operation = match m.ident_or("operation", "SUM")?.as_str() {
            "PROD" => EltwiseOperation::Prod,
            "SUM" => EltwiseOperation::Sum,
            "MAX" => EltwiseOperation::Max,
            other => {
                return Err(TextError::schema(format!(
                    "unknown eltwise operation '{other}'"
                )))
            }
        };
        Ok(EltwiseParameter { operation })
    }
}

/// `ConcatParameter` (`axis = 2`, legacy `concat_dim = 1`).
///
/// Condor only executes channel concatenation (`axis = 1`, the Caffe
/// default); other axes parse here and are rejected by the frontend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcatParameter {
    /// Concatenation axis (1 = channels in NCHW).
    pub axis: i32,
}

impl Default for ConcatParameter {
    fn default() -> Self {
        ConcatParameter { axis: 1 }
    }
}

impl ConcatParameter {
    fn encode(&self, w: &mut WireWriter) {
        if self.axis != 1 {
            w.int(2, self.axis as i64);
        }
    }

    fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        let mut p = ConcatParameter::default();
        while let Some((field, wt)) = r.next_field()? {
            match field {
                1 => p.axis = r.read_varint()? as i32,
                2 => p.axis = r.read_varint()? as i32,
                _ => r.skip(wt)?,
            }
        }
        Ok(p)
    }

    fn from_text(m: &TextMessage) -> Result<Self, TextError> {
        let axis = match m.single("axis")? {
            Some(_) => m.uint_or("axis", 1)? as i32,
            None => m.uint_or("concat_dim", 1)? as i32,
        };
        Ok(ConcatParameter { axis })
    }
}

/// `InputParameter` (`shape = 1`, repeated `BlobShape`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InputParameter {
    /// Shapes of the network inputs.
    pub shape: Vec<BlobShape>,
}

impl InputParameter {
    fn encode(&self, w: &mut WireWriter) {
        for s in &self.shape {
            w.message(1, |inner| s.encode(inner));
        }
    }

    fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        let mut p = InputParameter::default();
        while let Some((field, wt)) = r.next_field()? {
            match field {
                1 => p.shape.push(BlobShape::decode(r.read_bytes()?)?),
                _ => r.skip(wt)?,
            }
        }
        Ok(p)
    }
}

/// `LayerParameter`: one layer of the network with its typed parameter
/// message and (in `caffemodel` files) its learned blobs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LayerParameter {
    /// Layer name (`name = 1`).
    pub name: String,
    /// Layer type string, e.g. `"Convolution"` (`type = 2`).
    pub type_: String,
    /// Input blob names (`bottom = 3`).
    pub bottom: Vec<String>,
    /// Output blob names (`top = 4`).
    pub top: Vec<String>,
    /// Learned blobs: weights then bias (`blobs = 7`).
    pub blobs: Vec<BlobProto>,
    /// `concat_param = 104`.
    pub concat_param: Option<ConcatParameter>,
    /// `convolution_param = 106`.
    pub convolution_param: Option<ConvolutionParameter>,
    /// `eltwise_param = 110`.
    pub eltwise_param: Option<EltwiseParameter>,
    /// `inner_product_param = 117`.
    pub inner_product_param: Option<InnerProductParameter>,
    /// `pooling_param = 121`.
    pub pooling_param: Option<PoolingParameter>,
    /// `input_param = 143`.
    pub input_param: Option<InputParameter>,
    /// `relu_param.negative_slope` when present (`relu_param = 123`).
    pub relu_negative_slope: f32,
}

impl LayerParameter {
    fn encode(&self, w: &mut WireWriter) {
        w.string(1, &self.name);
        w.string(2, &self.type_);
        for b in &self.bottom {
            w.string(3, b);
        }
        for t in &self.top {
            w.string(4, t);
        }
        for blob in &self.blobs {
            w.message(7, |inner| blob.encode(inner));
        }
        if let Some(p) = &self.concat_param {
            w.message(104, |inner| p.encode(inner));
        }
        if let Some(p) = &self.convolution_param {
            w.message(106, |inner| p.encode(inner));
        }
        if let Some(p) = &self.eltwise_param {
            w.message(110, |inner| p.encode(inner));
        }
        if let Some(p) = &self.inner_product_param {
            w.message(117, |inner| p.encode(inner));
        }
        if let Some(p) = &self.pooling_param {
            w.message(121, |inner| p.encode(inner));
        }
        if self.relu_negative_slope != 0.0 {
            w.message(123, |inner| inner.float(1, self.relu_negative_slope));
        }
        if let Some(p) = &self.input_param {
            w.message(143, |inner| p.encode(inner));
        }
    }

    fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        let mut layer = LayerParameter::default();
        while let Some((field, wt)) = r.next_field()? {
            match field {
                1 => layer.name = r.read_string()?,
                2 => layer.type_ = r.read_string()?,
                3 => layer.bottom.push(r.read_string()?),
                4 => layer.top.push(r.read_string()?),
                7 => layer.blobs.push(BlobProto::decode(r.read_bytes()?)?),
                104 => layer.concat_param = Some(ConcatParameter::decode(r.read_bytes()?)?),
                106 => {
                    layer.convolution_param = Some(ConvolutionParameter::decode(r.read_bytes()?)?)
                }
                110 => layer.eltwise_param = Some(EltwiseParameter::decode(r.read_bytes()?)?),
                117 => {
                    layer.inner_product_param =
                        Some(InnerProductParameter::decode(r.read_bytes()?)?)
                }
                121 => layer.pooling_param = Some(PoolingParameter::decode(r.read_bytes()?)?),
                123 => {
                    let payload = r.read_bytes()?;
                    let mut inner = WireReader::new(payload);
                    while let Some((f, iwt)) = inner.next_field()? {
                        if f == 1 && iwt == WireType::Fixed32 {
                            layer.relu_negative_slope = inner.read_float()?;
                        } else {
                            inner.skip(iwt)?;
                        }
                    }
                }
                143 => layer.input_param = Some(InputParameter::decode(r.read_bytes()?)?),
                _ => r.skip(wt)?,
            }
        }
        Ok(layer)
    }

    fn from_text(m: &TextMessage) -> Result<Self, TextError> {
        let mut layer = LayerParameter {
            name: m.string_or("name", "")?,
            type_: m.string_or("type", "")?,
            bottom: m.strings("bottom")?,
            top: m.strings("top")?,
            ..LayerParameter::default()
        };
        if let Some(p) = m.message("concat_param")? {
            layer.concat_param = Some(ConcatParameter::from_text(p)?);
        }
        if let Some(p) = m.message("convolution_param")? {
            layer.convolution_param = Some(ConvolutionParameter::from_text(p)?);
        }
        if let Some(p) = m.message("eltwise_param")? {
            layer.eltwise_param = Some(EltwiseParameter::from_text(p)?);
        }
        if let Some(p) = m.message("inner_product_param")? {
            layer.inner_product_param = Some(InnerProductParameter::from_text(p)?);
        }
        if let Some(p) = m.message("pooling_param")? {
            layer.pooling_param = Some(PoolingParameter::from_text(p)?);
        }
        if let Some(p) = m.message("relu_param")? {
            layer.relu_negative_slope = p.float_or("negative_slope", 0.0)?;
        }
        if let Some(p) = m.message("input_param")? {
            let mut ip = InputParameter::default();
            for shape_msg in p.messages("shape")? {
                ip.shape.push(BlobShape {
                    dim: shape_msg.uints("dim")?,
                });
            }
            layer.input_param = Some(ip);
        }
        Ok(layer)
    }
}

/// `NetParameter`: the whole network (`name = 1`, legacy `input = 3` /
/// `input_dim = 4`, `input_shape = 8`, `layer = 100`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetParameter {
    /// Network name.
    pub name: String,
    /// Legacy top-level input blob names.
    pub input: Vec<String>,
    /// Legacy input dims, 4 per input.
    pub input_dim: Vec<i64>,
    /// Modern input shapes.
    pub input_shape: Vec<BlobShape>,
    /// The layers in topological order (Caffe convention).
    pub layer: Vec<LayerParameter>,
}

impl NetParameter {
    /// Serialises to `caffemodel` bytes.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::new();
        w.string(1, &self.name);
        for i in &self.input {
            w.string(3, i);
        }
        for &d in &self.input_dim {
            w.int(4, d);
        }
        for s in &self.input_shape {
            w.message(8, |inner| s.encode(inner));
        }
        for l in &self.layer {
            w.message(100, |inner| l.encode(inner));
        }
        w.into_bytes()
    }

    /// Parses `caffemodel` bytes.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        let mut net = NetParameter::default();
        while let Some((field, wt)) = r.next_field()? {
            match field {
                1 => net.name = r.read_string()?,
                2 => {
                    return Err(WireError::new(
                        "V1LayerParameter (field `layers`) models are not supported; \
                         upgrade the model with Caffe's upgrade_net_proto_binary",
                    ))
                }
                3 => net.input.push(r.read_string()?),
                4 => net.input_dim.push(r.read_varint()? as i64),
                8 => net.input_shape.push(BlobShape::decode(r.read_bytes()?)?),
                100 => net.layer.push(LayerParameter::decode(r.read_bytes()?)?),
                _ => r.skip(wt)?,
            }
        }
        Ok(net)
    }

    /// Parses a `prototxt` text-format document.
    pub fn from_prototxt(text: &str) -> Result<Self, TextError> {
        let root = TextMessage::parse(text)?;
        let mut net = NetParameter {
            name: root.string_or("name", "")?,
            input: root.strings("input")?,
            input_dim: root
                .uints("input_dim")?
                .into_iter()
                .map(|v| v as i64)
                .collect(),
            ..NetParameter::default()
        };
        for shape_msg in root.messages("input_shape")? {
            net.input_shape.push(BlobShape {
                dim: shape_msg.uints("dim")?,
            });
        }
        if root.message("layers")?.is_some() {
            return Err(TextError::schema(
                "V1 `layers` prototxt files are not supported; use the modern `layer` format",
            ));
        }
        for layer_msg in root.messages("layer")? {
            net.layer.push(LayerParameter::from_text(layer_msg)?);
        }
        net.check_blob_wiring()?;
        Ok(net)
    }

    /// The layer with the given name, if any.
    pub fn layer_by_name(&self, name: &str) -> Option<&LayerParameter> {
        self.layer.iter().find(|l| l.name == name)
    }

    /// Checks that every layer's `bottom` names a blob declared by an
    /// earlier layer's `top` or a top-level `input`.
    ///
    /// Caffe itself aborts on such nets at load time; historically this
    /// crate accepted them silently (the linear frontend never looked at
    /// blob names). Now that blob wiring *is* the topology, a dangling
    /// bottom is a typed error naming the offending layer
    /// ([`crate::text::TextErrorKind::UndeclaredBottom`]).
    pub fn check_blob_wiring(&self) -> Result<(), TextError> {
        let mut declared: std::collections::BTreeSet<&str> =
            self.input.iter().map(String::as_str).collect();
        for l in &self.layer {
            for b in &l.bottom {
                if !declared.contains(b.as_str()) {
                    return Err(TextError::undeclared_bottom(&l.name, b));
                }
            }
            for t in &l.top {
                declared.insert(t);
            }
        }
        Ok(())
    }

    /// Serialises to prototxt text (topology only — blobs never appear
    /// in text format, matching Caffe).
    pub fn to_prototxt(&self) -> String {
        let mut root = TextMessage::default();
        if !self.name.is_empty() {
            root.push_str("name", &self.name);
        }
        for i in &self.input {
            root.push_str("input", i);
        }
        for &d in &self.input_dim {
            root.push_num("input_dim", d as f64);
        }
        for s in &self.input_shape {
            let mut m = TextMessage::default();
            for &d in &s.dim {
                m.push_num("dim", d as f64);
            }
            root.push_message("input_shape", m);
        }
        for l in &self.layer {
            root.push_message("layer", l.to_text_message());
        }
        root.to_text()
    }
}

impl LayerParameter {
    fn to_text_message(&self) -> TextMessage {
        let mut m = TextMessage::default();
        m.push_str("name", &self.name);
        m.push_str("type", &self.type_);
        for b in &self.bottom {
            m.push_str("bottom", b);
        }
        for t in &self.top {
            m.push_str("top", t);
        }
        if let Some(p) = &self.convolution_param {
            let mut cp = TextMessage::default();
            cp.push_num("num_output", p.num_output as f64);
            if !p.bias_term {
                cp.push_ident("bias_term", "false");
            }
            if p.pad != 0 {
                cp.push_num("pad", p.pad as f64);
            }
            cp.push_num("kernel_size", p.kernel_size as f64);
            if p.stride != 1 {
                cp.push_num("stride", p.stride as f64);
            }
            m.push_message("convolution_param", cp);
        }
        if let Some(p) = &self.pooling_param {
            let mut pp = TextMessage::default();
            pp.push_ident(
                "pool",
                match p.pool {
                    PoolMethod::Max => "MAX",
                    PoolMethod::Ave => "AVE",
                },
            );
            pp.push_num("kernel_size", p.kernel_size as f64);
            if p.stride != 1 {
                pp.push_num("stride", p.stride as f64);
            }
            if p.pad != 0 {
                pp.push_num("pad", p.pad as f64);
            }
            m.push_message("pooling_param", pp);
        }
        if let Some(p) = &self.eltwise_param {
            let mut ep = TextMessage::default();
            ep.push_ident("operation", p.operation.caffe_name());
            m.push_message("eltwise_param", ep);
        }
        if let Some(p) = &self.concat_param {
            let mut cp = TextMessage::default();
            cp.push_num("axis", p.axis as f64);
            m.push_message("concat_param", cp);
        }
        if let Some(p) = &self.inner_product_param {
            let mut ip = TextMessage::default();
            ip.push_num("num_output", p.num_output as f64);
            if !p.bias_term {
                ip.push_ident("bias_term", "false");
            }
            m.push_message("inner_product_param", ip);
        }
        if self.relu_negative_slope != 0.0 {
            let mut rp = TextMessage::default();
            rp.push_num("negative_slope", self.relu_negative_slope as f64);
            m.push_message("relu_param", rp);
        }
        if let Some(p) = &self.input_param {
            let mut ipm = TextMessage::default();
            for s in &p.shape {
                let mut sm = TextMessage::default();
                for &d in &s.dim {
                    sm.push_num("dim", d as f64);
                }
                ipm.push_message("shape", sm);
            }
            m.push_message("input_param", ipm);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_tensor::linspace;

    fn sample_net() -> NetParameter {
        NetParameter {
            name: "LeNet".to_string(),
            input: vec![],
            input_dim: vec![],
            input_shape: vec![],
            layer: vec![
                LayerParameter {
                    name: "data".into(),
                    type_: "Input".into(),
                    top: vec!["data".into()],
                    input_param: Some(InputParameter {
                        shape: vec![BlobShape::nchw(64, 1, 28, 28)],
                    }),
                    ..LayerParameter::default()
                },
                LayerParameter {
                    name: "conv1".into(),
                    type_: "Convolution".into(),
                    bottom: vec!["data".into()],
                    top: vec!["conv1".into()],
                    convolution_param: Some(ConvolutionParameter {
                        num_output: 20,
                        kernel_size: 5,
                        ..ConvolutionParameter::default()
                    }),
                    blobs: vec![
                        BlobProto::from_tensor(&linspace(Shape::new(20, 1, 5, 5), 0.0, 0.01)),
                        BlobProto::from_tensor(&linspace(Shape::vector(20), 0.0, 0.1)),
                    ],
                    ..LayerParameter::default()
                },
                LayerParameter {
                    name: "pool1".into(),
                    type_: "Pooling".into(),
                    bottom: vec!["conv1".into()],
                    top: vec!["pool1".into()],
                    pooling_param: Some(PoolingParameter {
                        pool: PoolMethod::Max,
                        kernel_size: 2,
                        stride: 2,
                        pad: 0,
                    }),
                    ..LayerParameter::default()
                },
            ],
        }
    }

    #[test]
    fn binary_roundtrip_preserves_everything() {
        let net = sample_net();
        let bytes = net.encode();
        let back = NetParameter::decode(&bytes).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn blob_tensor_roundtrip() {
        let t = linspace(Shape::new(2, 3, 4, 5), -1.0, 0.25);
        let blob = BlobProto::from_tensor(&t);
        assert_eq!(blob.to_tensor().unwrap(), t);
    }

    #[test]
    fn blob_legacy_dims_resolve() {
        let blob = BlobProto {
            num: Some(1),
            channels: Some(2),
            height: Some(3),
            width: Some(4),
            data: vec![0.0; 24],
            ..BlobProto::default()
        };
        assert_eq!(blob.resolved_shape().unwrap(), Shape::new(1, 2, 3, 4));
        assert!(blob.to_tensor().is_ok());
    }

    #[test]
    fn blob_data_length_mismatch_rejected() {
        let blob = BlobProto {
            shape: Some(BlobShape::nchw(1, 1, 2, 2)),
            data: vec![1.0; 3],
            ..BlobProto::default()
        };
        assert!(blob.to_tensor().is_err());
    }

    #[test]
    fn blob_2d_shape_right_aligns() {
        // FC weight blobs are 2-D [out, in] in Caffe.
        let shape = BlobShape {
            dim: vec![500, 800],
        };
        assert_eq!(shape.to_shape().unwrap(), Shape::new(500, 800, 1, 1));
    }

    #[test]
    fn v1_layers_field_is_rejected_with_guidance() {
        let mut w = WireWriter::new();
        w.string(1, "old");
        w.message(2, |inner| inner.string(1, "legacy-layer"));
        let e = NetParameter::decode(&w.into_bytes()).unwrap_err();
        assert!(e.message.contains("upgrade"));
    }

    #[test]
    fn unknown_layer_fields_are_skipped() {
        // Encode a layer with an extra unknown field 200.
        let mut w = WireWriter::new();
        w.string(1, "net");
        w.message(100, |inner| {
            inner.string(1, "conv1");
            inner.string(2, "Convolution");
            inner.uint(200, 99);
        });
        let net = NetParameter::decode(&w.into_bytes()).unwrap();
        assert_eq!(net.layer[0].name, "conv1");
    }

    #[test]
    fn non_square_kernel_rejected() {
        let mut w = WireWriter::new();
        // kernel_size = [5, 3]
        w.packed_varints(4, &[5, 3]);
        let e = ConvolutionParameter::decode(&w.into_bytes()).unwrap_err();
        assert!(e.message.contains("non-square"));
    }

    #[test]
    fn stochastic_pooling_rejected() {
        let mut w = WireWriter::new();
        w.uint(1, 2); // STOCHASTIC
        assert!(PoolingParameter::decode(&w.into_bytes()).is_err());
    }

    #[test]
    fn conv_defaults_match_caffe() {
        let p = ConvolutionParameter::decode(&[]).unwrap();
        assert!(p.bias_term);
        assert_eq!(p.stride, 1);
        assert_eq!(p.pad, 0);
    }

    #[test]
    fn relu_negative_slope_roundtrip() {
        let mut layer = LayerParameter {
            name: "relu1".into(),
            type_: "ReLU".into(),
            relu_negative_slope: 0.1,
            ..LayerParameter::default()
        };
        let net = NetParameter {
            layer: vec![layer.clone()],
            ..NetParameter::default()
        };
        let back = NetParameter::decode(&net.encode()).unwrap();
        assert!((back.layer[0].relu_negative_slope - 0.1).abs() < 1e-7);
        // Zero slope is the default and encodes to nothing.
        layer.relu_negative_slope = 0.0;
        let net2 = NetParameter {
            layer: vec![layer],
            ..NetParameter::default()
        };
        let bytes = net2.encode();
        let back2 = NetParameter::decode(&bytes).unwrap();
        assert_eq!(back2.layer[0].relu_negative_slope, 0.0);
    }

    #[test]
    fn layer_by_name_lookup() {
        let net = sample_net();
        assert!(net.layer_by_name("conv1").is_some());
        assert!(net.layer_by_name("nope").is_none());
    }

    #[test]
    fn eltwise_and_concat_params_roundtrip_binary() {
        let net = NetParameter {
            name: "merge".into(),
            layer: vec![
                LayerParameter {
                    name: "join".into(),
                    type_: "Eltwise".into(),
                    bottom: vec!["a".into(), "b".into()],
                    top: vec!["join".into()],
                    eltwise_param: Some(EltwiseParameter {
                        operation: EltwiseOperation::Max,
                    }),
                    ..LayerParameter::default()
                },
                LayerParameter {
                    name: "cat".into(),
                    type_: "Concat".into(),
                    bottom: vec!["a".into(), "join".into()],
                    top: vec!["cat".into()],
                    concat_param: Some(ConcatParameter::default()),
                    ..LayerParameter::default()
                },
            ],
            ..NetParameter::default()
        };
        let back = NetParameter::decode(&net.encode()).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn eltwise_coefficients_rejected() {
        let mut w = WireWriter::new();
        w.float(2, 0.5); // coeff
        assert!(EltwiseParameter::decode(&w.into_bytes())
            .unwrap_err()
            .message
            .contains("coefficients"));
    }

    #[test]
    fn undeclared_bottom_is_a_typed_error() {
        use crate::text::TextErrorKind;
        // `conv1` reads blob "datum", but the input layer declares "data".
        let doc = r#"
name: "broken"
layer {
  name: "data"
  type: "Input"
  top: "data"
  input_param { shape: { dim: 1 dim: 1 dim: 8 dim: 8 } }
}
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "datum"
  top: "conv1"
  convolution_param { num_output: 2 kernel_size: 3 }
}
"#;
        let err = NetParameter::from_prototxt(doc).unwrap_err();
        assert_eq!(err.kind, TextErrorKind::UndeclaredBottom);
        assert!(err.message.contains("conv1"), "{}", err.message);
        assert!(err.message.contains("datum"), "{}", err.message);
    }

    #[test]
    fn top_level_inputs_and_in_place_tops_satisfy_wiring() {
        // Legacy `input:` declaration plus an in-place layer
        // (bottom == top) both count as declared blobs.
        let doc = r#"
name: "legacy"
input: "data"
input_dim: 1 input_dim: 1 input_dim: 8 input_dim: 8
layer {
  name: "ip"
  type: "InnerProduct"
  bottom: "data"
  top: "ip"
  inner_product_param { num_output: 4 }
}
layer {
  name: "relu"
  type: "ReLU"
  bottom: "ip"
  top: "ip"
}
layer {
  name: "ip2"
  type: "InnerProduct"
  bottom: "ip"
  top: "ip2"
  inner_product_param { num_output: 2 }
}
"#;
        assert!(NetParameter::from_prototxt(doc).is_ok());
    }
}

#[cfg(test)]
mod prototxt_export_tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn prototxt_roundtrip_preserves_topology() {
        let doc = r#"
name: "LeNet"
layer {
  name: "data"
  type: "Input"
  top: "data"
  input_param { shape: { dim: 64 dim: 1 dim: 28 dim: 28 } }
}
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  convolution_param { num_output: 20 kernel_size: 5 }
}
layer {
  name: "pool1"
  type: "Pooling"
  bottom: "conv1"
  top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
"#;
        let net = NetParameter::from_prototxt(doc).unwrap();
        let text = net.to_prototxt();
        let back = NetParameter::from_prototxt(&text).unwrap();
        assert_eq!(back, net);
    }

    #[test]
    fn exported_prototxt_is_human_readable() {
        let net = NetParameter::from_prototxt(
            "name: \"x\"\nlayer { name: \"ip\" type: \"InnerProduct\" inner_product_param { num_output: 10 bias_term: false } }",
        )
        .unwrap();
        let text = net.to_prototxt();
        assert!(text.contains("name: \"x\""));
        assert!(text.contains("inner_product_param {"));
        assert!(text.contains("bias_term: false"));
        assert!(text.contains("  num_output: 10"));
    }

    #[test]
    fn legacy_inputs_export() {
        let net = NetParameter {
            name: "legacy".into(),
            input: vec!["data".into()],
            input_dim: vec![1, 3, 8, 8],
            ..NetParameter::default()
        };
        let text = net.to_prototxt();
        let back = NetParameter::from_prototxt(&text).unwrap();
        assert_eq!(back.input, net.input);
        assert_eq!(back.input_dim, net.input_dim);
    }
}
