//! Protobuf text format (`prototxt`) parser.
//!
//! Implements the subset of the protobuf text format that Caffe network
//! descriptions use: scalar fields (`name: "LeNet"`), nested messages
//! (`layer { ... }`, with or without a `:` before the brace), repeated
//! fields by repetition, `#` comments, and string/number/identifier/bool
//! scalars. Parsing is schema-less into a [`TextMessage`] tree; the typed
//! schema mapping lives in [`crate::model`].

use std::fmt;

/// Machine-readable classification of a prototxt failure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TextErrorKind {
    /// Tokenisation, grammar or schema-shape failure.
    #[default]
    Syntax,
    /// A layer's `bottom` names a blob that no earlier layer's `top`
    /// (nor a top-level `input`) declared.
    UndeclaredBottom,
}

/// A parse or schema-validation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line (0 for schema errors without a position).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Machine-readable classification.
    pub kind: TextErrorKind,
}

impl TextError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        TextError {
            line,
            message: message.into(),
            kind: TextErrorKind::Syntax,
        }
    }

    /// A schema-level error not tied to a source position.
    pub fn schema(message: impl Into<String>) -> Self {
        TextError {
            line: 0,
            message: message.into(),
            kind: TextErrorKind::Syntax,
        }
    }

    /// Layer `layer` reads blob `blob` that nothing declared.
    pub fn undeclared_bottom(layer: &str, blob: &str) -> Self {
        TextError {
            line: 0,
            message: format!(
                "layer '{layer}' reads bottom blob '{blob}', but no earlier layer \
                 (nor a top-level input) declares it"
            ),
            kind: TextErrorKind::UndeclaredBottom,
        }
    }
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "prototxt error: {}", self.message)
        } else {
            write!(f, "prototxt error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for TextError {}

/// A scalar field value as written in the file.
#[derive(Clone, Debug, PartialEq)]
pub enum TextScalar {
    /// Quoted string.
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// Bare identifier: enum value, `true`/`false`.
    Ident(String),
}

/// A field value: scalar or nested message.
#[derive(Clone, Debug, PartialEq)]
pub enum TextValue {
    /// `field: scalar`
    Scalar(TextScalar),
    /// `field { ... }`
    Message(TextMessage),
}

/// An ordered multimap of fields, as text format allows repetition.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TextMessage {
    /// Fields in file order.
    pub fields: Vec<(String, TextValue)>,
}

impl TextMessage {
    /// Parses a whole prototxt document.
    pub fn parse(input: &str) -> Result<TextMessage, TextError> {
        let mut lexer = Lexer::new(input);
        let msg = parse_fields(&mut lexer, 0)?;
        match lexer.next()? {
            Token::Eof => Ok(msg),
            t => Err(TextError::at(
                lexer.line,
                format!("unexpected {} at top level", t.describe()),
            )),
        }
    }

    /// All values for a (possibly repeated) field name, in order.
    pub fn all(&self, name: &str) -> Vec<&TextValue> {
        self.fields
            .iter()
            .filter(|(k, _)| k == name)
            .map(|(_, v)| v)
            .collect()
    }

    /// The single value for a field; errors if repeated.
    pub fn single(&self, name: &str) -> Result<Option<&TextValue>, TextError> {
        let matches = self.all(name);
        if matches.len() > 1 {
            return Err(TextError::schema(format!(
                "field '{name}' given more than once"
            )));
        }
        Ok(matches.into_iter().next())
    }

    /// Optional string field with a default.
    pub fn string_or(&self, name: &str, default: &str) -> Result<String, TextError> {
        match self.single(name)? {
            None => Ok(default.to_string()),
            Some(TextValue::Scalar(TextScalar::Str(s))) => Ok(s.clone()),
            Some(v) => Err(type_err(name, "string", v)),
        }
    }

    /// All string values of a repeated field.
    pub fn strings(&self, name: &str) -> Result<Vec<String>, TextError> {
        self.all(name)
            .into_iter()
            .map(|v| match v {
                TextValue::Scalar(TextScalar::Str(s)) => Ok(s.clone()),
                other => Err(type_err(name, "string", other)),
            })
            .collect()
    }

    /// Optional unsigned integer with a default.
    pub fn uint_or(&self, name: &str, default: u32) -> Result<u32, TextError> {
        match self.single(name)? {
            None => Ok(default),
            Some(TextValue::Scalar(TextScalar::Num(n))) if n.fract() == 0.0 && *n >= 0.0 => {
                Ok(*n as u32)
            }
            Some(v) => Err(type_err(name, "unsigned integer", v)),
        }
    }

    /// All unsigned-integer values of a repeated field.
    pub fn uints(&self, name: &str) -> Result<Vec<u64>, TextError> {
        self.all(name)
            .into_iter()
            .map(|v| match v {
                TextValue::Scalar(TextScalar::Num(n)) if n.fract() == 0.0 && *n >= 0.0 => {
                    Ok(*n as u64)
                }
                other => Err(type_err(name, "unsigned integer", other)),
            })
            .collect()
    }

    /// Optional float with a default.
    pub fn float_or(&self, name: &str, default: f32) -> Result<f32, TextError> {
        match self.single(name)? {
            None => Ok(default),
            Some(TextValue::Scalar(TextScalar::Num(n))) => Ok(*n as f32),
            Some(v) => Err(type_err(name, "number", v)),
        }
    }

    /// Optional bool (`true`/`false` identifiers) with a default.
    pub fn bool_or(&self, name: &str, default: bool) -> Result<bool, TextError> {
        match self.single(name)? {
            None => Ok(default),
            Some(TextValue::Scalar(TextScalar::Ident(id))) => match id.as_str() {
                "true" => Ok(true),
                "false" => Ok(false),
                _ => Err(TextError::schema(format!(
                    "field '{name}' expects true/false, got '{id}'"
                ))),
            },
            Some(v) => Err(type_err(name, "bool", v)),
        }
    }

    /// Optional enum identifier with a default.
    pub fn ident_or(&self, name: &str, default: &str) -> Result<String, TextError> {
        match self.single(name)? {
            None => Ok(default.to_string()),
            Some(TextValue::Scalar(TextScalar::Ident(id))) => Ok(id.clone()),
            Some(v) => Err(type_err(name, "identifier", v)),
        }
    }

    /// Optional nested message.
    pub fn message(&self, name: &str) -> Result<Option<&TextMessage>, TextError> {
        match self.single(name)? {
            None => Ok(None),
            Some(TextValue::Message(m)) => Ok(Some(m)),
            Some(v) => Err(type_err(name, "message", v)),
        }
    }

    /// All nested messages of a repeated field.
    pub fn messages(&self, name: &str) -> Result<Vec<&TextMessage>, TextError> {
        self.all(name)
            .into_iter()
            .map(|v| match v {
                TextValue::Message(m) => Ok(m),
                other => Err(type_err(name, "message", other)),
            })
            .collect()
    }

    /// Appends a scalar field.
    pub fn push_scalar(&mut self, name: &str, value: TextScalar) {
        self.fields
            .push((name.to_string(), TextValue::Scalar(value)));
    }

    /// Appends a string field.
    pub fn push_str(&mut self, name: &str, value: &str) {
        self.push_scalar(name, TextScalar::Str(value.to_string()));
    }

    /// Appends a numeric field.
    pub fn push_num(&mut self, name: &str, value: f64) {
        self.push_scalar(name, TextScalar::Num(value));
    }

    /// Appends an identifier (enum / bool) field.
    pub fn push_ident(&mut self, name: &str, value: &str) {
        self.push_scalar(name, TextScalar::Ident(value.to_string()));
    }

    /// Appends a nested message field.
    pub fn push_message(&mut self, name: &str, value: TextMessage) {
        self.fields
            .push((name.to_string(), TextValue::Message(value)));
    }

    /// Serialises back to prototxt text (the inverse of
    /// [`TextMessage::parse`]).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_fields(self, 0, &mut out);
        out
    }
}

fn write_fields(msg: &TextMessage, level: usize, out: &mut String) {
    let indent = "  ".repeat(level);
    for (name, value) in &msg.fields {
        match value {
            TextValue::Scalar(TextScalar::Str(s)) => {
                out.push_str(&format!("{indent}{name}: \"{}\"\n", escape_text(s)));
            }
            TextValue::Scalar(TextScalar::Num(n)) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{indent}{name}: {}\n", *n as i64));
                } else {
                    out.push_str(&format!("{indent}{name}: {n}\n"));
                }
            }
            TextValue::Scalar(TextScalar::Ident(id)) => {
                out.push_str(&format!("{indent}{name}: {id}\n"));
            }
            TextValue::Message(inner) => {
                out.push_str(&format!("{indent}{name} {{\n"));
                write_fields(inner, level + 1, out);
                out.push_str(&format!("{indent}}}\n"));
            }
        }
    }
}

fn escape_text(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            '\t' => vec!['\\', 't'],
            '\r' => vec!['\\', 'r'],
            other => vec![other],
        })
        .collect()
}

fn type_err(name: &str, want: &str, got: &TextValue) -> TextError {
    let got_desc = match got {
        TextValue::Scalar(TextScalar::Str(_)) => "string",
        TextValue::Scalar(TextScalar::Num(_)) => "number",
        TextValue::Scalar(TextScalar::Ident(_)) => "identifier",
        TextValue::Message(_) => "message",
    };
    TextError::schema(format!("field '{name}' expects {want}, got {got_desc}"))
}

#[derive(Debug, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Num(f64),
    Colon,
    LBrace,
    RBrace,
    Eof,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier '{s}'"),
            Token::Str(_) => "string".into(),
            Token::Num(n) => format!("number {n}"),
            Token::Colon => "':'".into(),
            Token::LBrace => "'{'".into(),
            Token::RBrace => "'}'".into(),
            Token::Eof => "end of file".into(),
        }
    }
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    peeked: Option<Token>,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            peeked: None,
        }
    }

    fn err(&self, msg: impl Into<String>) -> TextError {
        TextError::at(self.line, msg)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.bytes.get(self.pos) {
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b' ' | b'\t' | b'\r' | b',' | b';') => self.pos += 1,
                Some(b'#') => {
                    while !matches!(self.bytes.get(self.pos), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    fn peek(&mut self) -> Result<&Token, TextError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lex()?);
        }
        Ok(self.peeked.as_ref().expect("just filled"))
    }

    fn next(&mut self) -> Result<Token, TextError> {
        match self.peeked.take() {
            Some(t) => Ok(t),
            None => self.lex(),
        }
    }

    fn lex(&mut self) -> Result<Token, TextError> {
        self.skip_trivia();
        let Some(&b) = self.bytes.get(self.pos) else {
            return Ok(Token::Eof);
        };
        match b {
            b':' => {
                self.pos += 1;
                Ok(Token::Colon)
            }
            b'{' => {
                self.pos += 1;
                Ok(Token::LBrace)
            }
            b'}' => {
                self.pos += 1;
                Ok(Token::RBrace)
            }
            b'"' | b'\'' => self.lex_string(b),
            b'-' | b'+' | b'0'..=b'9' | b'.' => self.lex_number(),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
            other => Err(self.err(format!("unexpected character '{}'", other as char))),
        }
    }

    fn lex_string(&mut self, quote: u8) -> Result<Token, TextError> {
        self.pos += 1;
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None | Some(b'\n') => return Err(self.err("unterminated string")),
                Some(b) if b == quote => {
                    self.pos += 1;
                    return String::from_utf8(out)
                        .map(Token::Str)
                        .map_err(|_| self.err("invalid UTF-8 in string"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    out.push(match esc {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'r' => b'\r',
                        b'\\' => b'\\',
                        b'"' => b'"',
                        b'\'' => b'\'',
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)))
                        }
                    });
                }
                Some(b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn lex_number(&mut self) -> Result<Token, TextError> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Token::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn lex_ident(&mut self) -> Result<Token, TextError> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        Ok(Token::Ident(text.to_string()))
    }
}

/// Nesting bound to keep adversarial files from exhausting the stack.
const MAX_DEPTH: usize = 64;

fn parse_fields(lexer: &mut Lexer<'_>, depth: usize) -> Result<TextMessage, TextError> {
    if depth > MAX_DEPTH {
        return Err(lexer.err(format!("nesting deeper than {MAX_DEPTH}")));
    }
    let mut msg = TextMessage::default();
    loop {
        let bad = match lexer.peek()? {
            Token::Eof | Token::RBrace => return Ok(msg),
            Token::Ident(_) => None,
            t => Some(t.describe()),
        };
        if let Some(desc) = bad {
            return Err(lexer.err(format!("expected field name, found {desc}")));
        }
        let Token::Ident(name) = lexer.next()? else {
            unreachable!("peeked ident");
        };
        match lexer.peek()? {
            Token::Colon => {
                lexer.next()?;
                // `field: { ... }` is also legal text format.
                if matches!(lexer.peek()?, Token::LBrace) {
                    lexer.next()?;
                    let inner = parse_fields(lexer, depth + 1)?;
                    expect_rbrace(lexer)?;
                    msg.fields.push((name, TextValue::Message(inner)));
                    continue;
                }
                let scalar = match lexer.next()? {
                    Token::Str(s) => TextScalar::Str(s),
                    Token::Num(n) => TextScalar::Num(n),
                    Token::Ident(id) => TextScalar::Ident(id),
                    t => {
                        return Err(lexer.err(format!(
                            "expected scalar value for '{name}', found {}",
                            t.describe()
                        )))
                    }
                };
                msg.fields.push((name, TextValue::Scalar(scalar)));
            }
            Token::LBrace => {
                lexer.next()?;
                let inner = parse_fields(lexer, depth + 1)?;
                expect_rbrace(lexer)?;
                msg.fields.push((name, TextValue::Message(inner)));
            }
            t => {
                let desc = t.describe();
                return Err(lexer.err(format!("expected ':' or '{{' after '{name}', found {desc}")));
            }
        }
    }
}

fn expect_rbrace(lexer: &mut Lexer<'_>) -> Result<(), TextError> {
    match lexer.next()? {
        Token::RBrace => Ok(()),
        t => Err(lexer.err(format!("expected '}}', found {}", t.describe()))),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    const LENET_SNIPPET: &str = r#"
name: "LeNet"
layer {
  name: "data"
  type: "Input"
  top: "data"
  input_param { shape: { dim: 64 dim: 1 dim: 28 dim: 28 } }
}
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  convolution_param {
    num_output: 20
    kernel_size: 5
    stride: 1
  }
}
layer {
  name: "pool1"
  type: "Pooling"
  bottom: "conv1"
  top: "pool1"
  pooling_param {
    pool: MAX
    kernel_size: 2
    stride: 2
  }
}
"#;

    #[test]
    fn parses_lenet_snippet() {
        let msg = TextMessage::parse(LENET_SNIPPET).unwrap();
        assert_eq!(msg.string_or("name", "").unwrap(), "LeNet");
        let layers = msg.messages("layer").unwrap();
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[1].string_or("type", "").unwrap(), "Convolution");
        let conv = layers[1].message("convolution_param").unwrap().unwrap();
        assert_eq!(conv.uint_or("num_output", 0).unwrap(), 20);
        assert_eq!(conv.uint_or("kernel_size", 0).unwrap(), 5);
        let pool = layers[2].message("pooling_param").unwrap().unwrap();
        assert_eq!(pool.ident_or("pool", "MAX").unwrap(), "MAX");
    }

    #[test]
    fn colon_before_brace_is_accepted() {
        let msg = TextMessage::parse("input_param: { shape: { dim: 1 } }").unwrap();
        let ip = msg.message("input_param").unwrap().unwrap();
        let shape = ip.message("shape").unwrap().unwrap();
        assert_eq!(shape.uints("dim").unwrap(), vec![1]);
    }

    #[test]
    fn comments_and_commas_are_trivia() {
        let msg = TextMessage::parse("# header\na: 1, b: 2; # trailing\nc: 3").unwrap();
        assert_eq!(msg.uint_or("a", 0).unwrap(), 1);
        assert_eq!(msg.uint_or("b", 0).unwrap(), 2);
        assert_eq!(msg.uint_or("c", 0).unwrap(), 3);
    }

    #[test]
    fn repeated_scalars_collect_in_order() {
        let msg = TextMessage::parse(r#"input: "a" input: "b" input_dim: 1 input_dim: 2"#).unwrap();
        assert_eq!(msg.strings("input").unwrap(), vec!["a", "b"]);
        assert_eq!(msg.uints("input_dim").unwrap(), vec![1, 2]);
    }

    #[test]
    fn string_escapes_decode() {
        let msg = TextMessage::parse(r#"name: "a\nb\t\"c\"""#).unwrap();
        assert_eq!(msg.string_or("name", "").unwrap(), "a\nb\t\"c\"");
    }

    #[test]
    fn single_quotes_accepted() {
        let msg = TextMessage::parse("name: 'x'").unwrap();
        assert_eq!(msg.string_or("name", "").unwrap(), "x");
    }

    #[test]
    fn bool_and_float_fields() {
        let msg = TextMessage::parse("bias_term: false negative_slope: 0.1").unwrap();
        assert!(!msg.bool_or("bias_term", true).unwrap());
        assert!((msg.float_or("negative_slope", 0.0).unwrap() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = TextMessage::parse("a: 1\nb: @").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "layer {",           // unbalanced brace
            "}",                 // stray brace
            "a b",               // no separator
            "a:",                // missing value
            "a: \"unterminated", // bad string
            "a: 1 }",
        ] {
            assert!(TextMessage::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn duplicate_singular_field_detected_at_access() {
        let msg = TextMessage::parse("name: \"a\" name: \"b\"").unwrap();
        assert!(msg.string_or("name", "").is_err());
    }

    #[test]
    fn nesting_is_bounded() {
        let doc = "m {".repeat(100) + &"}".repeat(100);
        assert!(TextMessage::parse(&doc).is_err());
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let msg = TextMessage::parse("a: -2.5e3 b: +7").unwrap();
        assert!((msg.float_or("a", 0.0).unwrap() + 2500.0).abs() < 1e-3);
        assert_eq!(msg.uint_or("b", 0).unwrap(), 7);
    }
}
