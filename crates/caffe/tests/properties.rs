//! Property tests over the Caffe formats: binary round trips with
//! arbitrary message contents and prototxt robustness.

#![allow(clippy::unwrap_used)] // test code: unwrap is the assertion

use condor_caffe::{
    BlobProto, BlobShape, ConvolutionParameter, InnerProductParameter, InputParameter,
    LayerParameter, NetParameter, PoolMethod, PoolingParameter, TextMessage,
};
use proptest::prelude::*;

fn blob_strategy() -> impl Strategy<Value = BlobProto> {
    (1usize..4, 1usize..4, 1usize..5, 1usize..5).prop_flat_map(|(n, c, h, w)| {
        prop::collection::vec(-100.0f32..100.0, n * c * h * w).prop_map(move |data| BlobProto {
            shape: Some(BlobShape::nchw(n, c, h, w)),
            data,
            ..BlobProto::default()
        })
    })
}

fn conv_param_strategy() -> impl Strategy<Value = ConvolutionParameter> {
    (1u32..64, any::<bool>(), 0u32..3, 1u32..8, 1u32..4).prop_map(
        |(num_output, bias_term, pad, kernel_size, stride)| ConvolutionParameter {
            num_output,
            bias_term,
            pad,
            kernel_size,
            stride,
        },
    )
}

fn pool_param_strategy() -> impl Strategy<Value = PoolingParameter> {
    (any::<bool>(), 1u32..5, 1u32..4, 0u32..2).prop_map(|(max, kernel_size, stride, pad)| {
        PoolingParameter {
            pool: if max {
                PoolMethod::Max
            } else {
                PoolMethod::Ave
            },
            kernel_size,
            stride,
            pad,
        }
    })
}

fn layer_strategy() -> impl Strategy<Value = LayerParameter> {
    (
        "[a-z][a-z0-9_]{0,12}",
        prop_oneof![
            conv_param_strategy().prop_map(|p| ("Convolution".to_string(), Some(p), None, None)),
            pool_param_strategy().prop_map(|p| ("Pooling".to_string(), None, Some(p), None)),
            (1u32..128, any::<bool>()).prop_map(|(n, b)| (
                "InnerProduct".to_string(),
                None,
                None,
                Some(InnerProductParameter {
                    num_output: n,
                    bias_term: b
                })
            )),
            Just(("ReLU".to_string(), None, None, None)),
            Just(("Softmax".to_string(), None, None, None)),
        ],
        prop::collection::vec(blob_strategy(), 0..3),
        -1.0f32..1.0,
    )
        .prop_map(
            |(name, (type_, conv, pool, ip), blobs, slope)| LayerParameter {
                name: name.clone(),
                type_: type_.clone(),
                bottom: vec![format!("{name}_in")],
                top: vec![name.clone()],
                blobs,
                convolution_param: conv,
                pooling_param: pool,
                inner_product_param: ip,
                relu_negative_slope: if type_ == "ReLU" { slope } else { 0.0 },
                ..LayerParameter::default()
            },
        )
}

fn net_strategy() -> impl Strategy<Value = NetParameter> {
    (
        "[A-Za-z][A-Za-z0-9_-]{0,16}",
        prop::collection::vec(layer_strategy(), 0..6),
        prop::collection::vec(1u64..64, 4),
    )
        .prop_map(|(name, mut layer, dims)| {
            // Prepend an Input layer so the net resembles real deploy
            // prototxts.
            layer.insert(
                0,
                LayerParameter {
                    name: "data".into(),
                    type_: "Input".into(),
                    top: vec!["data".into()],
                    input_param: Some(InputParameter {
                        shape: vec![BlobShape { dim: dims }],
                    }),
                    ..LayerParameter::default()
                },
            );
            NetParameter {
                name,
                layer,
                ..NetParameter::default()
            }
        })
}

proptest! {
    /// Arbitrary NetParameter trees survive the binary encode/decode
    /// round trip exactly.
    #[test]
    fn caffemodel_roundtrip(net in net_strategy()) {
        let bytes = net.encode();
        let back = NetParameter::decode(&bytes).unwrap();
        prop_assert_eq!(back, net);
    }

    /// Blob data survives with full f32 fidelity.
    #[test]
    fn blob_roundtrip_preserves_floats(blob in blob_strategy()) {
        let net = NetParameter {
            layer: vec![LayerParameter {
                name: "l".into(),
                type_: "Convolution".into(),
                blobs: vec![blob.clone()],
                ..LayerParameter::default()
            }],
            ..NetParameter::default()
        };
        let back = NetParameter::decode(&net.encode()).unwrap();
        prop_assert_eq!(&back.layer[0].blobs[0], &blob);
        // And the tensor view agrees.
        let t = blob.to_tensor().unwrap();
        prop_assert_eq!(t.as_slice(), &blob.data[..]);
    }

    /// The binary decoder never panics on arbitrary bytes — it returns
    /// structured errors (or tolerantly skips unknown fields).
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = NetParameter::decode(&bytes);
    }

    /// Truncating a valid caffemodel anywhere yields an error or a
    /// shorter-but-valid prefix — never a panic.
    #[test]
    fn truncation_is_safe(net in net_strategy(), cut in 0usize..512) {
        let bytes = net.encode();
        let cut = cut.min(bytes.len());
        let _ = NetParameter::decode(&bytes[..cut]);
    }

    /// The prototxt parser never panics on arbitrary text.
    #[test]
    fn prototxt_parser_never_panics(text in ".{0,256}") {
        let _ = TextMessage::parse(&text);
        let _ = NetParameter::from_prototxt(&text);
    }
}
