//! Analytic synthesis model (the stand-in for Vivado HLS + Vivado
//! implementation).
//!
//! Maps each accelerator module to LUT/FF/DSP/BRAM estimates and derives
//! the achievable clock. Coefficients are calibrated against the paper's
//! Table 1 design points (TC1 ≈ 10.5 % LUT / 5.6 % DSP / 1 % BRAM of a
//! VU9P; LeNet ≈ 9.5 % LUT / 2.5 % DSP / 24.4 % BRAM) — the calibration
//! and residuals are tabulated in EXPERIMENTS.md. What the experiments
//! rely on is the *shape*: DSP grows with spatial MAC unrolling, BRAM
//! with on-chip weights and deep line FIFOs, and large designs close
//! timing at lower clocks.

use condor_dataflow::{AcceleratorPlan, PePlan, Precision};
use condor_fpga::{Device, Resources};
use condor_nn::LayerKind;

/// Module categories reported by the synthesis pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModuleKind {
    /// Feature-extraction or classification PE.
    Pe,
    /// Sliding-window filter chain (all pipelines of one PE).
    FilterChain,
    /// The custom datamover.
    Datamover,
    /// AXI / SDAccel platform infrastructure.
    Infrastructure,
    /// Precision converter on an inter-PE stream whose endpoints run at
    /// different precisions (quantize / dequantize stage).
    Converter,
}

/// Synthesis estimate of one module.
#[derive(Clone, Debug, PartialEq)]
pub struct ModuleSynthesis {
    /// Module instance name.
    pub name: String,
    /// Category.
    pub kind: ModuleKind,
    /// Estimated resources.
    pub resources: Resources,
}

/// Aggregated synthesis result for a whole plan.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanSynthesis {
    /// Per-module estimates.
    pub modules: Vec<ModuleSynthesis>,
    /// Sum over modules.
    pub total: Resources,
    /// The clock the design closes timing at (MHz) — the smaller of the
    /// requested clock and the congestion-limited achievable clock.
    pub achieved_fmax_mhz: f64,
    /// The clock the user asked for.
    pub requested_fmax_mhz: f64,
}

/// Calibrated model coefficients. Exposed so ablations can perturb them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SynthModel {
    /// Base LUTs of any PE (control, stream glue).
    pub pe_base_lut: u64,
    /// LUTs per spatially-unrolled floating-point MAC.
    pub lut_per_mac: u64,
    /// DSP slices per floating-point MAC (3 for the multiplier + 2 for
    /// the adder on UltraScale+).
    pub dsp_per_mac: u64,
    /// LUTs per spatially-unrolled INT8 MAC (operand packing and the
    /// shared requantize datapath glue; the arithmetic itself packs two
    /// MACs per DSP48E2, see `synthesize_pe`).
    pub lut_per_int8_mac: u64,
    /// Cost of one stream precision converter (quantize or dequantize
    /// stage inserted on a mixed-precision inter-PE edge).
    pub converter: Resources,
    /// Base LUTs of a pooling PE (comparators only, no MACs).
    pub pool_base_lut: u64,
    /// LUTs per window element of a pooling reduction tree.
    pub pool_lut_per_elem: u64,
    /// LUTs per filter process.
    pub filter_lut: u64,
    /// LUTs per shallow (LUTRAM/SRL) FIFO.
    pub shallow_fifo_lut: u64,
    /// FIFO depth above which a BRAM tile is inferred instead of SRLs.
    pub bram_fifo_threshold: usize,
    /// FF : LUT ratio of the generated logic.
    pub ff_per_lut: f64,
    /// LUTs added per fused activation.
    pub activation_lut: u64,
    /// LUTs of a softmax drain (exp lookup + divide).
    pub softmax_lut: u64,
    /// DSPs of a softmax drain.
    pub softmax_dsp: u64,
    /// Datamover cost.
    pub datamover: Resources,
    /// AXI/SDAccel infrastructure cost.
    pub infrastructure: Resources,
    /// Congestion coefficient: achievable fmax =
    /// `device_fmax / (1 + lut_total/lut_scale + dsp_total/dsp_scale)`.
    pub lut_scale: f64,
    /// See `lut_scale`.
    pub dsp_scale: f64,
}

impl Default for SynthModel {
    fn default() -> Self {
        SynthModel {
            pe_base_lut: 8_000,
            lut_per_mac: 300,
            dsp_per_mac: 5,
            lut_per_int8_mac: 60,
            converter: Resources::new(1_200, 2_040, 2, 0),
            pool_base_lut: 3_000,
            pool_lut_per_elem: 100,
            filter_lut: 600,
            shallow_fifo_lut: 40,
            bram_fifo_threshold: 16,
            ff_per_lut: 1.7,
            activation_lut: 500,
            softmax_lut: 2_000,
            softmax_dsp: 2,
            datamover: Resources::new(25_000, 42_500, 0, 8),
            infrastructure: Resources::new(30_000, 51_000, 0, 4),
            lut_scale: 1.5e6,
            dsp_scale: 2.0e4,
        }
    }
}

impl SynthModel {
    /// LUTs of one spatially-unrolled MAC at the given precision.
    pub fn mac_lut(&self, precision: Precision) -> u64 {
        match precision {
            Precision::F32 => self.lut_per_mac,
            Precision::Int8 => self.lut_per_int8_mac,
        }
    }

    /// DSP slices for `macs` spatially-unrolled MACs at the given
    /// precision. Floating point burns [`SynthModel::dsp_per_mac`] per
    /// MAC; one DSP48E2 packs **two** int8 multiplies (the 27×18
    /// pre-adder trick), so INT8 pays one slice per MAC pair.
    pub fn mac_dsp(&self, precision: Precision, macs: u64) -> u64 {
        match precision {
            Precision::F32 => self.dsp_per_mac * macs,
            Precision::Int8 => macs.div_ceil(2),
        }
    }

    /// Estimates one PE (compute logic + its weight/partial buffers).
    ///
    /// INT8 PEs pay fewer DSPs per MAC and store weights at one byte per
    /// word; bias and partial-sum buffers keep their 32-bit accumulator
    /// width regardless of precision.
    pub fn synthesize_pe(&self, pe: &PePlan) -> ModuleSynthesis {
        let p = pe.parallelism;
        // Weight/stream word width; accumulators are always 4 bytes.
        let wbyte = pe.precision.bytes_per_word();
        let mut lut: u64 = 0;
        let mut dsp: u64 = 0;
        let mut bram: u64 = 0;
        let mut is_pool_only = true;

        for l in &pe.layers {
            match l.kind {
                LayerKind::Convolution {
                    num_output,
                    kernel,
                    bias,
                    ..
                } => {
                    is_pool_only = false;
                    let macs = (kernel * kernel * p.parallel_in * p.parallel_out) as u64;
                    lut += self.mac_lut(pe.precision) * macs;
                    dsp += self.mac_dsp(pe.precision, macs);
                    // Convolution weights are *streamed* from the
                    // datamover per output-map group ("each PE also
                    // communicates with our custom datamover to receive
                    // the weights"): only a double-buffered working set
                    // of C·K²·P_out coefficients lives on chip. The
                    // stream overlaps compute (C·K² ≤ C·H_out·W_out).
                    let ws_bytes =
                        (2 * l.input.c * kernel * kernel * p.parallel_out * wbyte) as u64;
                    bram += Resources::bram_tiles_for_bytes(ws_bytes).max(1);
                    if bias {
                        bram += Resources::bram_tiles_for_bytes((num_output * 4) as u64).max(1);
                    }
                    // Partial-result buffer: one output map group.
                    let pbytes = (l.output.h * l.output.w * p.parallel_out * 4) as u64;
                    bram += Resources::bram_tiles_for_bytes(pbytes).max(1);
                }
                LayerKind::Pooling { kernel, method, .. } => {
                    lut += self.pool_lut_per_elem * (kernel * kernel * p.parallel_in) as u64;
                    if matches!(method, condor_nn::PoolKind::Average) {
                        dsp += 2 * p.parallel_in as u64;
                    }
                }
                LayerKind::InnerProduct { num_output, bias } => {
                    is_pool_only = false;
                    let macs = p.fc_simd as u64;
                    lut += self.mac_lut(pe.precision) * macs;
                    dsp += self.mac_dsp(pe.precision, macs);
                    // The current FC methodology buffers the whole weight
                    // matrix on chip — this is precisely why "the
                    // fully-connected layers of VGG-16 would not be
                    // synthesizable with the current methodology" (the
                    // paper's own limitation, reproduced faithfully).
                    let wbytes = (l.input.item_len() * num_output * wbyte) as u64;
                    bram += Resources::bram_tiles_for_bytes(wbytes).max(1);
                    if bias {
                        bram += Resources::bram_tiles_for_bytes((num_output * 4) as u64).max(1);
                    }
                }
                LayerKind::ReLU { .. } | LayerKind::Sigmoid | LayerKind::TanH => {
                    lut += self.activation_lut;
                }
                LayerKind::Softmax { .. } => {
                    lut += self.softmax_lut;
                    dsp += self.softmax_dsp;
                }
                // Stream merges are routing plus at most one ALU op per
                // lane — costed like an activation stage, with DSPs only
                // for the multiplying Eltwise variant.
                LayerKind::Concat | LayerKind::Eltwise { .. } => {
                    lut += self.activation_lut;
                    if matches!(
                        l.kind,
                        LayerKind::Eltwise {
                            op: condor_nn::EltwiseOp::Prod
                        }
                    ) {
                        dsp += 2 * p.parallel_in as u64;
                    }
                }
                LayerKind::Input => {}
            }
        }
        lut += if is_pool_only {
            self.pool_base_lut
        } else {
            self.pe_base_lut
        };
        // Two AXI-stream endpoints per PE.
        bram += 2;
        let ff = (lut as f64 * self.ff_per_lut) as u64;
        ModuleSynthesis {
            name: pe.name.clone(),
            kind: ModuleKind::Pe,
            resources: Resources::new(lut, ff, dsp, bram),
        }
    }

    /// Estimates the filter chains feeding one PE (paper step 3b/3c).
    ///
    /// Line FIFOs hold activation stream words, so an INT8 PE's chains
    /// buffer one byte per element — deep row FIFOs shrink accordingly.
    pub fn synthesize_filter_chain(&self, pe: &PePlan) -> Option<ModuleSynthesis> {
        let needs_chain = pe.layers.iter().any(|l| l.needs_filter_chain());
        if !needs_chain {
            return None;
        }
        let wbyte = pe.precision.bytes_per_word();
        let pipelines = pe.parallelism.parallel_in as u64;
        let filters = pe.filters_per_pipeline() as u64;
        let mut lut = self.filter_lut * filters * pipelines;
        let mut bram = 0u64;
        for depth in pe.fifo_depths() {
            if depth > self.bram_fifo_threshold {
                bram += pipelines * Resources::bram_tiles_for_bytes((depth * wbyte) as u64).max(1);
            } else {
                lut += self.shallow_fifo_lut * pipelines;
            }
        }
        let ff = (lut as f64 * self.ff_per_lut) as u64;
        Some(ModuleSynthesis {
            name: format!("{}_filters", pe.name),
            kind: ModuleKind::FilterChain,
            resources: Resources::new(lut, ff, 0, bram),
        })
    }

    /// Achievable clock for a design of the given total size.
    pub fn achievable_fmax(&self, device: &Device, total: &Resources) -> f64 {
        device.fmax_mhz
            / (1.0 + total.lut as f64 / self.lut_scale + total.dsp as f64 / self.dsp_scale)
    }
}

/// Runs the synthesis model over a whole plan.
pub fn synthesize_plan(plan: &AcceleratorPlan, device: &Device) -> PlanSynthesis {
    synthesize_plan_with(plan, device, &SynthModel::default())
}

/// [`synthesize_plan`] with explicit model coefficients (ablations).
pub fn synthesize_plan_with(
    plan: &AcceleratorPlan,
    device: &Device,
    model: &SynthModel,
) -> PlanSynthesis {
    let mut modules = Vec::new();
    for pe in &plan.pes {
        modules.push(model.synthesize_pe(pe));
        if let Some(chain) = model.synthesize_filter_chain(pe) {
            modules.push(chain);
        }
        // Mixed-precision inter-PE edges need a converter stage on the
        // stream (requantize on f32→int8, dequantize on int8→f32).
        for &src in &pe.inputs {
            if plan.pes[src].precision != pe.precision {
                modules.push(ModuleSynthesis {
                    name: format!("{}_to_{}_cvt", plan.pes[src].name, pe.name),
                    kind: ModuleKind::Converter,
                    resources: model.converter,
                });
            }
        }
    }
    modules.push(ModuleSynthesis {
        name: "datamover".to_string(),
        kind: ModuleKind::Datamover,
        resources: model.datamover,
    });
    modules.push(ModuleSynthesis {
        name: "sdaccel_infra".to_string(),
        kind: ModuleKind::Infrastructure,
        resources: model.infrastructure,
    });
    let total: Resources = modules.iter().map(|m| m.resources).sum();
    let achievable = model.achievable_fmax(device, &total);
    PlanSynthesis {
        modules,
        total,
        achieved_fmax_mhz: plan.freq_mhz.min(achievable),
        requested_fmax_mhz: plan.freq_mhz,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use condor_dataflow::{PeParallelism, PlanBuilder};
    use condor_fpga::device;
    use condor_nn::zoo;

    fn vu9p() -> &'static Device {
        device("xcvu9p").unwrap()
    }

    fn table1_plan(net: &condor_nn::Network, freq: f64) -> AcceleratorPlan {
        PlanBuilder::new(net)
            .freq_mhz(freq)
            .parallelism(PeParallelism {
                parallel_in: 1,
                parallel_out: 1,
                fc_simd: 2,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn tc1_lands_near_table1_utilisation() {
        let net = zoo::tc1();
        let plan = table1_plan(&net, 100.0);
        let synth = synthesize_plan(&plan, vu9p());
        let u = synth.total.utilization(&vu9p().capacity);
        // Paper: LUT 10.47 %, DSP 5.63 %, BRAM 0.97 %. The model must land
        // in the same band (half/double).
        assert!((5.0..21.0).contains(&u.lut_pct), "LUT {u}");
        assert!((1.5..12.0).contains(&u.dsp_pct), "DSP {u}");
        assert!((0.4..3.0).contains(&u.bram_pct), "BRAM {u}");
        assert!(u.feasible());
    }

    #[test]
    fn lenet_is_bram_heavy_like_table1() {
        let tc1 = table1_plan(&zoo::tc1(), 100.0);
        let lenet = table1_plan(&zoo::lenet(), 180.0);
        let s_tc1 = synthesize_plan(&tc1, vu9p());
        let s_lenet = synthesize_plan(&lenet, vu9p());
        let u_tc1 = s_tc1.total.utilization(&vu9p().capacity);
        let u_lenet = s_lenet.total.utilization(&vu9p().capacity);
        // The paper's strongest resource signal: LeNet BRAM (24.4 %) vs
        // TC1 BRAM (0.97 %) — an order of magnitude apart.
        assert!(u_lenet.bram_pct > 10.0 * u_tc1.bram_pct);
        assert!((10.0..40.0).contains(&u_lenet.bram_pct), "{u_lenet}");
    }

    #[test]
    fn requested_clock_is_met_for_small_designs() {
        let plan = table1_plan(&zoo::lenet(), 180.0);
        let synth = synthesize_plan(&plan, vu9p());
        assert_eq!(synth.achieved_fmax_mhz, 180.0);
        let plan = table1_plan(&zoo::tc1(), 100.0);
        let synth = synthesize_plan(&plan, vu9p());
        assert_eq!(synth.achieved_fmax_mhz, 100.0);
    }

    #[test]
    fn huge_parallelism_degrades_clock() {
        let net = zoo::vgg16();
        let fe = net.feature_extraction_prefix().unwrap();
        let plan = PlanBuilder::new(&fe)
            .freq_mhz(300.0)
            .parallelism(PeParallelism {
                parallel_in: 16,
                parallel_out: 16,
                fc_simd: 1,
            })
            .build()
            .unwrap();
        let synth = synthesize_plan(&plan, vu9p());
        assert!(synth.achieved_fmax_mhz < 300.0);
        assert!(synth.achieved_fmax_mhz > 0.0);
    }

    #[test]
    fn parallelism_multiplies_dsp() {
        let net = zoo::lenet();
        let seq = PlanBuilder::new(&net).build().unwrap();
        let par = PlanBuilder::new(&net)
            .parallelism(PeParallelism {
                parallel_in: 2,
                parallel_out: 2,
                fc_simd: 1,
            })
            .build()
            .unwrap();
        let s_seq = synthesize_plan(&seq, vu9p());
        let s_par = synthesize_plan(&par, vu9p());
        assert!(s_par.total.dsp > 2 * s_seq.total.dsp);
    }

    #[test]
    fn fusion_reduces_resources() {
        let net = zoo::lenet();
        let unfused = PlanBuilder::new(&net).build().unwrap();
        let fused = PlanBuilder::new(&net).fusion(10).build().unwrap();
        let s_unfused = synthesize_plan(&unfused, vu9p());
        let s_fused = synthesize_plan(&fused, vu9p());
        assert!(s_fused.total.lut < s_unfused.total.lut);
        assert!(s_fused.total.dsp <= s_unfused.total.dsp);
    }

    #[test]
    fn deep_fifos_take_bram_shallow_take_lut() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let model = SynthModel::default();
        // conv1 chain on a 28-wide image: row FIFOs depth 24 > 16 → BRAM.
        let conv1_chain = model.synthesize_filter_chain(&plan.pes[0]).unwrap();
        assert!(conv1_chain.resources.bram_36k >= 4);
        // conv2 chain on a 12-wide image: depth 8 ≤ 16 → no BRAM.
        let conv2_chain = model.synthesize_filter_chain(&plan.pes[2]).unwrap();
        assert_eq!(conv2_chain.resources.bram_36k, 0);
        // FC PEs have no chain at all.
        assert!(model.synthesize_filter_chain(&plan.pes[4]).is_none());
    }

    #[test]
    fn int8_halves_dsp_and_shrinks_weight_bram() {
        let net = zoo::lenet();
        let f32_plan = PlanBuilder::new(&net)
            .parallelism(PeParallelism {
                parallel_in: 2,
                parallel_out: 2,
                fc_simd: 2,
            })
            .build()
            .unwrap();
        let int8_plan = PlanBuilder::new(&net)
            .parallelism(PeParallelism {
                parallel_in: 2,
                parallel_out: 2,
                fc_simd: 2,
            })
            .precision(Precision::Int8)
            .build()
            .unwrap();
        let s_f32 = synthesize_plan(&f32_plan, vu9p());
        let s_int8 = synthesize_plan(&int8_plan, vu9p());
        // 5 DSP per f32 MAC vs 1 per int8 MAC pair: an order of
        // magnitude, modulo the precision-independent softmax/pool DSPs.
        assert!(
            s_int8.total.dsp * 5 < s_f32.total.dsp,
            "int8 {} vs f32 {}",
            s_int8.total.dsp,
            s_f32.total.dsp
        );
        // LeNet is dominated by ip1's on-chip weight matrix: one byte
        // per int8 word cuts the BRAM footprint.
        assert!(
            s_int8.total.bram_36k < s_f32.total.bram_36k,
            "int8 {} vs f32 {}",
            s_int8.total.bram_36k,
            s_f32.total.bram_36k
        );
        assert!(s_int8.total.lut < s_f32.total.lut);
    }

    #[test]
    fn mixed_precision_edges_get_converters() {
        let net = zoo::lenet();
        // conv2's PE runs int8 inside an otherwise-f32 pipeline: its
        // input edge (pool1 → conv2) and output edge (conv2 → pool2)
        // both cross precisions.
        let plan = PlanBuilder::new(&net)
            .layer_precision("conv2", Precision::Int8)
            .build()
            .unwrap();
        let synth = synthesize_plan(&plan, vu9p());
        let cvts: Vec<&str> = synth
            .modules
            .iter()
            .filter(|m| m.kind == ModuleKind::Converter)
            .map(|m| m.name.as_str())
            .collect();
        assert_eq!(cvts, ["pe1_to_pe2_cvt", "pe2_to_pe3_cvt"]);
        // Uniform plans — either precision — need no converters.
        for plan in [
            PlanBuilder::new(&net).build().unwrap(),
            PlanBuilder::new(&net)
                .precision(Precision::Int8)
                .build()
                .unwrap(),
        ] {
            let synth = synthesize_plan(&plan, vu9p());
            assert!(synth
                .modules
                .iter()
                .all(|m| m.kind != ModuleKind::Converter));
        }
    }

    #[test]
    fn module_inventory_is_complete() {
        let plan = table1_plan(&zoo::lenet(), 180.0);
        let synth = synthesize_plan(&plan, vu9p());
        let pes = synth
            .modules
            .iter()
            .filter(|m| m.kind == ModuleKind::Pe)
            .count();
        assert_eq!(pes, plan.pes.len());
        assert_eq!(
            synth
                .modules
                .iter()
                .filter(|m| m.kind == ModuleKind::Datamover)
                .count(),
            1
        );
        let sum: Resources = synth.modules.iter().map(|m| m.resources).sum();
        assert_eq!(sum, synth.total);
    }
}
