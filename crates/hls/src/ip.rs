//! IP packaging and IP-Integrator connection (paper steps 3c and 5).
//!
//! "An empty Vivado IP Integrator project is created, the filters are
//! first linked together to form the memory subsystem and then connected
//! to the PE to form the final structure of the layer. Finally, the layer
//! is packaged as a Vivado IP" — and later "all the IPs of the layers
//! packaged in the previous steps are linked together following the
//! specified topology to create the final CNN accelerator."
//!
//! This module models the packaging artifacts (VLNV identity, stream
//! interfaces, bundled sources) and performs the interface-compatibility
//! checks the real connection step would fail on.

use crate::codegen;
use crate::synth::ModuleSynthesis;
use condor_dataflow::{AcceleratorPlan, PePlan};
use condor_nn::Stage;
use std::fmt;

/// Direction of a streaming interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamDir {
    /// Slave (input) stream.
    In,
    /// Master (output) stream.
    Out,
}

/// One AXI4-Stream interface of an IP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IpInterface {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: StreamDir,
    /// Data width in bits (32 for single-precision streams).
    pub width_bits: usize,
}

/// A packaged Vivado IP for one layer (PE + its memory subsystem).
#[derive(Clone, Debug, PartialEq)]
pub struct VivadoIp {
    /// Instance name.
    pub name: String,
    /// Vendor:Library:Name:Version identity.
    pub vlnv: String,
    /// Streaming interfaces.
    pub interfaces: Vec<IpInterface>,
    /// Generated HLS C sources bundled into the IP.
    pub sources: Vec<(String, String)>,
}

/// Error from IP packaging / connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IpError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for IpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IP packaging error: {}", self.message)
    }
}

impl std::error::Error for IpError {}

/// Packages one PE (and its filters, if any) as a layer IP.
pub fn package_layer_ip(pe: &PePlan) -> VivadoIp {
    let mut sources = Vec::new();
    let mut interfaces = vec![
        IpInterface {
            name: "s_axis_data".to_string(),
            dir: StreamDir::In,
            width_bits: 32,
        },
        IpInterface {
            name: "s_axis_weights".to_string(),
            dir: StreamDir::In,
            width_bits: 32,
        },
        IpInterface {
            name: "m_axis_data".to_string(),
            dir: StreamDir::Out,
            width_bits: 32,
        },
    ];
    match pe.stage {
        Stage::FeatureExtraction => {
            sources.push((format!("{}.cpp", pe.name), codegen::pe_source(pe)));
            if pe.layers.iter().any(|l| l.needs_filter_chain()) {
                let k = pe.max_window();
                let chain = condor_dataflow::FilterChain::new(
                    k,
                    pe.layers[0].input.h,
                    pe.layers[0].input.w,
                    1,
                    0,
                );
                for spec in chain.filter_specs() {
                    sources.push((
                        format!("{}_filter_{}_{}.cpp", pe.name, spec.row, spec.col),
                        codegen::filter_source(&pe.name, &spec, pe.max_input_width()),
                    ));
                }
            }
        }
        Stage::Classification => {
            sources.push((format!("{}.cpp", pe.name), codegen::fc_pe_source(pe)));
            // FC PEs have no memory subsystem — and no weight reuse
            // buffer interface beyond the stream.
            interfaces.retain(|i| i.name != "s_axis_weights");
            interfaces.push(IpInterface {
                name: "s_axis_weights".to_string(),
                dir: StreamDir::In,
                width_bits: 32 * pe.parallelism.fc_simd,
            });
        }
    }
    VivadoIp {
        name: pe.name.clone(),
        vlnv: format!("polimi.it:condor:{}:1.0", pe.name),
        interfaces,
        sources,
    }
}

/// The final accelerator IP: all layer IPs connected in topology order
/// behind a single AXI4 master + AXI4-Lite slave, as the SDAccel kernel
/// packaging requires (paper step 6a).
#[derive(Clone, Debug, PartialEq)]
pub struct AcceleratorIp {
    /// Accelerator (kernel) name.
    pub name: String,
    /// VLNV identity.
    pub vlnv: String,
    /// Layer IPs in pipeline order.
    pub layers: Vec<VivadoIp>,
    /// Directed stream connections `(from_ip, to_ip)`.
    pub connections: Vec<(String, String)>,
    /// Synthesis estimates carried along for reporting.
    pub module_reports: Vec<ModuleSynthesis>,
}

/// Connects packaged layer IPs following the plan topology (paper
/// step 5), checking stream-interface compatibility.
pub fn connect_network(
    plan: &AcceleratorPlan,
    ips: Vec<VivadoIp>,
    module_reports: Vec<ModuleSynthesis>,
) -> Result<AcceleratorIp, IpError> {
    if ips.len() != plan.pes.len() {
        return Err(IpError {
            message: format!(
                "expected {} layer IPs for plan, got {}",
                plan.pes.len(),
                ips.len()
            ),
        });
    }
    let mut connections = Vec::new();
    for pair in ips.windows(2) {
        let up = &pair[0];
        let down = &pair[1];
        let m = up
            .interfaces
            .iter()
            .find(|i| i.dir == StreamDir::Out)
            .ok_or_else(|| IpError {
                message: format!("IP '{}' has no master stream", up.name),
            })?;
        let s = down
            .interfaces
            .iter()
            .find(|i| i.dir == StreamDir::In && i.name == "s_axis_data")
            .ok_or_else(|| IpError {
                message: format!("IP '{}' has no data slave stream", down.name),
            })?;
        if m.width_bits != s.width_bits {
            return Err(IpError {
                message: format!(
                    "stream width mismatch {} ({}) -> {} ({})",
                    up.name, m.width_bits, down.name, s.width_bits
                ),
            });
        }
        connections.push((up.name.clone(), down.name.clone()));
    }
    Ok(AcceleratorIp {
        name: format!("condor_{}", plan.network.to_lowercase().replace('-', "_")),
        vlnv: format!(
            "polimi.it:condor:accel_{}:1.0",
            plan.network.to_lowercase().replace('-', "_")
        ),
        layers: ips,
        connections,
        module_reports,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::synth::synthesize_plan;
    use condor_dataflow::PlanBuilder;
    use condor_fpga::device;
    use condor_nn::zoo;

    fn lenet_accel() -> (AcceleratorPlan, AcceleratorIp) {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let synth = synthesize_plan(&plan, device("xcvu9p").unwrap());
        let ips: Vec<VivadoIp> = plan.pes.iter().map(package_layer_ip).collect();
        let accel = connect_network(&plan, ips, synth.modules).unwrap();
        (plan, accel)
    }

    #[test]
    fn layer_ip_carries_sources_and_interfaces() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let ip = package_layer_ip(&plan.pes[0]); // conv1
        assert_eq!(ip.vlnv, "polimi.it:condor:pe0:1.0");
        // PE source + 25 filter sources.
        assert_eq!(ip.sources.len(), 26);
        assert!(ip.interfaces.iter().any(|i| i.dir == StreamDir::Out));
    }

    #[test]
    fn fc_ip_has_no_filter_sources() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let ip = package_layer_ip(&plan.pes[4]); // ip1
        assert_eq!(ip.sources.len(), 1);
        assert!(ip.sources[0].1.contains("single-input/single-output"));
    }

    #[test]
    fn connect_follows_topology() {
        let (plan, accel) = lenet_accel();
        assert_eq!(accel.connections.len(), plan.pes.len() - 1);
        assert_eq!(accel.connections[0], ("pe0".to_string(), "pe1".to_string()));
        assert_eq!(accel.name, "condor_lenet");
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let mut ips: Vec<VivadoIp> = plan.pes.iter().map(package_layer_ip).collect();
        // Corrupt a slave width.
        let s = ips[1]
            .interfaces
            .iter_mut()
            .find(|i| i.name == "s_axis_data")
            .unwrap();
        s.width_bits = 64;
        let err = connect_network(&plan, ips, vec![]).unwrap_err();
        assert!(err.message.contains("width mismatch"));
    }

    #[test]
    fn ip_count_mismatch_is_rejected() {
        let net = zoo::lenet();
        let plan = PlanBuilder::new(&net).build().unwrap();
        let err = connect_network(&plan, vec![], vec![]).unwrap_err();
        assert!(err.message.contains("expected"));
    }
}
