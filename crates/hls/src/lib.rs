//! # condor-hls
//!
//! Simulated Vivado HLS toolchain.
//!
//! The paper's flow (Section 3.3, steps 3–5) generates C code for every
//! PE and filter, synthesises it with Vivado HLS, and packages each layer
//! as a Vivado IP connected with IP Integrator. No Xilinx tools exist in
//! this environment, so the substrate splits that flow into:
//!
//! * [`codegen`] — the *same artifact* the paper produces: HLS C sources
//!   for PEs (with the outer layer-iteration loop used by fused PEs and
//!   the paper's conditional port reads) and for the filters (with their
//!   polyhedral selection inequalities). A user with real tools can feed
//!   these to Vivado HLS;
//! * [`synth`] — an analytic synthesis model mapping each module to
//!   LUT/FF/DSP/BRAM estimates and an achievable clock, calibrated so
//!   the two Table 1 design points land near the paper's utilisation
//!   (the calibration is documented in EXPERIMENTS.md);
//! * [`ip`] — the packaging layer: per-layer Vivado-IP records, the IP
//!   Integrator step connecting them into the final accelerator IP, and
//!   the interface checks real packaging would perform.

#![forbid(unsafe_code)]

pub mod codegen;
pub mod ip;
pub mod synth;

pub use codegen::{fc_pe_source, filter_source, pe_source};
pub use ip::{
    connect_network, package_layer_ip, AcceleratorIp, IpError, IpInterface, StreamDir, VivadoIp,
};
pub use synth::{synthesize_plan, ModuleKind, ModuleSynthesis, PlanSynthesis, SynthModel};
