//! Property tests for the synthesis model: monotonicity and structural
//! consistency on random networks.

#![allow(clippy::unwrap_used)] // test code: unwrap is the assertion

use condor_dataflow::{PeParallelism, PlanBuilder};
use condor_fpga::device;
use condor_hls::{synthesize_plan, ModuleKind};
use condor_nn::arbitrary::random_chain;
use proptest::prelude::*;

proptest! {
    /// Synthesis totals equal the module sum, every module is non-empty,
    /// and the achieved clock never exceeds the request or the device.
    #[test]
    fn synthesis_is_internally_consistent(seed in any::<u64>(), freq in 50.0f64..400.0) {
        let net = random_chain(seed);
        let plan = PlanBuilder::new(&net).freq_mhz(freq).build().unwrap();
        let dev = device("xcvu9p").unwrap();
        let synth = synthesize_plan(&plan, dev);
        let sum: condor_fpga::Resources = synth.modules.iter().map(|m| m.resources).sum();
        prop_assert_eq!(sum, synth.total);
        prop_assert!(synth.achieved_fmax_mhz <= freq + 1e-9);
        prop_assert!(synth.achieved_fmax_mhz <= dev.fmax_mhz);
        prop_assert!(synth.achieved_fmax_mhz > 0.0);
        for m in &synth.modules {
            let pe_nonempty = m.resources.lut > 0 || m.kind != ModuleKind::Pe;
            prop_assert!(pe_nonempty);
        }
        // Exactly one datamover and one infrastructure module.
        prop_assert_eq!(
            synth.modules.iter().filter(|m| m.kind == ModuleKind::Datamover).count(),
            1
        );
        prop_assert_eq!(
            synth
                .modules
                .iter()
                .filter(|m| m.kind == ModuleKind::Infrastructure)
                .count(),
            1
        );
    }

    /// More parallelism never shrinks the design.
    #[test]
    fn resources_monotone_in_parallelism(seed in any::<u64>(), pi in 1usize..4, po in 1usize..4) {
        let net = random_chain(seed);
        let dev = device("xcvu9p").unwrap();
        let base = synthesize_plan(&PlanBuilder::new(&net).build().unwrap(), dev);
        let par = synthesize_plan(
            &PlanBuilder::new(&net)
                .parallelism(PeParallelism {
                    parallel_in: pi,
                    parallel_out: po,
                    fc_simd: 1,
                })
                .build()
                .unwrap(),
            dev,
        );
        prop_assert!(par.total.lut >= base.total.lut);
        prop_assert!(par.total.dsp >= base.total.dsp);
    }

    /// Fusing layers never increases LUT or DSP usage.
    #[test]
    fn fusion_monotone_shrinks(seed in any::<u64>(), fusion in 2usize..6) {
        let net = random_chain(seed);
        let dev = device("xcvu9p").unwrap();
        let unfused = synthesize_plan(&PlanBuilder::new(&net).build().unwrap(), dev);
        let fused = synthesize_plan(
            &PlanBuilder::new(&net).fusion(fusion).build().unwrap(),
            dev,
        );
        prop_assert!(fused.total.lut <= unfused.total.lut);
        prop_assert!(fused.total.dsp <= unfused.total.dsp);
    }

    /// Generated PE sources always carry the pipeline pragma and one
    /// body per fused layer; filter sources carry their inequalities.
    #[test]
    fn codegen_structure_on_random_networks(seed in any::<u64>()) {
        let net = random_chain(seed);
        let plan = PlanBuilder::new(&net).build().unwrap();
        for pe in &plan.pes {
            match pe.stage {
                condor_nn::Stage::FeatureExtraction => {
                    let src = condor_hls::pe_source(pe);
                    let signature = format!("void {}(", pe.name);
                    prop_assert!(src.contains(&signature));
                    for l in &pe.layers {
                        if l.kind.is_compute() {
                            prop_assert!(
                                src.contains(l.name.as_str()),
                                "{} missing from source",
                                l.name
                            );
                        }
                    }
                }
                condor_nn::Stage::Classification => {
                    let src = condor_hls::fc_pe_source(pe);
                    prop_assert!(src.contains("hls::stream<float> &in"));
                }
            }
        }
    }
}
