//! Crash-safe fault journals and the `condor-faultlog` readers.
//!
//! Two on-disk forms share one schema:
//!
//! * **Dump** — a single JSON document written after the fact
//!   ([`crate::FaultHandle::log_json`]):
//!   `{"fired":[…],"schema":"condor-faultlog/2","seed":N}`. The v1
//!   schema (hand-rolled writer of earlier releases, no `arg` field)
//!   parses through the same reader.
//! * **Journal** — an append-only JSON-lines file written *while the
//!   faults fire* ([`crate::FaultPlan::install_with_journal`]): a header
//!   line `{"journal":true,"schema":"condor-faultlog/2","seed":N}`
//!   followed by one record per line, each flushed as it fires. A
//!   crashed or aborted run therefore leaves a readable prefix;
//!   [`parse_dump`] reports the torn tail via [`FaultDump::truncated`]
//!   instead of failing.
//!
//! [`crate::FaultPlan::from_records`] turns the parsed records back into
//! a plan that re-fires the identical `(site, call, action)` sequence —
//! the `condor faults replay` CLI subcommand is a thin wrapper over
//! that.

use crate::{FaultPlan, FaultRecord, FaultRule, Trigger};
use condor_cjson::Value;
use std::fmt;
use std::path::Path;

/// Schema tag of the legacy hand-rolled dumps.
pub const SCHEMA_V1: &str = "condor-faultlog/1";
/// Schema tag of cjson dumps and journals.
pub const SCHEMA_V2: &str = "condor-faultlog/2";

/// A parsed fault dump or journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultDump {
    /// Schema version the document declared (1 or 2).
    pub schema_version: u32,
    /// The plan seed the run used.
    pub seed: u64,
    /// Every fault that fired, in firing order (for a truncated journal:
    /// the readable prefix).
    pub records: Vec<FaultRecord>,
    /// True when the document was a journal whose final line was torn
    /// (the writer died mid-record); `records` holds the intact prefix.
    pub truncated: bool,
}

impl FaultDump {
    /// Rebuilds the replay plan for this dump's fired sequence.
    pub fn replay_plan(&self) -> FaultPlan {
        FaultPlan::from_records(self.seed, &self.records)
    }
}

/// Why a dump or journal failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault journal error: {}", self.message)
    }
}

impl std::error::Error for JournalError {}

fn journal_error(message: impl Into<String>) -> JournalError {
    JournalError {
        message: message.into(),
    }
}

/// One fired-fault record as a cjson node.
pub(crate) fn record_value(r: &FaultRecord) -> Value {
    Value::object([
        ("site".to_string(), Value::str(r.site.clone())),
        ("call".to_string(), Value::int(r.call as i64)),
        ("rule".to_string(), Value::int(r.rule as i64)),
        ("action".to_string(), Value::str(r.action)),
        ("arg".to_string(), Value::int(r.arg as i64)),
    ])
}

/// The whole-log dump document (`condor-faultlog/2`).
pub(crate) fn dump_value(seed: u64, records: &[FaultRecord]) -> Value {
    Value::object([
        ("schema".to_string(), Value::str(SCHEMA_V2)),
        ("seed".to_string(), Value::int(seed as i64)),
        (
            "fired".to_string(),
            Value::Array(records.iter().map(record_value).collect()),
        ),
    ])
}

/// The journal header line for a run under `seed`.
pub(crate) fn journal_header(seed: u64) -> String {
    condor_cjson::to_string(&Value::object([
        ("schema".to_string(), Value::str(SCHEMA_V2)),
        ("seed".to_string(), Value::int(seed as i64)),
        ("journal".to_string(), Value::Bool(true)),
    ]))
}

/// One journal line for a fired record.
pub(crate) fn record_line(r: &FaultRecord) -> String {
    condor_cjson::to_string(&record_value(r))
}

/// Interns an action string from a document into the `&'static str`
/// vocabulary [`FaultRecord`] uses.
fn action_static(s: &str) -> Result<&'static str, JournalError> {
    match s {
        "fail-transient" => Ok("fail-transient"),
        "fail-permanent" => Ok("fail-permanent"),
        "delay" => Ok("delay"),
        "abort" => Ok("abort"),
        "slowdown" => Ok("slowdown"),
        "stall" => Ok("stall"),
        "jitter" => Ok("jitter"),
        other => Err(journal_error(format!("unknown fault action {other:?}"))),
    }
}

fn u64_field(v: &Value, key: &str, default: Option<u64>) -> Result<u64, JournalError> {
    match v.get(key) {
        Some(n) => n
            .as_i64()
            .filter(|&x| x >= 0)
            .map(|x| x as u64)
            .ok_or_else(|| journal_error(format!("field {key:?} is not a non-negative integer"))),
        None => default.ok_or_else(|| journal_error(format!("missing field {key:?}"))),
    }
}

fn record_from_value(v: &Value) -> Result<FaultRecord, JournalError> {
    let site = v
        .get("site")
        .and_then(Value::as_str)
        .ok_or_else(|| journal_error("record missing string field \"site\""))?
        .to_string();
    let action = action_static(
        v.get("action")
            .and_then(Value::as_str)
            .ok_or_else(|| journal_error("record missing string field \"action\""))?,
    )?;
    Ok(FaultRecord {
        site,
        call: u64_field(v, "call", None)?,
        rule: u64_field(v, "rule", None)? as usize,
        action,
        // v1 records carry no argument; replay then approximates
        // parameterised actions with a zero argument.
        arg: u64_field(v, "arg", Some(0))?,
    })
}

fn schema_version(v: &Value) -> Result<u32, JournalError> {
    match v.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCHEMA_V1 => Ok(1),
        Some(s) if s == SCHEMA_V2 => Ok(2),
        Some(other) => Err(journal_error(format!("unknown schema {other:?}"))),
        None => Err(journal_error("missing \"schema\" field")),
    }
}

fn parse_document(v: &Value) -> Result<FaultDump, JournalError> {
    let schema_version = schema_version(v)?;
    let seed = u64_field(v, "seed", None)?;
    // A header-only journal (no faults fired before the run ended)
    // parses as a complete single document.
    if v.get("journal").and_then(Value::as_bool) == Some(true) {
        return Ok(FaultDump {
            schema_version,
            seed,
            records: Vec::new(),
            truncated: false,
        });
    }
    let fired = v
        .get("fired")
        .and_then(Value::as_array)
        .ok_or_else(|| journal_error("dump missing \"fired\" array"))?;
    let records = fired
        .iter()
        .map(record_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(FaultDump {
        schema_version,
        seed,
        records,
        truncated: false,
    })
}

/// Parses a fault dump (v1 or v2 single document) or an append-only
/// journal (v2 JSON lines). A journal whose final line is torn parses
/// to its intact prefix with [`FaultDump::truncated`] set.
pub fn parse_dump(text: &str) -> Result<FaultDump, JournalError> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(journal_error("empty document"));
    }
    // Whole-document form first: v1/v2 dumps, or a header-only journal.
    if let Ok(v) = condor_cjson::parse(trimmed) {
        return parse_document(&v);
    }
    // Journal form: header line, then one record per line; stop at the
    // first torn line.
    let mut lines = trimmed.lines();
    let header_line = lines.next().ok_or_else(|| journal_error("empty journal"))?;
    let header = condor_cjson::parse(header_line)
        .map_err(|e| journal_error(format!("bad journal header: {e}")))?;
    if header.get("journal").and_then(Value::as_bool) != Some(true) {
        return Err(journal_error(
            "not a fault journal (header missing \"journal\":true)",
        ));
    }
    let schema_version = schema_version(&header)?;
    let seed = u64_field(&header, "seed", None)?;
    let mut records = Vec::new();
    let mut truncated = false;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = condor_cjson::parse(line)
            .ok()
            .and_then(|v| record_from_value(&v).ok());
        match parsed {
            Some(r) => records.push(r),
            None => {
                // The writer died mid-line; everything before is intact.
                truncated = true;
                break;
            }
        }
    }
    Ok(FaultDump {
        schema_version,
        seed,
        records,
        truncated,
    })
}

/// Reads and parses a dump or journal file.
pub fn read_dump(path: impl AsRef<Path>) -> Result<FaultDump, JournalError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| journal_error(format!("cannot read {}: {e}", path.display())))?;
    parse_dump(&text)
}

/// Serialises a plan (seed + rules) as a cjson document — the output of
/// `condor faults replay --json`.
pub fn plan_value(plan: &FaultPlan) -> Value {
    let rules = plan
        .rules
        .iter()
        .map(|r| {
            let mut fields = vec![("site".to_string(), Value::str(r.site.clone()))];
            let (trigger, trigger_arg) = match r.trigger {
                Trigger::Always => ("always", None),
                Trigger::NthCall(n) => ("nth-call", Some(Value::int(n as i64))),
                Trigger::FirstCalls(n) => ("first-calls", Some(Value::int(n as i64))),
                Trigger::AfterCalls(n) => ("after-calls", Some(Value::int(n as i64))),
                Trigger::Probability(p) => ("probability", Some(Value::float(p))),
            };
            fields.push(("trigger".to_string(), Value::str(trigger)));
            if let Some(arg) = trigger_arg {
                fields.push(("trigger_arg".to_string(), arg));
            }
            fields.push(("action".to_string(), Value::str(r.action.kind_str())));
            fields.push(("action_arg".to_string(), Value::int(r.action.arg() as i64)));
            if let Some(max) = r.max_fires {
                fields.push(("max_fires".to_string(), Value::int(max as i64)));
            }
            Value::object(fields)
        })
        .collect();
    Value::object([
        ("schema".to_string(), Value::str("condor-faultplan/1")),
        ("seed".to_string(), Value::int(plan.seed as i64)),
        ("rules".to_string(), Value::Array(rules)),
    ])
}

/// Formats one rule for the human-readable replay listing.
pub fn rule_summary(rule: &FaultRule) -> String {
    let trigger = match rule.trigger {
        Trigger::Always => "always".to_string(),
        Trigger::NthCall(n) => format!("call {n}"),
        Trigger::FirstCalls(n) => format!("calls <{n}"),
        Trigger::AfterCalls(n) => format!("calls >={n}"),
        Trigger::Probability(p) => format!("p={p:.3}"),
    };
    let arg = rule.action.arg();
    let action = if arg == 0 {
        rule.action.kind_str().to_string()
    } else {
        format!("{}({arg})", rule.action.kind_str())
    };
    match rule.max_fires {
        Some(max) => format!("{} @ {trigger} -> {action} (max {max})", rule.site),
        None => format!("{} @ {trigger} -> {action}", rule.site),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::FaultRule;
    use std::time::Duration;

    fn fired_records(seed: u64) -> (u64, Vec<FaultRecord>) {
        let h = FaultPlan::new(seed)
            .rule(FaultRule::at("s3.").nth_call(1).fail_transient())
            .rule(
                FaultRule::at("f1.")
                    .nth_call(0)
                    .delay(Duration::from_micros(250)),
            )
            .install();
        for _ in 0..3 {
            let _ = h.gate("s3.put_object");
            let _ = h.gate("f1.load_afi");
        }
        (seed, h.log())
    }

    #[test]
    fn v2_dump_round_trips() {
        let (seed, records) = fired_records(77);
        let text = condor_cjson::to_string(&dump_value(seed, &records));
        let dump = parse_dump(&text).unwrap();
        assert_eq!(dump.schema_version, 2);
        assert_eq!(dump.seed, seed);
        assert_eq!(dump.records, records);
        assert!(!dump.truncated);
    }

    #[test]
    fn v1_dump_still_parses() {
        let text = r#"{"schema":"condor-faultlog/1","seed":9,"fired":[
            {"site":"x.y","call":0,"rule":0,"action":"fail-transient"}]}"#;
        let dump = parse_dump(text).unwrap();
        assert_eq!(dump.schema_version, 1);
        assert_eq!(dump.seed, 9);
        assert_eq!(dump.records.len(), 1);
        assert_eq!(dump.records[0].site, "x.y");
        assert_eq!(dump.records[0].arg, 0, "v1 has no arg field");
    }

    #[test]
    fn journal_writes_flush_per_fire_and_parse_back() {
        let dir = std::env::temp_dir().join("condor-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("flush-{}.journal", std::process::id()));
        let h = FaultPlan::new(5)
            .rule(FaultRule::at("a.").first_calls(2).fail_transient())
            .install_with_journal(&path)
            .unwrap();
        // Header alone is already a parseable (empty) journal.
        let dump = read_dump(&path).unwrap();
        assert_eq!(dump.seed, 5);
        assert!(dump.records.is_empty());
        // Each fire lands on disk immediately, no shutdown needed.
        let _ = h.gate("a.x");
        let dump = read_dump(&path).unwrap();
        assert_eq!(dump.records.len(), 1);
        let _ = h.gate("a.x");
        let dump = read_dump(&path).unwrap();
        assert_eq!(dump.records.len(), 2);
        assert_eq!(dump.records, h.log());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_journal_tail_parses_to_the_prefix() {
        let (seed, records) = fired_records(3);
        let mut text = journal_header(seed);
        for r in &records {
            text.push('\n');
            text.push_str(&record_line(r));
        }
        // Simulate a crash mid-write: cut the final line in half.
        let cut = text.len() - 17;
        let torn = &text[..cut];
        let dump = parse_dump(torn).unwrap();
        assert!(dump.truncated);
        assert_eq!(dump.records, records[..records.len() - 1]);
        assert_eq!(dump.seed, seed);
    }

    #[test]
    fn replayed_plan_fires_the_identical_sequence() {
        // Original run: probabilistic + windowed rules over two sites.
        let plan = FaultPlan::new(41)
            .rule(FaultRule::at("s3.").probability(0.5).fail_transient())
            .rule(
                FaultRule::at("f1.")
                    .after_calls(2)
                    .fail_permanent()
                    .max_fires(2),
            );
        let h = plan.install();
        for _ in 0..6 {
            let _ = h.gate("s3.put_object");
            let _ = h.gate("f1.load_afi");
        }
        let original = h.log();
        assert!(!original.is_empty());

        // Replay through the dump → plan → re-run path.
        let dump = parse_dump(&h.log_json()).unwrap();
        let replay = dump.replay_plan().install();
        for _ in 0..6 {
            let _ = replay.gate("s3.put_object");
            let _ = replay.gate("f1.load_afi");
        }
        let replayed = replay.log();
        let key = |r: &FaultRecord| (r.site.clone(), r.call, r.action, r.arg);
        assert_eq!(
            original.iter().map(key).collect::<Vec<_>>(),
            replayed.iter().map(key).collect::<Vec<_>>(),
            "replay must fire the identical (site, call, action) sequence"
        );
    }

    #[test]
    fn garbage_is_rejected_with_a_typed_error() {
        assert!(parse_dump("").is_err());
        assert!(parse_dump("not json").is_err());
        assert!(parse_dump("{\"schema\":\"wrong/9\",\"seed\":0,\"fired\":[]}").is_err());
        // A valid JSON object that is neither dump nor journal.
        assert!(parse_dump("{\"seed\":0}").is_err());
    }

    #[test]
    fn plan_value_serialises_every_trigger() {
        let plan = FaultPlan::new(1)
            .rule(FaultRule::at("a").always().abort())
            .rule(
                FaultRule::at("b")
                    .nth_call(3)
                    .delay(Duration::from_micros(9)),
            )
            .rule(FaultRule::at("c").first_calls(2).slowdown(1.5))
            .rule(FaultRule::at("d").after_calls(4).stall_cycles(7))
            .rule(
                FaultRule::at("e")
                    .probability(0.25)
                    .jitter_cycles(64)
                    .max_fires(1),
            );
        let v = plan_value(&plan);
        let text = condor_cjson::to_string_pretty(&v);
        for needle in [
            "always",
            "nth-call",
            "first-calls",
            "after-calls",
            "probability",
            "slowdown",
            "stall",
            "jitter",
            "max_fires",
        ] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
