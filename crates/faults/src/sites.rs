//! The canonical fault-site registry.
//!
//! Every injection site the substrate consults — each string passed to
//! [`FaultHandle::gate`](crate::FaultHandle::gate),
//! [`FaultHandle::check`](crate::FaultHandle::check) or
//! [`FaultHandle::timing`](crate::FaultHandle::timing) by the cloud,
//! deploy, dataflow and serving layers — must appear here, and every
//! entry here must be exercised somewhere. `cargo run -p xtask audit`
//! enforces both directions statically (diagnostics `X001`–`X003`), so
//! a typo'd site can no longer compile into a rule that silently never
//! fires.
//!
//! Entries are *templates*: a `{}` placeholder stands for a run of
//! decimal digits chosen at runtime (`dataflow.pe{}` covers
//! `dataflow.pe0`, `dataflow.pe17`, …). The matching functions below
//! define the template semantics; they are the single implementation
//! the audit and any runtime assertion share.
//!
//! To add a site: wire the `gate`/`check`/`timing` call, add a
//! [`SiteSpec`] row here (grouped by layer), and re-run the audit. The
//! registry is append-only — renaming a site breaks every committed
//! fault plan and journal that mentions it.

/// One registered injection site (or site template).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteSpec {
    /// Site name; `{}` matches one-or-more decimal digits.
    pub name: &'static str,
    /// The layer that owns the site (`"cloud"`, `"core"`, …).
    pub layer: &'static str,
    /// What the site intercepts.
    pub doc: &'static str,
}

/// Every injection site the substrate consults, grouped by layer.
pub const SITES: &[SiteSpec] = &[
    SiteSpec {
        name: "s3.put_object",
        layer: "cloud",
        doc: "upload of a build artifact to the model bucket",
    },
    SiteSpec {
        name: "s3.get_object",
        layer: "cloud",
        doc: "download of a build artifact from the model bucket",
    },
    SiteSpec {
        name: "afi.create_fpga_image",
        layer: "cloud",
        doc: "the CreateFpgaImage API call itself",
    },
    SiteSpec {
        name: "afi.generation",
        layer: "cloud",
        doc: "outcome of the asynchronous AFI generation job",
    },
    SiteSpec {
        name: "f1.load_afi",
        layer: "cloud",
        doc: "programming an AFI into an F1 slot",
    },
    SiteSpec {
        name: "f1.clear_slot",
        layer: "cloud",
        doc: "clearing a previously programmed F1 slot",
    },
    SiteSpec {
        name: "sdaccel.xocc_link",
        layer: "core",
        doc: "the on-premise xocc link step",
    },
    SiteSpec {
        name: "sdaccel.program",
        layer: "core",
        doc: "programming the on-premise board",
    },
    SiteSpec {
        name: "dataflow.datamover",
        layer: "dataflow",
        doc: "datamover transfers (functional) and per-burst timing",
    },
    SiteSpec {
        name: "dataflow.pe{}",
        layer: "dataflow",
        doc: "one processing element's stream worker (functional + timing)",
    },
    SiteSpec {
        name: "serve.backend{}",
        layer: "serve",
        doc: "one serving lane's backend execution",
    },
    SiteSpec {
        name: "fleet{}g{}.serve.backend{}",
        layer: "serve",
        doc: "a fleet instance's serving lane, prefixed per replica and generation",
    },
    SiteSpec {
        name: "queue.append",
        layer: "queue",
        doc: "writing one record frame into the disk-backed admission queue",
    },
    SiteSpec {
        name: "queue.fsync",
        layer: "queue",
        doc: "flushing a queue segment or ack journal to stable storage",
    },
    SiteSpec {
        name: "queue.checkpoint",
        layer: "queue",
        doc: "writing the atomic reader checkpoint (tmp write + rename)",
    },
    SiteSpec {
        name: "queue.segment_rotate",
        layer: "queue",
        doc: "closing a full queue segment and opening its successor",
    },
    SiteSpec {
        name: "shed.codel",
        layer: "serve",
        doc: "forces a CoDel shed decision on the next admission-queue dequeue",
    },
    SiteSpec {
        name: "breaker.probe",
        layer: "serve",
        doc: "suppresses half-open breaker probes while firing (holds a breaker open)",
    },
    SiteSpec {
        name: "brownout.switch",
        layer: "serve",
        doc: "forces brownout mode active on the next controller poll",
    },
];

/// Collapses every `{...}` placeholder (named format captures included)
/// to the canonical bare `{}`, so `"dataflow.pe{idx}"` compares equal
/// to the registered `"dataflow.pe{}"`.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '{' {
            for inner in chars.by_ref() {
                if inner == '}' {
                    break;
                }
            }
            out.push_str("{}");
        } else {
            out.push(c);
        }
    }
    out
}

/// True when `s` (a concrete site, or a `{}`-normalized template) is an
/// instance of template `t`: literal characters match exactly and each
/// `{}` in `t` consumes either one-or-more decimal digits of `s` or a
/// `{}` of `s`.
pub fn template_matches(s: &str, t: &str) -> bool {
    match_impl(normalize(s).as_bytes(), normalize(t).as_bytes(), false)
}

/// True when `p` is a prefix of *some* expansion of template `t` — the
/// relation a [`FaultRule`](crate::FaultRule) site prefix needs to ever
/// fire at a site registered as `t`.
pub fn template_prefix_matches(p: &str, t: &str) -> bool {
    match_impl(normalize(p).as_bytes(), normalize(t).as_bytes(), true)
}

fn match_impl(s: &[u8], t: &[u8], prefix: bool) -> bool {
    if s.is_empty() {
        return prefix || t.is_empty();
    }
    if t.is_empty() {
        return false;
    }
    if t[0] == b'{' && t.get(1) == Some(&b'}') {
        if s[0] == b'{' && s.get(1) == Some(&b'}') {
            return match_impl(&s[2..], &t[2..], prefix);
        }
        let digits = s.iter().take_while(|c| c.is_ascii_digit()).count();
        if digits == 0 {
            return false;
        }
        // A prefix ending inside the digit run is a prefix of some
        // longer expansion.
        if prefix && digits == s.len() {
            return true;
        }
        (1..=digits).any(|i| match_impl(&s[i..], &t[2..], prefix))
    } else {
        s[0] == t[0] && match_impl(&s[1..], &t[1..], prefix)
    }
}

/// True when `site` is an instance of some registered site.
pub fn is_registered(site: &str) -> bool {
    SITES.iter().any(|s| template_matches(site, s.name))
}

/// True when the rule prefix `p` can match at least one registered site.
pub fn prefix_is_registered(p: &str) -> bool {
    SITES.iter().any(|s| template_prefix_matches(p, s.name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_well_formed() {
        let mut names: Vec<_> = SITES.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SITES.len());
        for s in SITES {
            assert!(
                s.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._{}".contains(c)),
                "site {} has unexpected characters",
                s.name
            );
            assert!(!s.doc.is_empty());
            assert!(!s.layer.is_empty());
        }
    }

    #[test]
    fn normalization_collapses_named_placeholders() {
        assert_eq!(normalize("dataflow.pe{idx}"), "dataflow.pe{}");
        assert_eq!(normalize("{}serve.backend{idx}"), "{}serve.backend{}");
        assert_eq!(normalize("plain.site"), "plain.site");
    }

    #[test]
    fn concrete_sites_match_their_templates() {
        assert!(template_matches("dataflow.pe0", "dataflow.pe{}"));
        assert!(template_matches("dataflow.pe17", "dataflow.pe{}"));
        assert!(template_matches("serve.backend3", "serve.backend{}"));
        assert!(template_matches(
            "fleet0g12.serve.backend1",
            "fleet{}g{}.serve.backend{}"
        ));
        assert!(template_matches("s3.put_object", "s3.put_object"));
        assert!(!template_matches("s3.putobject", "s3.put_object"));
        assert!(!template_matches("dataflow.pe", "dataflow.pe{}"));
        assert!(!template_matches("dataflow.peX", "dataflow.pe{}"));
    }

    #[test]
    fn template_literals_match_templates() {
        assert!(template_matches("dataflow.pe{idx}", "dataflow.pe{}"));
        assert!(template_matches("serve.backend{lane}", "serve.backend{}"));
        assert!(!template_matches("serve.backend{lane}", "dataflow.pe{}"));
    }

    #[test]
    fn prefixes_match_expansions() {
        assert!(template_prefix_matches("s3.", "s3.put_object"));
        assert!(template_prefix_matches("dataflow.pe", "dataflow.pe{}"));
        assert!(template_prefix_matches("dataflow.pe0", "dataflow.pe{}"));
        assert!(template_prefix_matches(
            "fleet0g0.serve.",
            "fleet{}g{}.serve.backend{}"
        ));
        assert!(template_prefix_matches(
            "serve.backend{lane}",
            "serve.backend{}"
        ));
        assert!(!template_prefix_matches("s4.", "s3.put_object"));
        assert!(!template_prefix_matches("dataflow.px", "dataflow.pe{}"));
    }

    #[test]
    fn registry_lookups() {
        assert!(is_registered("s3.put_object"));
        assert!(is_registered("dataflow.pe4"));
        assert!(!is_registered("s3.putobject"));
        assert!(prefix_is_registered("fleet0g0.serve."));
        assert!(prefix_is_registered("serve.backend"));
        assert!(!prefix_is_registered("nosuch."));
    }
}
