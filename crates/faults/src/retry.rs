//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! The consuming half of the fault layer: cloud deployment retries
//! transient S3/AFI/slot failures, the serving dispatcher retries
//! transient backend failures. Both use one [`RetryPolicy`] shape so
//! the attempt bound, backoff curve and jitter envelope are testable in
//! isolation — against a [`MockClock`] that records sleeps instead of
//! performing them.
//!
//! Transient-vs-permanent classification comes from the [`Retryable`]
//! trait, which every substrate error type implements; permanent errors
//! are returned immediately, never retried.

use crate::{splitmix64, unit_f64};
use parking_lot::Mutex;
use std::time::Duration;

/// Errors that know whether retrying can help.
pub trait Retryable {
    /// True when the failure is transient (a retry may succeed).
    fn is_transient(&self) -> bool;
}

/// The time source retries sleep on; mockable for tests.
///
/// Beyond sleeping, consumers that make *rate* decisions (the AIMD
/// admission controller in `condor-queue`) also need to read elapsed
/// time, so the trait carries a monotonic [`Clock::now`] with a real
/// default; [`MockClock`] overrides it with a manually advanced
/// counter, which is what makes controller tests deterministic.
pub trait Clock {
    /// Waits for `d` (or records that it would have).
    fn sleep(&self, d: Duration);

    /// Elapsed time since an arbitrary fixed epoch (monotonic).
    fn now(&self) -> Duration {
        static EPOCH: std::sync::OnceLock<std::time::Instant> = std::sync::OnceLock::new();
        EPOCH.get_or_init(std::time::Instant::now).elapsed()
    }
}

/// The real clock: `std::thread::sleep`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A clock that records every requested sleep and never blocks. Its
/// [`Clock::now`] reading starts at zero and advances only through
/// [`MockClock::advance`] and recorded sleeps, so time-dependent logic
/// under test is fully deterministic.
#[derive(Debug, Default)]
pub struct MockClock {
    slept: Mutex<Vec<Duration>>,
    now: Mutex<Duration>,
}

impl MockClock {
    /// A fresh recording clock (its `now` starts at zero).
    pub fn new() -> Self {
        MockClock::default()
    }

    /// Every sleep requested so far, in order.
    pub fn slept(&self) -> Vec<Duration> {
        self.slept.lock().clone()
    }

    /// Moves the mock time forward by `d`.
    pub fn advance(&self, d: Duration) {
        let mut now = self.now.lock();
        *now = now.saturating_add(d);
    }
}

impl Clock for MockClock {
    fn sleep(&self, d: Duration) {
        self.slept.lock().push(d);
        self.advance(d);
    }

    fn now(&self) -> Duration {
        *self.now.lock()
    }
}

/// Bounded exponential backoff with deterministic jitter.
///
/// Attempt `n` (0-based) sleeps `base · 2ⁿ` capped at `cap`, scaled by
/// a jitter factor drawn deterministically from `seed` in
/// `[1 − jitter, 1]` — so two runs of the same policy sleep the same
/// amounts, and tests can assert the envelope exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first call included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled into
    /// `[(1 − jitter)·d, d]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            jitter: 0.5,
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeping).
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Same policy, different attempt bound.
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// Same policy, different base backoff.
    pub fn with_base(mut self, base: Duration) -> Self {
        self.base = base;
        self
    }

    /// Same policy, different backoff cap.
    pub fn with_cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Same policy, different jitter fraction (clamped to `[0, 1]`).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Same policy, different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The backoff slept after failed attempt `attempt` (0-based):
    /// exponential, capped, jittered into `[(1 − jitter)·d, d]`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.cap);
        let frac = unit_f64(splitmix64(
            self.seed ^ (attempt as u64).wrapping_mul(0x9e37),
        ));
        exp.mul_f64(1.0 - self.jitter * frac)
    }

    /// Runs `op` under this policy on the real clock.
    pub fn run<T, E: Retryable>(&self, op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
        self.run_with_clock(&SystemClock, op)
    }

    /// Runs `op` up to `max_attempts` times: permanent errors return
    /// immediately; transient errors sleep the jittered backoff and
    /// retry until the attempt budget is spent.
    pub fn run_with_clock<T, E: Retryable>(
        &self,
        clock: &dyn Clock,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    attempt += 1;
                    if !e.is_transient() || attempt >= attempts {
                        return Err(e);
                    }
                    clock.sleep(self.backoff(attempt - 1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use std::cell::Cell;

    #[derive(Clone, Debug, PartialEq)]
    struct TestError {
        transient: bool,
    }

    impl Retryable for TestError {
        fn is_transient(&self) -> bool {
            self.transient
        }
    }

    #[test]
    fn transient_errors_retry_up_to_the_attempt_bound() {
        let clock = MockClock::new();
        let calls = Cell::new(0u32);
        let policy = RetryPolicy::default().with_max_attempts(4);
        let out: Result<(), TestError> = policy.run_with_clock(&clock, || {
            calls.set(calls.get() + 1);
            Err(TestError { transient: true })
        });
        assert!(out.is_err());
        assert_eq!(calls.get(), 4, "exactly max_attempts calls");
        assert_eq!(clock.slept().len(), 3, "sleeps between attempts only");
    }

    #[test]
    fn permanent_errors_are_never_retried() {
        let clock = MockClock::new();
        let calls = Cell::new(0u32);
        let policy = RetryPolicy::default().with_max_attempts(10);
        let out: Result<(), TestError> = policy.run_with_clock(&clock, || {
            calls.set(calls.get() + 1);
            Err(TestError { transient: false })
        });
        assert!(out.is_err());
        assert_eq!(calls.get(), 1);
        assert!(clock.slept().is_empty());
    }

    #[test]
    fn success_after_transient_failures_stops_retrying() {
        let clock = MockClock::new();
        let calls = Cell::new(0u32);
        let policy = RetryPolicy::default().with_max_attempts(5);
        let out: Result<u32, TestError> = policy.run_with_clock(&clock, || {
            calls.set(calls.get() + 1);
            if calls.get() < 3 {
                Err(TestError { transient: true })
            } else {
                Ok(99)
            }
        });
        assert_eq!(out.unwrap(), 99);
        assert_eq!(calls.get(), 3);
        assert_eq!(clock.slept().len(), 2);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy::default()
            .with_base(Duration::from_millis(10))
            .with_cap(Duration::from_millis(50))
            .with_jitter(0.0);
        assert_eq!(policy.backoff(0), Duration::from_millis(10));
        assert_eq!(policy.backoff(1), Duration::from_millis(20));
        assert_eq!(policy.backoff(2), Duration::from_millis(40));
        assert_eq!(policy.backoff(3), Duration::from_millis(50), "capped");
        assert_eq!(policy.backoff(10), Duration::from_millis(50));
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let policy = RetryPolicy::default()
            .with_base(Duration::from_millis(8))
            .with_cap(Duration::from_secs(10))
            .with_jitter(0.5)
            .with_seed(1234);
        for attempt in 0..8 {
            let full = Duration::from_millis(8).saturating_mul(1 << attempt);
            let d = policy.backoff(attempt);
            assert!(d <= full, "attempt {attempt}: {d:?} > {full:?}");
            assert!(
                d >= full.mul_f64(0.5),
                "attempt {attempt}: {d:?} below jitter floor {:?}",
                full.mul_f64(0.5)
            );
            // Deterministic: same policy, same value.
            assert_eq!(d, policy.backoff(attempt));
        }
        // A different seed produces a different jitter sequence.
        let other = policy.clone().with_seed(4321);
        assert!((0..8).any(|a| other.backoff(a) != policy.backoff(a)));
    }

    #[test]
    fn mock_clock_records_the_exact_backoff_sequence() {
        let clock = MockClock::new();
        let policy = RetryPolicy::default()
            .with_max_attempts(4)
            .with_base(Duration::from_millis(3))
            .with_jitter(0.25)
            .with_seed(77);
        let _: Result<(), TestError> =
            policy.run_with_clock(&clock, || Err(TestError { transient: true }));
        let expected: Vec<Duration> = (0..3).map(|a| policy.backoff(a)).collect();
        assert_eq!(clock.slept(), expected);
    }

    #[test]
    fn no_retry_policy_makes_one_attempt() {
        let clock = MockClock::new();
        let calls = Cell::new(0u32);
        let out: Result<(), TestError> = RetryPolicy::no_retry().run_with_clock(&clock, || {
            calls.set(calls.get() + 1);
            Err(TestError { transient: true })
        });
        assert!(out.is_err());
        assert_eq!(calls.get(), 1);
    }
}
