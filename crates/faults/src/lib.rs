//! # condor-faults
//!
//! Deterministic, seedable fault injection for the simulated substrate,
//! plus the resilience primitives the consumer layers use to survive it.
//!
//! The paper's flow ends on real infrastructure — SDAccel boards on
//! premise, S3 and AFI generation and F1 slots in the cloud — where
//! transfers stall, slots fail to program and kernels hang. The
//! simulated services reproduce the *happy* path of that infrastructure;
//! this crate reproduces the unhappy one, on demand and reproducibly:
//!
//! * a [`FaultPlan`] is a seed plus an ordered list of [`FaultRule`]s
//!   (site prefix, trigger, action, optional fire budget);
//! * [`FaultPlan::install`] produces a [`FaultHandle`] that the
//!   substrate's injection sites consult; a default
//!   [`FaultHandle::disabled`] handle compiles the whole layer down to
//!   one `Option` check, so benchmarks are unaffected;
//! * every fault that fires is appended to the [`FaultLog`], so tests
//!   assert exactly what was injected (and CI uploads the log on
//!   failure).
//!
//! Determinism: each site keeps its own call counter, and probabilistic
//! triggers hash `(seed, rule, site, call)` — so whether call *n* at a
//! site faults never depends on wall-clock time or thread interleaving.
//! At sites exercised concurrently (one per PE, one per serving lane)
//! each thread uses its own site name, keeping per-site call sequences
//! sequential and therefore reproducible.
//!
//! The [`retry`] module provides the consuming half: bounded retry with
//! exponential backoff and deterministic jitter ([`retry::RetryPolicy`])
//! over a mockable [`retry::Clock`], driven by the
//! [`retry::Retryable`] transient-vs-permanent error classification.
//!
//! ```
//! use condor_faults::{FaultPlan, FaultRule};
//!
//! let handle = FaultPlan::new(7)
//!     .rule(FaultRule::at("s3.put_object").nth_call(0).fail_transient())
//!     .install();
//! // First upload fails with a retryable error, second succeeds.
//! assert!(handle.gate("s3.put_object").is_err());
//! assert!(handle.gate("s3.put_object").is_ok());
//! assert_eq!(handle.fired(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod journal;
pub mod retry;
pub mod sites;

pub use sites::{SiteSpec, SITES};

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// FNV-1a over a byte string; stable across platforms and releases so
/// seeded plans reproduce everywhere.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: decorrelates combined hash inputs.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a 64-bit hash onto `[0, 1)`.
pub(crate) fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// What an injected fault does to the call it intercepts.
///
/// Call sites give the actions substrate-specific meaning; the common
/// mapping is documented on each injection site. For the cloud services
/// (`gate` sites) `FailTransient`/`FailPermanent` become typed errors
/// and `Delay` sleeps; for the dataflow streams `Delay` is a FIFO
/// stall, `FailTransient` drops the frame, and `Abort`/`FailPermanent`
/// terminate the worker (the software analogue of a hung kernel).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail with a retryable (transient) error.
    FailTransient,
    /// Fail with a permanent error — retrying must not help.
    FailPermanent,
    /// Stall the call for the given duration, then let it proceed.
    Delay(Duration),
    /// Kill the worker/stream mid-flight (PE panic, wedged kernel).
    Abort,
    /// Timing fault: scale the cost of the intercepted work by the
    /// given factor in per-mille (1500 = ×1.5). Only fires at timing
    /// sites ([`FaultHandle::timing`]); functional gates ignore it.
    Slowdown(u32),
    /// Timing fault: stall the intercepted work for exactly this many
    /// extra cycles (a FIFO-stall window in the DES).
    StallCycles(u64),
    /// Timing fault: stall for a per-fire number of cycles drawn
    /// deterministically from `(seed, site, call)` in `[0, max]` —
    /// datamover jitter.
    JitterCycles(u64),
}

impl FaultAction {
    fn kind_str(&self) -> &'static str {
        match self {
            FaultAction::FailTransient => "fail-transient",
            FaultAction::FailPermanent => "fail-permanent",
            FaultAction::Delay(_) => "delay",
            FaultAction::Abort => "abort",
            FaultAction::Slowdown(_) => "slowdown",
            FaultAction::StallCycles(_) => "stall",
            FaultAction::JitterCycles(_) => "jitter",
        }
    }

    /// True for the timing-domain actions, which only the cycle-level
    /// DES ([`FaultHandle::timing`]) consumes.
    pub fn is_timing(&self) -> bool {
        matches!(
            self,
            FaultAction::Slowdown(_) | FaultAction::StallCycles(_) | FaultAction::JitterCycles(_)
        )
    }

    /// The action's numeric argument as recorded in [`FaultRecord::arg`]
    /// (delay in µs, slowdown in per-mille, stall/jitter in cycles).
    fn arg(&self) -> u64 {
        match self {
            FaultAction::FailTransient | FaultAction::FailPermanent | FaultAction::Abort => 0,
            FaultAction::Delay(d) => d.as_micros().min(u64::MAX as u128) as u64,
            FaultAction::Slowdown(m) => *m as u64,
            FaultAction::StallCycles(n) | FaultAction::JitterCycles(n) => *n,
        }
    }
}

/// When a rule fires, relative to the per-site call counter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Trigger {
    /// Every matched call.
    Always,
    /// Exactly the `n`-th call at the site (0-based).
    NthCall(u64),
    /// Every call while the site's counter is below `n` — a fault
    /// window that clears once the site has been exercised `n` times.
    FirstCalls(u64),
    /// Every call once the site's counter reaches `n` — the mirror of
    /// [`Trigger::FirstCalls`]: a component that works for a while and
    /// then fails for good (mid-stream instance death).
    AfterCalls(u64),
    /// Each matched call independently with probability `p`, decided by
    /// hashing `(seed, rule, site, call)` — deterministic per plan.
    Probability(f64),
}

/// One injection rule: which sites, when, and what happens.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// Site prefix this rule matches (`"s3."` matches every S3 site;
    /// `"serve.backend"` matches every serving lane).
    pub site: String,
    /// Firing condition against the per-site call counter.
    pub trigger: Trigger,
    /// Effect at the call site.
    pub action: FaultAction,
    /// Total fires allowed across all sites, `None` = unbounded. A
    /// bounded rule models a fault window that eventually clears.
    pub max_fires: Option<u64>,
}

impl FaultRule {
    /// A rule matching every site starting with `site`, firing always,
    /// failing transiently — narrow it with the builder methods.
    pub fn at(site: impl Into<String>) -> Self {
        FaultRule {
            site: site.into(),
            trigger: Trigger::Always,
            action: FaultAction::FailTransient,
            max_fires: None,
        }
    }

    /// Fires on every matched call (the [`FaultRule::at`] default, made
    /// explicit).
    pub fn always(mut self) -> Self {
        self.trigger = Trigger::Always;
        self
    }

    /// Fires only on the `n`-th call (0-based) at a matched site.
    pub fn nth_call(mut self, n: u64) -> Self {
        self.trigger = Trigger::NthCall(n);
        self
    }

    /// Fires on every matched call while the site counter is `< n`.
    pub fn first_calls(mut self, n: u64) -> Self {
        self.trigger = Trigger::FirstCalls(n);
        self
    }

    /// Fires on every matched call once the site counter is `>= n`.
    pub fn after_calls(mut self, n: u64) -> Self {
        self.trigger = Trigger::AfterCalls(n);
        self
    }

    /// Fires each matched call independently with probability `p`.
    pub fn probability(mut self, p: f64) -> Self {
        self.trigger = Trigger::Probability(p.clamp(0.0, 1.0));
        self
    }

    /// Fail the call with a retryable error.
    pub fn fail_transient(mut self) -> Self {
        self.action = FaultAction::FailTransient;
        self
    }

    /// Fail the call with a permanent error.
    pub fn fail_permanent(mut self) -> Self {
        self.action = FaultAction::FailPermanent;
        self
    }

    /// Stall the call for `d` before letting it proceed.
    pub fn delay(mut self, d: Duration) -> Self {
        self.action = FaultAction::Delay(d);
        self
    }

    /// Kill the worker/stream at the call site.
    pub fn abort(mut self) -> Self {
        self.action = FaultAction::Abort;
        self
    }

    /// Caps the rule's total fires (a clearing fault window).
    pub fn max_fires(mut self, n: u64) -> Self {
        self.max_fires = Some(n);
        self
    }

    /// Timing fault: scale the intercepted work's cycle cost by
    /// `factor` (clamped to `[1.0, 4294.0]`; 1.5 = 50 % slower).
    pub fn slowdown(self, factor: f64) -> Self {
        let permille = (factor.max(1.0) * 1000.0).round().min(u32::MAX as f64) as u32;
        self.slowdown_permille(permille)
    }

    /// Timing fault: slowdown given directly in per-mille (1500 = ×1.5).
    pub fn slowdown_permille(mut self, permille: u32) -> Self {
        self.action = FaultAction::Slowdown(permille.max(1000));
        self
    }

    /// Timing fault: stall the intercepted work for `n` extra cycles.
    pub fn stall_cycles(mut self, n: u64) -> Self {
        self.action = FaultAction::StallCycles(n);
        self
    }

    /// Timing fault: stall for a deterministic per-fire draw in
    /// `[0, max]` cycles.
    pub fn jitter_cycles(mut self, max: u64) -> Self {
        self.action = FaultAction::JitterCycles(max);
        self
    }
}

/// A seed plus an ordered rule list; the unit tests and chaos harness
/// construct these, [`FaultPlan::install`] arms them.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed feeding every probabilistic trigger in the plan.
    pub seed: u64,
    /// Rules, matched in order; the first firing rule wins.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan under `seed` — installs to a handle that injects
    /// nothing, which must leave every consumer behaviourally unchanged.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Appends a rule (matched after all earlier rules).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Arms the plan: the returned handle is what injection sites
    /// consult and what tests read the [`FaultLog`] back from.
    pub fn install(self) -> FaultHandle {
        self.install_inner(None)
    }

    /// Arms the plan with an append-only journal at `path`: every fired
    /// fault is written as one `condor-faultlog/2` JSON line and flushed
    /// immediately, so a crashed run leaves a readable prefix (see
    /// [`journal`]).
    pub fn install_with_journal(
        self,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<FaultHandle> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        let header = journal::journal_header(self.seed);
        writeln!(file, "{header}")?;
        file.flush()?;
        Ok(self.install_inner(Some(Box::new(file))))
    }

    fn install_inner(self, sink: Option<Box<dyn Write + Send>>) -> FaultHandle {
        FaultHandle(Some(Arc::new(FaultInjector {
            plan: self,
            enabled: AtomicBool::new(true),
            counters: Mutex::new(BTreeMap::new()),
            fires: Mutex::new(Vec::new()),
            log: Mutex::new(Vec::new()),
            journal: Mutex::new(sink),
        })))
    }

    /// Rebuilds a plan that replays a fired-fault sequence exactly: one
    /// `nth_call`/`max_fires(1)` rule per record, in firing order. Run
    /// against the same call sequence, the replayed plan fires the same
    /// `(site, call, action)` sequence the journal recorded.
    pub fn from_records(seed: u64, records: &[FaultRecord]) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for r in records {
            let rule = FaultRule::at(r.site.clone()).nth_call(r.call).max_fires(1);
            let rule = match r.action {
                "fail-permanent" => rule.fail_permanent(),
                "delay" => rule.delay(Duration::from_micros(r.arg)),
                "abort" => rule.abort(),
                "slowdown" => rule.slowdown_permille(r.arg.min(u32::MAX as u64) as u32),
                "stall" => rule.stall_cycles(r.arg),
                "jitter" => rule.jitter_cycles(r.arg),
                _ => rule.fail_transient(),
            };
            plan = plan.rule(rule);
        }
        plan
    }
}

/// One fault that actually fired, as recorded in the [`FaultLog`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// The concrete site that was intercepted.
    pub site: String,
    /// The site's call counter when the fault fired (0-based).
    pub call: u64,
    /// Index of the firing rule in the plan.
    pub rule: usize,
    /// The action kind (`"fail-transient"`, `"delay"`, …).
    pub action: &'static str,
    /// The action's numeric argument: delay in µs, slowdown in
    /// per-mille, stall/jitter bound in cycles; 0 otherwise. Recorded so
    /// [`FaultPlan::from_records`] replays parameterised actions
    /// faithfully.
    pub arg: u64,
}

/// The record of every fault that fired under a handle, in firing order.
pub type FaultLog = Vec<FaultRecord>;

/// The error a [`FaultHandle::gate`] site surfaces for an injected
/// failure; consumers convert it into their own typed error, keeping
/// the transient/permanent classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// Site the fault fired at.
    pub site: String,
    /// Whether the failure is retryable.
    pub transient: bool,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} fault at {}",
            if self.transient {
                "transient"
            } else {
                "permanent"
            },
            self.site
        )
    }
}

impl std::error::Error for InjectedFault {}

impl retry::Retryable for InjectedFault {
    fn is_transient(&self) -> bool {
        self.transient
    }
}

/// A timing perturbation resolved from a fired timing rule: what the
/// cycle-level DES applies to the intercepted unit of work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingPerturbation {
    /// Cost multiplier in per-mille (1000 = unperturbed).
    pub slowdown_permille: u32,
    /// Flat extra cycles (stall window, or resolved jitter draw).
    pub stall_cycles: u64,
    /// The firing action kind (`"slowdown"`, `"stall"`, `"jitter"`).
    pub kind: &'static str,
}

impl TimingPerturbation {
    /// The slowdown as a factor (≥ 1.0).
    pub fn slowdown_factor(&self) -> f64 {
        self.slowdown_permille as f64 / 1000.0
    }

    /// Extra cycles this perturbation adds to a unit of work that
    /// nominally costs `base` cycles: the slowdown surcharge (rounded
    /// up) plus the flat stall.
    pub fn extra_cycles(&self, base: u64) -> u64 {
        let scaled = ((base as f64) * self.slowdown_factor()).ceil() as u64;
        scaled
            .saturating_sub(base)
            .saturating_add(self.stall_cycles)
    }
}

/// The armed injector behind a [`FaultHandle`].
struct FaultInjector {
    plan: FaultPlan,
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<String, u64>>,
    fires: Mutex<Vec<u64>>,
    log: Mutex<Vec<FaultRecord>>,
    journal: Mutex<Option<Box<dyn Write + Send>>>,
}

impl FaultInjector {
    /// Bumps the site counter and fires the first matching rule whose
    /// action domain matches (`timing` selects timing actions only,
    /// otherwise functional actions only). Returns the fired rule index,
    /// call number and action.
    fn select(&self, site: &str, timing: bool) -> Option<(usize, u64, FaultAction)> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let call = {
            let mut counters = self.counters.lock();
            let c = counters.entry(site.to_string()).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        let mut fires = self.fires.lock();
        if fires.len() < self.plan.rules.len() {
            fires.resize(self.plan.rules.len(), 0);
        }
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.action.is_timing() != timing {
                continue;
            }
            if !site.starts_with(rule.site.as_str()) {
                continue;
            }
            if let Some(max) = rule.max_fires {
                if fires[i] >= max {
                    continue;
                }
            }
            let hit = match rule.trigger {
                Trigger::Always => true,
                Trigger::NthCall(n) => call == n,
                Trigger::FirstCalls(n) => call < n,
                Trigger::AfterCalls(n) => call >= n,
                Trigger::Probability(p) => {
                    let mixed = self
                        .plan
                        .seed
                        .wrapping_add(splitmix64(i as u64))
                        .wrapping_add(fnv1a(site.as_bytes()))
                        .wrapping_add(splitmix64(call ^ 0xfa17_0000));
                    unit_f64(splitmix64(mixed)) < p
                }
            };
            if hit {
                fires[i] += 1;
                drop(fires);
                let record = FaultRecord {
                    site: site.to_string(),
                    call,
                    rule: i,
                    action: rule.action.kind_str(),
                    arg: rule.action.arg(),
                };
                if let Some(sink) = self.journal.lock().as_mut() {
                    // Best effort: a full disk must not take the run
                    // down with it; the prefix written so far stays
                    // readable either way.
                    let line = journal::record_line(&record);
                    let _ = writeln!(sink, "{line}");
                    let _ = sink.flush();
                }
                self.log.lock().push(record);
                return Some((i, call, rule.action));
            }
        }
        None
    }

    fn check(&self, site: &str) -> Option<FaultAction> {
        self.select(site, false).map(|(_, _, action)| action)
    }

    /// The timing-domain twin of [`FaultInjector::check`]: resolves a
    /// fired timing rule into the concrete perturbation. Jitter draws
    /// hash `(seed, site, call)` only — not the rule index — so a
    /// replayed plan ([`FaultPlan::from_records`]) resolves the same
    /// stall even though its rule order differs.
    fn timing(&self, site: &str) -> Option<TimingPerturbation> {
        let (_, call, action) = self.select(site, true)?;
        Some(match action {
            FaultAction::Slowdown(permille) => TimingPerturbation {
                slowdown_permille: permille.max(1000),
                stall_cycles: 0,
                kind: "slowdown",
            },
            FaultAction::StallCycles(n) => TimingPerturbation {
                slowdown_permille: 1000,
                stall_cycles: n,
                kind: "stall",
            },
            FaultAction::JitterCycles(max) => TimingPerturbation {
                slowdown_permille: 1000,
                stall_cycles: if max == 0 {
                    0
                } else {
                    let mixed = self
                        .plan
                        .seed
                        .wrapping_add(fnv1a(site.as_bytes()))
                        .wrapping_add(splitmix64(call ^ 0x7177_e200));
                    splitmix64(mixed) % (max + 1)
                },
                kind: "jitter",
            },
            // select(timing = true) only returns timing actions.
            _ => unreachable!("functional action from timing select"),
        })
    }
}

/// A cheap, cloneable handle injection sites consult. The default
/// (disabled) handle holds no injector: `check` is a single `Option`
/// test, so an un-faulted substrate pays nothing measurable.
#[derive(Clone, Default)]
pub struct FaultHandle(Option<Arc<FaultInjector>>);

impl fmt::Debug for FaultHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => write!(f, "FaultHandle(disabled)"),
            Some(inj) => write!(
                f,
                "FaultHandle({} rules, {}, {} fired)",
                inj.plan.rules.len(),
                if inj.enabled.load(Ordering::Relaxed) {
                    "enabled"
                } else {
                    "cleared"
                },
                inj.log.lock().len()
            ),
        }
    }
}

impl FaultHandle {
    /// The no-op handle every substrate component starts with.
    pub fn disabled() -> Self {
        FaultHandle(None)
    }

    /// True when an installed plan is armed behind this handle.
    pub fn is_active(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|inj| inj.enabled.load(Ordering::Relaxed))
    }

    /// Consults the injector at a site: bumps the site counter, fires
    /// the first matching *functional* rule, records it, and returns
    /// the action. Timing rules ([`FaultAction::is_timing`]) are
    /// skipped here — only [`FaultHandle::timing`] fires them — so one
    /// plan can carry both domains over the same site prefixes.
    pub fn check(&self, site: &str) -> Option<FaultAction> {
        self.0.as_ref()?.check(site)
    }

    /// Consults the injector at a *timing* site: fires the first
    /// matching timing rule and resolves it into the perturbation the
    /// cycle-level DES applies. Functional rules are skipped. Fully
    /// deterministic per `(plan, site, call)` — jitter draws do not
    /// depend on threads or wall clock.
    pub fn timing(&self, site: &str) -> Option<TimingPerturbation> {
        self.0.as_ref()?.timing(site)
    }

    /// The standard call-site gate: sleeps injected delays in place and
    /// surfaces injected failures (including `Abort`, which a
    /// non-streaming call can only experience as a permanent error).
    pub fn gate(&self, site: &str) -> Result<(), InjectedFault> {
        match self.check(site) {
            None => Ok(()),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(FaultAction::FailTransient) => Err(InjectedFault {
                site: site.to_string(),
                transient: true,
            }),
            Some(FaultAction::FailPermanent) | Some(FaultAction::Abort) => Err(InjectedFault {
                site: site.to_string(),
                transient: false,
            }),
            // Timing actions never reach a functional gate (`check`
            // skips them); tolerate them as no-ops for exhaustiveness.
            Some(FaultAction::Slowdown(_))
            | Some(FaultAction::StallCycles(_))
            | Some(FaultAction::JitterCycles(_)) => Ok(()),
        }
    }

    /// Re-arms or clears the injector at runtime; chaos tests call
    /// `set_enabled(false)` to model "the fault window ends".
    pub fn set_enabled(&self, enabled: bool) {
        if let Some(inj) = &self.0 {
            inj.enabled.store(enabled, Ordering::Relaxed);
        }
    }

    /// Stops all further injection (the log is preserved).
    pub fn clear(&self) {
        self.set_enabled(false);
    }

    /// Every fault that fired so far, in firing order.
    pub fn log(&self) -> FaultLog {
        self.0
            .as_ref()
            .map_or_else(Vec::new, |inj| inj.log.lock().clone())
    }

    /// Number of faults fired so far.
    pub fn fired(&self) -> usize {
        self.0.as_ref().map_or(0, |inj| inj.log.lock().len())
    }

    /// The fault log as a `condor-faultlog/2` JSON document (serialised
    /// through `condor-cjson`), for CI artifact upload when a chaos
    /// scenario fails. Old `condor-faultlog/1` dumps remain readable via
    /// [`journal::parse_dump`].
    pub fn log_json(&self) -> String {
        let (seed, records) = match &self.0 {
            None => (0, Vec::new()),
            Some(inj) => (inj.plan.seed, inj.log.lock().clone()),
        };
        condor_cjson::to_string(&journal::dump_value(seed, &records))
    }

    /// The plan's seed (0 for a disabled handle).
    pub fn seed(&self) -> u64 {
        self.0.as_ref().map_or(0, |inj| inj.plan.seed)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn disabled_handle_injects_nothing() {
        let h = FaultHandle::disabled();
        for _ in 0..100 {
            assert_eq!(h.check("s3.put_object"), None);
            assert!(h.gate("s3.put_object").is_ok());
        }
        assert_eq!(h.fired(), 0);
        assert!(!h.is_active());
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let h = FaultPlan::new(42).install();
        for _ in 0..100 {
            assert!(h.gate("f1.load_afi").is_ok());
        }
        assert_eq!(h.fired(), 0);
        assert!(h.is_active());
    }

    #[test]
    fn nth_call_fires_exactly_once() {
        let h = FaultPlan::new(1)
            .rule(FaultRule::at("s3.").nth_call(2).fail_transient())
            .install();
        let results: Vec<bool> = (0..5).map(|_| h.gate("s3.put_object").is_ok()).collect();
        assert_eq!(results, vec![true, true, false, true, true]);
        let log = h.log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].site, "s3.put_object");
        assert_eq!(log[0].call, 2);
        assert_eq!(log[0].action, "fail-transient");
    }

    #[test]
    fn first_calls_is_a_clearing_window() {
        let h = FaultPlan::new(1)
            .rule(FaultRule::at("f1.load_afi").first_calls(3))
            .install();
        let results: Vec<bool> = (0..6).map(|_| h.gate("f1.load_afi").is_ok()).collect();
        assert_eq!(results, vec![false, false, false, true, true, true]);
    }

    #[test]
    fn prefix_matching_spans_sites() {
        let h = FaultPlan::new(1)
            .rule(FaultRule::at("serve.backend").nth_call(0))
            .install();
        // Each concrete lane site has its own counter; call 0 of each
        // matches the prefix rule.
        assert!(h.gate("serve.backend0").is_err());
        assert!(h.gate("serve.backend1").is_err());
        assert!(h.gate("serve.backend0").is_ok());
        assert!(h.gate("other.site").is_ok());
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let fire_pattern = |seed: u64| -> Vec<bool> {
            let h = FaultPlan::new(seed)
                .rule(FaultRule::at("x").probability(0.5))
                .install();
            (0..64).map(|_| h.gate("x.y").is_err()).collect()
        };
        let a = fire_pattern(7);
        let b = fire_pattern(7);
        let c = fire_pattern(8);
        assert_eq!(a, b, "same seed must reproduce the same pattern");
        assert_ne!(a, c, "different seeds should differ");
        let fired = a.iter().filter(|&&f| f).count();
        assert!((8..=56).contains(&fired), "p=0.5 fired {fired}/64");
    }

    #[test]
    fn probability_bounds_are_exact() {
        let h = FaultPlan::new(3)
            .rule(FaultRule::at("a").probability(0.0))
            .rule(FaultRule::at("b").probability(1.0))
            .install();
        for _ in 0..32 {
            assert!(h.gate("a.x").is_ok());
            assert!(h.gate("b.x").is_err());
        }
    }

    #[test]
    fn max_fires_caps_the_window_and_later_rules_take_over() {
        let h = FaultPlan::new(1)
            .rule(FaultRule::at("s.").max_fires(2).fail_transient())
            .rule(FaultRule::at("s.x").nth_call(3).fail_permanent())
            .install();
        assert!(h.gate("s.x").is_err()); // rule 0, fire 1
        assert!(h.gate("s.x").is_err()); // rule 0, fire 2 (cap reached)
        assert!(h.gate("s.x").is_ok()); // rule 0 exhausted, rule 1 wants call 3
        let err = h.gate("s.x").unwrap_err(); // rule 1 at call 3
        assert!(!err.transient);
        assert_eq!(h.fired(), 3);
        assert_eq!(h.log()[2].rule, 1);
    }

    #[test]
    fn delay_sleeps_and_proceeds() {
        let h = FaultPlan::new(1)
            .rule(
                FaultRule::at("slow")
                    .nth_call(0)
                    .delay(Duration::from_millis(5)),
            )
            .install();
        let t = std::time::Instant::now();
        assert!(h.gate("slow.call").is_ok());
        assert!(t.elapsed() >= Duration::from_millis(5));
        assert_eq!(h.log()[0].action, "delay");
    }

    #[test]
    fn abort_gates_as_permanent() {
        let h = FaultPlan::new(1)
            .rule(FaultRule::at("pe").abort())
            .install();
        let err = h.gate("pe0").unwrap_err();
        assert!(!err.transient);
        assert!(err.to_string().contains("permanent fault at pe0"));
    }

    #[test]
    fn clear_stops_injection_but_keeps_the_log() {
        let h = FaultPlan::new(1).rule(FaultRule::at("x")).install();
        assert!(h.gate("x.y").is_err());
        h.clear();
        assert!(!h.is_active());
        for _ in 0..10 {
            assert!(h.gate("x.y").is_ok());
        }
        assert_eq!(h.fired(), 1);
        h.set_enabled(true);
        assert!(h.gate("x.y").is_err());
    }

    #[test]
    fn log_json_is_well_formed() {
        let h = FaultPlan::new(9)
            .rule(FaultRule::at("x").nth_call(0))
            .install();
        let _ = h.gate("x.y");
        let json = h.log_json();
        assert!(json.contains("\"schema\":\"condor-faultlog/2\""));
        assert!(json.contains("\"seed\":9"));
        assert!(json.contains("\"site\":\"x.y\""));
        let dump = journal::parse_dump(&json).unwrap();
        assert_eq!(dump.schema_version, 2);
        assert_eq!(dump.records, h.log());
        // Disabled handles still render a valid (empty) document.
        assert!(FaultHandle::disabled().log_json().contains("\"fired\":[]"));
    }

    #[test]
    fn after_calls_is_a_permanent_tail_window() {
        let h = FaultPlan::new(1)
            .rule(FaultRule::at("inst.").after_calls(3).fail_permanent())
            .install();
        let results: Vec<bool> = (0..6).map(|_| h.gate("inst.call").is_ok()).collect();
        assert_eq!(results, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn timing_rules_are_invisible_to_functional_gates() {
        let h = FaultPlan::new(2)
            .rule(FaultRule::at("dataflow.").always().slowdown(2.0))
            .install();
        for _ in 0..10 {
            assert!(h.gate("dataflow.pe0").is_ok());
            assert_eq!(h.check("dataflow.pe0"), None);
        }
        assert_eq!(
            h.fired(),
            0,
            "functional consults must not fire timing rules"
        );
    }

    #[test]
    fn functional_rules_are_invisible_to_timing_consults() {
        let h = FaultPlan::new(2)
            .rule(FaultRule::at("dataflow.").always().fail_permanent())
            .install();
        for _ in 0..10 {
            assert_eq!(h.timing("dataflow.pe0"), None);
        }
        assert_eq!(h.fired(), 0);
        // The same site still fails functionally.
        assert!(h.gate("dataflow.pe0").is_err());
    }

    #[test]
    fn timing_actions_resolve_to_perturbations() {
        let h = FaultPlan::new(3)
            .rule(FaultRule::at("a").nth_call(0).slowdown(1.5))
            .rule(FaultRule::at("b").nth_call(0).stall_cycles(40))
            .install();
        let slow = h.timing("a.pe").unwrap();
        assert_eq!(slow.kind, "slowdown");
        assert_eq!(slow.slowdown_permille, 1500);
        assert_eq!(slow.extra_cycles(100), 50);
        let stall = h.timing("b.pe").unwrap();
        assert_eq!(stall.kind, "stall");
        assert_eq!(stall.extra_cycles(100), 40);
        assert_eq!(h.timing("a.pe"), None, "nth_call(0) fired already");
        let log = h.log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].action, "slowdown");
        assert_eq!(log[0].arg, 1500);
        assert_eq!(log[1].action, "stall");
        assert_eq!(log[1].arg, 40);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let draws = |seed: u64| -> Vec<u64> {
            let h = FaultPlan::new(seed)
                .rule(FaultRule::at("dm").always().jitter_cycles(32))
                .install();
            (0..64)
                .map(|_| h.timing("dm.stream").unwrap().stall_cycles)
                .collect()
        };
        let a = draws(11);
        let b = draws(11);
        let c = draws(12);
        assert_eq!(a, b, "same seed must reproduce the same jitter");
        assert_ne!(a, c, "different seeds should differ");
        assert!(a.iter().all(|&d| d <= 32), "jitter bounded by max");
        assert!(a.iter().any(|&d| d > 0), "jitter not identically zero");
        // max = 0 degenerates to no jitter.
        let h = FaultPlan::new(1)
            .rule(FaultRule::at("dm").always().jitter_cycles(0))
            .install();
        assert_eq!(h.timing("dm.x").unwrap().stall_cycles, 0);
    }
}
