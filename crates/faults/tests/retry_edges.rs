//! Edge-case coverage for [`condor_faults::retry::RetryPolicy`]:
//! degenerate attempt bounds, backoff saturation at the cap, and the
//! deterministic-jitter envelope across a seed sweep.

#![allow(clippy::unwrap_used)] // test code: unwrap is the assertion

use condor_faults::retry::{MockClock, RetryPolicy, Retryable};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

#[derive(Clone, Debug, PartialEq)]
struct TestError {
    transient: bool,
}

impl Retryable for TestError {
    fn is_transient(&self) -> bool {
        self.transient
    }
}

#[test]
fn zero_attempt_policy_clamps_to_one_attempt() {
    // with_max_attempts(0) must not mean "never call the operation":
    // the builder clamps to 1, so the op runs exactly once, unretried.
    let policy = RetryPolicy::default().with_max_attempts(0);
    assert_eq!(policy.max_attempts, 1);
    let clock = MockClock::new();
    let calls = AtomicU32::new(0);
    let out: Result<(), TestError> = policy.run_with_clock(&clock, || {
        calls.fetch_add(1, Ordering::SeqCst);
        Err(TestError { transient: true })
    });
    assert!(out.is_err());
    assert_eq!(calls.load(Ordering::SeqCst), 1);
    assert!(clock.slept().is_empty(), "one attempt never sleeps");
}

#[test]
fn one_attempt_policy_never_sleeps_even_on_success() {
    let policy = RetryPolicy::default().with_max_attempts(1);
    let clock = MockClock::new();
    let out: Result<u32, TestError> = policy.run_with_clock(&clock, || Ok(7));
    assert_eq!(out.unwrap(), 7);
    assert!(clock.slept().is_empty());
}

#[test]
fn a_policy_built_from_raw_zero_attempts_still_runs_once() {
    // Constructing the struct directly (bypassing the builder clamp)
    // must still make one attempt — run_with_clock re-clamps.
    let policy = RetryPolicy {
        max_attempts: 0,
        ..RetryPolicy::default()
    };
    let clock = MockClock::new();
    let calls = AtomicU32::new(0);
    let out: Result<(), TestError> = policy.run_with_clock(&clock, || {
        calls.fetch_add(1, Ordering::SeqCst);
        Err(TestError { transient: true })
    });
    assert!(out.is_err());
    assert_eq!(calls.load(Ordering::SeqCst), 1);
}

#[test]
fn backoff_saturates_at_the_cap_for_extreme_attempts() {
    let policy = RetryPolicy::default()
        .with_base(Duration::from_millis(7))
        .with_cap(Duration::from_millis(100))
        .with_jitter(0.0);
    // Attempts far past the doubling range (the shift is clamped
    // internally) must neither overflow nor exceed the cap.
    for attempt in [4, 10, 20, 21, 31, 63, u32::MAX] {
        assert_eq!(
            policy.backoff(attempt),
            Duration::from_millis(100),
            "attempt {attempt} must sit at the cap"
        );
    }
    // A cap below the base pins every backoff to the cap.
    let tight = policy.with_cap(Duration::from_millis(3));
    assert_eq!(tight.backoff(0), Duration::from_millis(3));
}

#[test]
fn jitter_samples_stay_within_half_of_nominal_across_a_seed_sweep() {
    // The contract: jitter 0.5 scales each nominal delay into
    // [0.5·nominal, nominal] — i.e. every deterministic sample is
    // within ±50 % of nominal. Sweep seeds and attempts to check the
    // envelope holds everywhere, not just for one lucky stream.
    let base = Duration::from_millis(8);
    let cap = Duration::from_secs(4);
    for seed in 0..256u64 {
        let policy = RetryPolicy::default()
            .with_base(base)
            .with_cap(cap)
            .with_jitter(0.5)
            .with_seed(seed);
        for attempt in 0..8u32 {
            let nominal = base.saturating_mul(1 << attempt).min(cap);
            let d = policy.backoff(attempt);
            assert!(
                d <= nominal,
                "seed {seed} attempt {attempt}: {d:?} above nominal {nominal:?}"
            );
            assert!(
                d >= nominal.mul_f64(0.5),
                "seed {seed} attempt {attempt}: {d:?} below the -50% floor"
            );
        }
    }
}

#[test]
fn jitter_zero_is_exactly_nominal_and_jitter_one_can_reach_zero() {
    let exact = RetryPolicy::default()
        .with_base(Duration::from_millis(16))
        .with_cap(Duration::from_secs(1))
        .with_jitter(0.0);
    assert_eq!(exact.backoff(2), Duration::from_millis(64));
    // jitter is clamped into [0, 1]; full jitter keeps samples in
    // [0, nominal].
    let full = exact.clone().with_jitter(5.0);
    assert_eq!(full.jitter, 1.0);
    for seed in 0..64 {
        let d = full.clone().with_seed(seed).backoff(3);
        assert!(d <= Duration::from_millis(128));
    }
}
